#!/usr/bin/env python
"""The STL array template on Active Pages.

The paper's motivating data-structure example: a dense array whose
insert/delete/count operations run inside the memory system, so the
programmer gets array-like random access *and* list-like mutation cost.
Each page shifts its slice in parallel; the processor performs the
cross-page carries.

Run:  python examples/stl_array_demo.py
"""

import numpy as np

from repro.apps.registry import get_app
from repro.experiments.runner import run_conventional, run_radram

PAGE_BYTES = 32 * 1024
N_PAGES = 8


def main() -> None:
    print("== STL array primitives on Active Pages ==")
    print(f"array of {N_PAGES * (PAGE_BYTES - 64) // 4} 32-bit words "
          f"across {N_PAGES} pages\n")
    print(f"{'primitive':>14} {'conventional':>14} {'RADram':>12} {'speedup':>8}")
    for name in ("array-insert", "array-delete", "array-find"):
        app = get_app(name)
        conv = run_conventional(
            app, N_PAGES, page_bytes=PAGE_BYTES, functional=True, cap_pages=None
        )
        rad = run_radram(app, N_PAGES, page_bytes=PAGE_BYTES, functional=True)
        app.check_equivalence(conv.workload, rad.workload)
        print(
            f"{name:>14} {conv.total_ns / 1e3:>12.1f}us "
            f"{rad.total_ns / 1e3:>10.1f}us "
            f"{conv.total_ns / rad.total_ns:>8.1f}"
        )

    # Show the functional effect of an insert.
    app = get_app("array-insert")
    rad = run_radram(app, 2, page_bytes=PAGE_BYTES, functional=True)
    w = rad.workload
    pos = w.data["position"]
    arr = w.results["array"]
    print(f"\ninsert of {app.VALUE:#x} at index {pos}:")
    print(f"  ...{w.data['initial'][pos - 2 : pos + 2]} (before)")
    print(f"  ...{arr[pos - 2 : pos + 3]} (after: neighbours shifted up)")

    # The sub-page anomaly: adaptive delete.
    app = get_app("array-delete")
    conv = run_conventional(app, 0.5, page_bytes=PAGE_BYTES, cap_pages=None)
    rad = run_radram(app, 0.5, page_bytes=PAGE_BYTES)
    print(f"\nsub-page delete (half a page): conventional "
          f"{conv.total_ns / 1e3:.1f}us vs RADram {rad.total_ns / 1e3:.1f}us — "
          f"the adaptive algorithm keeps sub-page deletes on the processor")


if __name__ == "__main__":
    main()
