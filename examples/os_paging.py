#!/usr/bin/env python
"""Operating-system integration: frames, paging, scheduling.

Section 10's OS challenges, made concrete: allocating page frames with
group locality, paying reconfiguration on Active-Page faults, choosing
replacement victims that know which pages carry configured logic, and
scheduling two processes' activations with enforced isolation.

Run:  python examples/os_paging.py
"""

from repro.os.frames import FrameAllocator
from repro.os.paging import Pager, PagingPolicy, SwapCosts
from repro.os.scheduler import IsolationError, Process, Scheduler


def demo_allocation() -> None:
    print("== frame allocation (group co-location) ==")
    for policy in ("co-locate", "first-fit"):
        alloc = FrameAllocator(n_chips=4, frames_per_chip=8, policy=policy)
        for i in range(8):
            alloc.allocate(f"small{i}", 3)
        for i in range(0, 8, 2):
            alloc.release_group(f"small{i}")
        alloc.allocate("big-group", 8)
        print(f"  {policy:<10}: big-group spans {alloc.chips_spanned('big-group')} chips")
    print("  (fewer chips = cheaper future inter-page communication)\n")


def demo_paging() -> None:
    print("== Active-Page faults cost reconfiguration ==")
    for label, reconfig_ms in (("FPGA-era (100s of ms)", 100.0), ("projected fast (10 ms)", 10.0)):
        costs = SwapCosts(reconfig_ns=reconfig_ms * 1e6)
        print(f"  {label:<24}: active fault = "
              f"{costs.active_multiplier:.1f}x a conventional fault")

    print("\n== replacement policy on a mixed working set ==")
    for policy in (PagingPolicy.LRU, PagingPolicy.ACTIVE_AWARE):
        pager = Pager(n_frames=4, policy=policy, costs=SwapCosts(reconfig_ns=10e6))
        pager.bind(0)  # the configured page
        total = 0.0
        for i in range(1, 300):
            if i % 5 == 0:
                total += pager.touch(0)
            total += pager.touch(i % 7 + 1)
        print(f"  {policy:<13}: {pager.faults} faults, {total / 1e6:8.1f} ms of fault time")
    print("  (active-aware keeps the configured page resident)\n")


def demo_scheduling() -> None:
    print("== two processes share the Active-Page memory ==")
    sched = Scheduler()
    sched.register(Process(pid=1, priority=2))
    sched.register(Process(pid=2, priority=1))
    sched.grant(1, "simulation")
    sched.grant(2, "database")
    for i in range(30):
        sched.submit(1, "simulation", i, duration_ns=50_000.0)
    for i in range(15):
        sched.submit(2, "database", i, duration_ns=60_000.0)
    makespan = sched.run()
    shares = sched.fairness()
    print(f"  makespan {makespan / 1e3:.1f} us; dispatch shares: "
          f"pid1={shares[1]:.2f} pid2={shares[2]:.2f} "
          f"(priority 2:1); peak page parallelism {sched.max_parallelism}")

    try:
        sched.submit(2, "simulation", 0, duration_ns=1.0)
    except IsolationError as err:
        print(f"  isolation enforced: {err}")


def main() -> None:
    demo_allocation()
    demo_paging()
    demo_scheduling()


if __name__ == "__main__":
    main()
