#!/usr/bin/env python
"""Protein sequence matching via wavefront dynamic programming.

The paper's "Dynamic Prog" workload: the largest-common-subsequence
table of two homologous protein sequences is filled by Active Pages as
a wavefront (each page owns a band of rows; the processor ferries
boundary rows between pages — processor-mediated inter-page
communication), then the processor backtracks.

Run:  python examples/protein_match.py
"""

from repro.apps.data import lcs_reference, related_sequences
from repro.apps.registry import get_app
from repro.experiments.runner import run_conventional, run_radram

PAGE_BYTES = 32 * 1024
N_PAGES = 8


def main() -> None:
    app = get_app("dynamic-prog")

    print("== LCS protein matching on Active Pages ==")
    conv = run_conventional(
        app, N_PAGES, page_bytes=PAGE_BYTES, functional=True, cap_pages=None
    )
    rad = run_radram(app, N_PAGES, page_bytes=PAGE_BYTES, functional=True)
    app.check_equivalence(conv.workload, rad.workload)

    w = rad.workload
    n = w.data["n"]
    lcs = w.results["lcs"]
    a, b = w.data["seq_a"], w.data["seq_b"]
    print(f"sequences: {n} residues each; LCS length {lcs} "
          f"({100 * lcs / n:.0f}% conserved)")
    assert lcs == lcs_reference(a, b)
    print(f"table: {n}x{n} cells in {w.data['bands']} row bands "
          f"({w.whole_pages} Active Pages)")

    print(f"conventional: {conv.total_ns / 1e6:8.3f} ms")
    print(f"RADram:       {rad.total_ns / 1e6:8.3f} ms  "
          f"(speedup {conv.total_ns / rad.total_ns:.1f}x)")
    print(f"inter-page boundary traffic handled by the processor; "
          f"stalled {100 * rad.stall_fraction:.0f}% of cycles "
          f"(dynamic programming stays coordination-heavy, Section 7.2)")

    # Unrelated sequences for contrast.
    from repro.apps.data import protein_sequence

    x = protein_sequence(n, seed=1)
    y = protein_sequence(n, seed=2)
    print(f"for comparison, two unrelated sequences align only "
          f"{100 * lcs_reference(x, y) / n:.0f}%")

    # The full alignment suite: an actual LCS via Hirschberg's
    # linear-space backtracking, plus global and local alignments.
    from repro.align import hirschberg_lcs, needleman_wunsch, smith_waterman

    lcs_string = hirschberg_lcs(a[:120], b[:120])
    print(f"\nactual LCS of the first 120 residues "
          f"({len(lcs_string)} residues): {lcs_string[:48].decode()}...")
    nw = needleman_wunsch(a[:60], b[:60])
    print(f"global alignment (first 60): score {nw.score}, "
          f"{100 * nw.identity():.0f}% identity")
    print(f"  {nw.aligned_a[:56].decode()}")
    print(f"  {nw.aligned_b[:56].decode()}")
    sw = smith_waterman(a[:200], b[:200])
    print(f"best local alignment: score {sw.score}, residues "
          f"{sw.span_a[0]}-{sw.span_a[1]} vs {sw.span_b[0]}-{sw.span_b[1]}")


if __name__ == "__main__":
    main()
