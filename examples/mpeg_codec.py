#!/usr/bin/env python
"""The full MPEG P-frame pipeline on Active Pages.

Section 5.2's future plan, built out: motion detection, correction
matrices, run-length and Huffman coding run in the memory system; the
processor keeps the DCT.  This example encodes a moving scene against
a reference frame, decodes it back, and compares the two systems'
simulated encode times.

Run:  python examples/mpeg_codec.py
"""

import numpy as np

from repro.mpeg.pipeline import MpegPipeline
from repro.radram.config import RADramConfig


def moving_scene(h=96, w=128, shift=(3, -2), seed=0):
    rng = np.random.default_rng(seed)
    big = rng.integers(0, 2048, (h + 32, w + 32), dtype=np.int16)
    for axis in (0, 1):
        big = (big + np.roll(big, 1, axis) + np.roll(big, 2, axis)) // 3
    ref = big[16 : 16 + h, 16 : 16 + w].copy()
    cur = big[16 + shift[0] : 16 + shift[0] + h, 16 + shift[1] : 16 + shift[1] + w].copy()
    return cur, ref


def main() -> None:
    cur, ref = moving_scene()
    print("== MPEG P-frame codec on Active Pages ==")
    print(f"frame: {cur.shape[0]}x{cur.shape[1]} int16 "
          f"({cur.nbytes // 1024} KB raw)")

    codec = MpegPipeline(quant_scale=1.0, search=4)
    frame = codec.encode(cur, ref)
    decoded = codec.decode(frame, ref)
    err = np.abs(decoded.astype(np.int32) - cur.astype(np.int32))
    print(f"coded size: {frame.compressed_bytes} B "
          f"({frame.compression_ratio():.1f}x compression, "
          f"{frame.n_symbols} RLE symbols)")
    print(f"reconstruction error: mean {float(np.mean(err)):.1f}, "
          f"max {int(np.max(err))} (quantization loss)")

    # Motion vectors found the global shift.
    from collections import Counter

    votes = Counter(
        (v.dy, v.dx) for row in frame.vectors for v in row
    ).most_common(1)[0]
    print(f"dominant motion vector: {votes[0]} "
          f"({votes[1]}/{sum(len(r) for r in frame.vectors)} macroblocks)")

    cfg = RADramConfig.reference().with_page_bytes(16 * 1024)
    _, conv = codec.encode_timed(cur, ref, system="conventional")
    _, rad = codec.encode_timed(cur, ref, system="radram", radram_config=cfg)
    print(f"encode time, conventional: {conv.total_ns / 1e6:8.3f} ms "
          f"(motion search dominates)")
    print(f"encode time, RADram:       {rad.total_ns / 1e6:8.3f} ms "
          f"(speedup {conv.total_ns / rad.total_ns:.1f}x)")

    # Lossless configuration round-trips exactly.
    lossless = MpegPipeline(quant_scale=0.0005, search=4)
    exact = lossless.decode(lossless.encode(cur, ref), ref)
    assert np.array_equal(exact, cur)
    print("lossless configuration verified (exact reconstruction)")


if __name__ == "__main__":
    main()
