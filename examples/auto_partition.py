#!/usr/bin/env python
"""Automatic application partitioning (Section 10 future work, built).

The co-design compiler takes a kernel description — stages with
operation classes, data flow, and circuit areas — and searches for the
processor/pages split minimizing estimated execution time.  On the
paper's six applications it recovers Table 2's hand-partitioning; this
example shows it working, and probes how stable the partitions are
across the paper's logic-speed range.

Run:  python examples/auto_partition.py
"""

from repro.partition.estimator import PartitionEstimator
from repro.partition.library import TABLE2_EXPECTATIONS, matrix_kernel
from repro.partition.partitioner import annealed_partition, exhaustive_partition
from repro.radram.config import RADramConfig


def main() -> None:
    print("== automatic partitioning vs the paper's Table 2 ==\n")
    print(f"{'kernel':<14} {'page-side stages (compiler)':<34} {'matches Table 2':>16}")
    for name, (factory, expected) in TABLE2_EXPECTATIONS.items():
        kernel = factory()
        partition = exhaustive_partition(kernel)
        match = "yes" if partition.page_stages == expected else "NO"
        stages = ", ".join(sorted(partition.page_stages)) or "(none)"
        print(f"{name:<14} {stages:<34} {match:>16}")

    print("\nspeedup over all-on-processor (estimated):")
    for name, (factory, _) in TABLE2_EXPECTATIONS.items():
        kernel = factory()
        est = PartitionEstimator(kernel)
        partition = exhaustive_partition(kernel, est)
        print(f"  {name:<14} {partition.speedup_over_all_processor(est):6.1f}x")

    # Technology sensitivity: Table 2's split survives the whole
    # 500 MHz - 10 MHz logic range (data manipulation wins on pages
    # even with slow logic; estimated speedup shrinks, the partition
    # does not flip — Figure 9's message, rediscovered by the
    # compiler).
    print("\ntechnology sensitivity (matrix kernel):")
    kernel = matrix_kernel()
    for divisor in (2, 10, 100):
        radram = RADramConfig.reference().with_logic_divisor(divisor)
        est = PartitionEstimator(kernel, radram=radram)
        partition = exhaustive_partition(kernel, est)
        stages = ", ".join(sorted(partition.page_stages)) or "(none)"
        print(f"  logic divisor {divisor:>3}: pages get [{stages}], "
              f"estimated speedup {partition.speedup_over_all_processor(est):.1f}x")

    # The paper names simulated annealing; confirm it finds the same
    # answer as exhaustive search.
    kernel = matrix_kernel()
    annealed = annealed_partition(kernel, seed=0)
    optimal = exhaustive_partition(kernel)
    print(f"\nsimulated annealing reaches the exhaustive optimum: "
          f"{annealed.estimated_ns == optimal.estimated_ns} "
          f"({annealed.estimated_ns / 1e3:.1f} us estimated kernel time)")


if __name__ == "__main__":
    main()
