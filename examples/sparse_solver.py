#!/usr/bin/env python
"""Sparse vector dot products with compare-gather-compute partitioning.

The paper's processor-centric matrix workload: Active Pages compare the
index arrays of sparse vector pairs and gather the matching values into
packed cache-line blocks; the processor reads only the packed operands
and multiplies at peak floating-point speed.  Only "useful" data
crosses the memory bus.

Run:  python examples/sparse_solver.py
"""

import numpy as np

from repro.apps.registry import get_app
from repro.experiments.runner import run_conventional, run_radram

PAGE_BYTES = 64 * 1024
N_PAGES = 8


def main() -> None:
    print("== sparse matrix multiply on Active Pages ==")
    for name in ("matrix-simplex", "matrix-boeing"):
        app = get_app(name)
        conv = run_conventional(
            app, N_PAGES, page_bytes=PAGE_BYTES, functional=True, cap_pages=None
        )
        rad = run_radram(app, N_PAGES, page_bytes=PAGE_BYTES, functional=True)
        app.check_equivalence(conv.workload, rad.workload)

        w = rad.workload
        pairs = w.data["pairs"]
        nnz = sum(p.nnz for p in pairs)
        matches = sum(s["m"] for s in w.data["sizes"])
        dots = w.results["dots"]
        print(f"\n{name}: {len(pairs)} vector pairs, {nnz} nonzeros, "
              f"{matches} index matches")
        print(f"  dot products: {np.array2string(dots[:4], precision=3)} ...")
        print(f"  useful data fraction: {100 * 2 * matches / nnz:.1f}% "
              f"(only this crosses the bus on RADram)")
        print(f"  conventional: {conv.total_ns / 1e3:8.1f} us")
        print(f"  RADram:       {rad.total_ns / 1e3:8.1f} us  "
              f"(speedup {conv.total_ns / rad.total_ns:.1f}x, "
              f"stalled {100 * rad.stall_fraction:.0f}%)")

    print("\nthe boeing rows' varied density is what breaks the paper's "
          "constant-time analytic model (Table 4 correlation 0.83); "
          "run benchmarks/test_table4_model.py to reproduce")


if __name__ == "__main__":
    main()
