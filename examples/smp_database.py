#!/usr/bin/env python
"""Active Pages in a symmetric multiprocessor (Section 2).

At saturation the processor is the bottleneck — it can't dispatch
activations and post-process results fast enough for the page pool.
The paper notes Active Pages work in SMPs with ordinary sync
variables; this example shows what that buys: multiple CPUs split the
activation work of a big database query and the saturated-region
ceiling lifts.

Run:  python examples/smp_database.py
"""

import numpy as np

from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.memory import PagedMemory
from repro.sim.smp import AtomicRMW, Barrier, SMPMachine

PAGES = 256
CYCLES_PER_PAGE = 6.0 * 1023  # the database scan circuit


def query_makespan(n_cpus: int) -> float:
    memory = PagedMemory()
    memsys = RADramMemorySystem(RADramConfig.reference())
    smp = SMPMachine(n_cpus, memory=memory, memsys=memsys)
    counter_region = memory.alloc(64)
    counter = counter_region.base

    share = PAGES // n_cpus
    streams = []
    for cpu in range(n_cpus):
        ops = []
        lo, hi = cpu * share, (cpu + 1) * share
        for p in range(lo, hi):
            ops.append(O.Activate(p, 16, PageTask.simple(CYCLES_PER_PAGE)))
        for p in range(lo, hi):
            ops.append(O.WaitPage(p))
            ops.append(O.MemRead(0x4000_0000 + p * 512 * 1024, 4))
            ops.append(O.Compute(660))
        # Fold this CPU's partial count into the shared total with an
        # atomic fetch-and-add on an ordinary sync variable.
        ops.append(AtomicRMW(counter, "add", operand=cpu + 1))
        ops.append(Barrier(1))
        streams.append(ops)
    smp.run(streams)
    total = int(memory.read(counter, 4).view(np.uint32)[0])
    assert total == sum(range(1, n_cpus + 1))  # atomicity held
    return smp.makespan_ns


def main() -> None:
    print("== SMP scaling of a saturated database query ==")
    print(f"{PAGES} Active Pages of records, query dispatched by N CPUs\n")
    base = None
    for n_cpus in (1, 2, 4, 8):
        t = query_makespan(n_cpus)
        base = base or t
        print(f"  {n_cpus} CPU{'s' if n_cpus > 1 else ' '}: "
              f"{t / 1e6:7.3f} ms  (x{base / t:4.2f} vs 1 CPU)")
    print("\nthe single-CPU time is the paper's saturated region; adding "
          "processors raises the activation/post-processing throughput "
          "that caps it (Section 7.2)")


if __name__ == "__main__":
    main()
