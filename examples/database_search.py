#!/usr/bin/env python
"""Unindexed database query inside the memory system.

The paper's database workload: an address book of fixed 512-byte
records is searched for exact last-name matches with no index.  On the
conventional system the processor touches one cache line per record;
on RADram every page scans its own block of records with a custom
field-comparison circuit and the query cost becomes O(1) in record
count (with a large constant) once pages work in parallel.

Run:  python examples/database_search.py
"""

from repro.apps.data import field_bytes
from repro.apps.registry import get_app
from repro.experiments.runner import measure_speedup, run_conventional, run_radram

PAGE_BYTES = 64 * 1024
N_PAGES = 6


def main() -> None:
    app = get_app("database")

    print("== unindexed address-book search on Active Pages ==")
    conv = run_conventional(
        app, N_PAGES, page_bytes=PAGE_BYTES, functional=True, cap_pages=None
    )
    rad = run_radram(app, N_PAGES, page_bytes=PAGE_BYTES, functional=True)
    app.check_equivalence(conv.workload, rad.workload)

    w = rad.workload
    query = bytes(w.data["query"]).rstrip(b"\x00").decode()
    print(f"database: {w.data['n_records']} records of 512 B "
          f"({w.whole_pages} pages); query: lastname == {query!r}")
    print(f"matches found: {w.results['count']} (identical on both systems)")

    print(f"conventional scan: {conv.total_ns / 1e3:8.1f} us")
    print(f"RADram scan:       {rad.total_ns / 1e3:8.1f} us  "
          f"(speedup {conv.total_ns / rad.total_ns:.1f}x)")

    # The O(1) behaviour: at the paper's scale the query time stops
    # growing once the per-page scans dominate (timing-only runs).
    print("\nscaling (512 KB pages, timing mode):")
    print(f"{'pages':>8} {'records':>10} {'conv':>12} {'RADram':>12} {'speedup':>8}")
    for pages in (4, 16, 64, 256):
        point = measure_speedup(app, pages)
        records = pages * 1023
        print(
            f"{pages:>8} {records:>10} {point.conventional_ns / 1e6:>10.2f}ms "
            f"{point.radram_ns / 1e6:>10.2f}ms {point.speedup:>8.1f}"
        )
    print("(RADram time is flat past ~76 pages — the paper's Table 4 "
          "complete-overlap point)")


if __name__ == "__main__":
    main()
