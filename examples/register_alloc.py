#!/usr/bin/env python
"""Optimal register allocation with the simplex method (Section 5.2).

The paper's ``matrix-simplex`` workload exists because register
allocation can be posed as optimization [GW96] and solved with simplex
[NM65], whose inner loop is the sparse kernel Active Pages accelerate.
This example runs the whole stack: build an interference graph from
live ranges (networkx), relax to an LP, solve it with this
repository's simplex, round to an allocation — and time the solver's
pivots on both memory systems.

Run:  python examples/register_alloc.py
"""

import numpy as np

from repro.lp.register import allocate_registers, interval_interference_graph
from repro.lp.simplex import solve_timed


def make_live_ranges(n_vars=24, seed=3):
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 60, n_vars)
    lengths = rng.integers(2, 25, n_vars)
    weights = {f"v{i}": float(rng.integers(1, 50)) for i in range(n_vars)}
    return [(int(s), int(s + l)) for s, l in zip(starts, lengths)], weights


def main() -> None:
    print("== register allocation as linear programming ==")
    ranges, weights = make_live_ranges()
    graph = interval_interference_graph(ranges)
    print(f"{len(ranges)} virtual registers, "
          f"{graph.number_of_edges()} interferences")

    for k in (2, 4, 8):
        result = allocate_registers(graph, k=k, weights=weights)
        total = sum(weights.values())
        print(f"  k={k}: keep {len(result.in_registers):2d} in registers, "
              f"spill {len(result.spilled):2d}  "
              f"(saved {result.saved_cost:.0f}/{total:.0f} spill cost, "
              f"LP bound {result.lp_bound:.1f}, "
              f"tight={result.is_lp_tight})")

    # Time the simplex pivots themselves on both systems.
    print("\n== simplex pivot kernel on both memory systems ==")
    rng = np.random.default_rng(0)
    n, m = 48, 80
    c = rng.uniform(0.1, 1.0, n)
    a = (rng.random((m, n)) < 0.08) * rng.uniform(0.2, 1.5, (m, n))
    b = rng.uniform(1.0, 4.0, m)
    result, conv = solve_timed(c, a, b, system="conventional")
    _, rad = solve_timed(c, a, b, system="radram")
    print(f"  LP: {m} constraints x {n} variables, "
          f"{np.count_nonzero(a)} nonzeros, {result.pivots} pivots")
    print(f"  conventional: {conv.total_ns / 1e3:8.1f} us")
    print(f"  RADram:       {rad.total_ns / 1e3:8.1f} us  "
          f"(speedup {conv.total_ns / rad.total_ns:.1f}x — the paper's "
          f"compare-gather-compute)")


if __name__ == "__main__":
    main()
