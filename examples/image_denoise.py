#!/usr/bin/env python
"""Image denoising with in-memory median filtering.

The paper's image-processing workload: a noisy image is divided into
row bands across Active Pages, each page runs a 9-value median sorting
circuit over its band, and the processor only dispatches and polls.
The script runs the *same image* through the conventional and the
Active-Page versions, verifies the outputs are identical, reports how
much noise the filter removed, and compares simulated execution times.

Run:  python examples/image_denoise.py
"""

import numpy as np

from repro.apps.registry import get_app
from repro.experiments.runner import run_conventional, run_radram

PAGE_BYTES = 32 * 1024  # small pages keep the functional run instant
N_PAGES = 6


def noise_energy(image: np.ndarray, clean_reference: np.ndarray) -> float:
    """RMS difference against the noise-free gradient."""
    return float(
        np.sqrt(np.mean((image.astype(float) - clean_reference.astype(float)) ** 2))
    )


def main() -> None:
    app = get_app("median-kernel")

    print("== median filtering on Active Pages ==")
    conv = run_conventional(
        app, N_PAGES, page_bytes=PAGE_BYTES, functional=True, cap_pages=None
    )
    rad = run_radram(app, N_PAGES, page_bytes=PAGE_BYTES, functional=True)
    app.check_equivalence(conv.workload, rad.workload)
    print("conventional and Active-Page outputs are identical")

    w = rad.workload
    image = w.data["image"]
    filtered = w.results["filtered"]
    h, width = image.shape
    print(f"image: {h}x{width} uint16, {h * width * 2 // 1024} KB "
          f"across {w.whole_pages} pages")

    # How much impulsive noise did the filter remove?  Salt-and-pepper
    # noise shows up as large horizontal gradients.
    before = float(np.mean(np.abs(np.diff(image.astype(int), axis=1))))
    after = float(np.mean(np.abs(np.diff(filtered.astype(int), axis=1))))
    print(f"mean horizontal gradient: {before:.0f} -> {after:.0f} "
          f"({100 * (1 - after / before):.0f}% noise energy removed)")

    print(f"conventional: {conv.total_ns / 1e6:8.3f} ms")
    print(f"RADram:       {rad.total_ns / 1e6:8.3f} ms  "
          f"(speedup {conv.total_ns / rad.total_ns:.1f}x, "
          f"stalled {100 * rad.stall_fraction:.0f}% of cycles)")
    print("(the paper's 512 KB pages and thousands-of-pages images push the "
          "speedup into the hundreds; see benchmarks/test_fig3_speedup.py)")


if __name__ == "__main__":
    main()
