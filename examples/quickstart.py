#!/usr/bin/env python
"""Quickstart: program an Active-Page memory system directly.

Allocates a group of Active Pages on a simulated RADram system, binds a
tiny custom function set (a fill circuit and a counting circuit, with
LE budgets checked against the 256-LE page logic), dispatches work with
memory-mapped activations, and reads results back through the paper's
synchronization-variable protocol — while the simulator tracks how much
time the 1 GHz processor and the 100 MHz page logic actually spent.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.functions import APFunction, PageTask
from repro.radram.api import RADram
from repro.radram.config import RADramConfig


def make_fill_function() -> APFunction:
    """A circuit that fills the page's data area with a byte value."""

    def apply(page, args):
        (value,) = args
        page.data_view(np.uint8)[:] = value

    def cost(args):
        # One logic cycle per 32-bit word written via the row buffer.
        return PageTask.simple(128 * 1024 // 4)

    return APFunction(
        name="fill", apply=apply, cost=cost, le_count=60, descriptor_words=2
    )


def make_count_function() -> APFunction:
    """A binary comparison circuit counting matches of a 32-bit key."""

    def apply(page, args):
        (key,) = args
        return int(np.count_nonzero(page.data_view(np.uint32) == key))

    def cost(args):
        return PageTask.simple(int(128 * 1024 // 4 * 9 / 8))

    return APFunction(
        name="count", apply=apply, cost=cost, le_count=141, descriptor_words=3
    )


def main() -> None:
    # A RADram with small 128 KB pages so the demo runs instantly;
    # drop page_bytes for the paper's 512 KB reference.
    config = RADramConfig.reference().with_page_bytes(128 * 1024)
    ap = RADram(config=config)

    print("== Active Pages quickstart ==")
    group = ap.ap_alloc("demo", n_pages=8)
    print(f"allocated {len(group)} Active Pages of {config.page_bytes // 1024} KB")

    ap.ap_bind("demo", [make_fill_function(), make_count_function()])
    print("bound functions: fill (60 LEs), count (141 LEs)  [budget: 256 LEs/page]")

    # Phase 1: every page fills itself, in parallel.
    for i in range(len(group)):
        ap.activate("demo", i, "fill", args=(0xAB,))
    ap.wait_all("demo")
    t_fill = ap.elapsed_ns
    print(f"fill of {8 * config.page_bytes // 1024} KB finished at {t_fill / 1e3:.1f} us")

    # Phase 2: plant some keys by ordinary memory writes, then count.
    key = 0xDEADBEEF
    rng = np.random.default_rng(0)
    planted = 0
    for i in range(len(group)):
        words = group.page(i).data_view(np.uint32)
        hits = rng.integers(1, 6)
        words[rng.choice(len(words), hits, replace=False)] = key
        planted += int(hits)
    for i in range(len(group)):
        ap.activate("demo", i, "count", args=(key,))
    total = 0
    for i in range(len(group)):
        ap.wait("demo", i)
        total += ap.results("demo", i, 1)[0]
    print(f"pages counted {total} keys (planted {planted})")
    assert total == planted

    print(f"total simulated time: {ap.elapsed_ns / 1e3:.1f} us")
    print(f"  processor stalled on pages: {ap.machine.processor.stats.wait_ns / 1e3:.1f} us")
    print(f"  activations dispatched: {ap.machine.processor.stats.activations}")


if __name__ == "__main__":
    main()
