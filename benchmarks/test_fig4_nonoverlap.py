"""Figure 4: percent cycles stalled vs problem size."""

import pytest

from repro.experiments import fig4_nonoverlap

SWEEP = [1, 4, 16, 64, 256]
APPS = ["array-insert", "database", "matrix-simplex", "matrix-boeing", "mpeg-mmx"]


def run_fig4():
    return fig4_nonoverlap.run(apps=APPS, sweep=SWEEP)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4()

    def test_bench_fig4(self, once):
        result = once(run_fig4)
        print()
        print(result.render())
        assert len(result.rows) == len(APPS) * len(SWEEP)

    def _series(self, result, app):
        return [
            r["stalled_percent"] for r in result.rows if r["application"] == app
        ]

    def test_saturating_apps_reach_complete_overlap(self, result):
        # The paper: database, matrix-simplex, matrix-boeing (and mpeg)
        # reach a point of complete processor-memory overlap.
        for name in ("database", "matrix-simplex", "matrix-boeing", "mpeg-mmx"):
            assert self._series(result, name)[-1] < 2.0, name

    def test_array_primitives_stay_stalled(self, result):
        # Memory-centric with little processor work: non-overlap stays
        # high (they are "artificially forced into synchronous
        # operation for this study").
        assert min(self._series(result, "array-insert")) > 60

    def test_stall_declines_monotonically_for_saturating_apps(self, result):
        for name in ("database", "matrix-simplex"):
            series = self._series(result, name)
            assert all(a >= b - 1e-9 for a, b in zip(series, series[1:])), name
