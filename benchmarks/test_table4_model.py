"""Table 4: measured constants, pages-for-overlap, model correlation."""

import pytest

from repro.experiments import table4_model

SWEEP = [1, 2, 4, 8, 16, 32, 64]


def run_table4():
    return table4_model.run(sweep=SWEEP)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4()

    def test_bench_table4(self, once):
        result = once(run_table4)
        print()
        print(result.render())
        assert len(result.rows) == 8

    def _row(self, result, name):
        return next(r for r in result.rows if r["application"] == name)

    @pytest.mark.parametrize(
        "name",
        [
            "array-insert",
            "array-delete",
            "array-find",
            "database",
            "matrix-simplex",
            "matrix-boeing",
            "median-kernel",
            "mpeg-mmx",
        ],
    )
    def test_constants_close_to_paper(self, result, name):
        row = self._row(result, name)
        assert row["t_a_us"] == pytest.approx(row["t_a_paper"], rel=0.08)
        assert row["t_p_us"] == pytest.approx(row["t_p_paper"], rel=0.10)
        assert row["t_c_us"] == pytest.approx(row["t_c_paper"], rel=0.08)

    @pytest.mark.parametrize(
        "name, lo, hi",
        [
            ("array-insert", 2900, 3600),
            ("array-delete", 2200, 2800),
            ("array-find", 1450, 1800),
            ("database", 70, 85),
            ("matrix-simplex", 7, 10),
            ("matrix-boeing", 8, 11),
            ("median-kernel", 8700, 10200),
        ],
    )
    def test_pages_for_overlap_near_paper(self, result, name, lo, hi):
        # (mpeg is excluded: the paper's value of 9 is inconsistent
        # with its own constants — see EXPERIMENTS.md.)
        assert lo <= self._row(result, name)["pages_overlap"] <= hi

    def test_correlations_reproduce_papers_ranking(self, result):
        for name in (
            "array-insert",
            "array-delete",
            "array-find",
            "database",
            "median-kernel",
            "mpeg-mmx",
        ):
            assert self._row(result, name)["correlation"] > 0.98, name
        assert self._row(result, "matrix-simplex")["correlation"] > 0.95
        boeing = self._row(result, "matrix-boeing")["correlation"]
        assert boeing < 0.95  # the paper's outlier
        assert boeing == min(r["correlation"] for r in result.rows)
