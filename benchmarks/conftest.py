"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures.
Experiment functions are deterministic simulations (no I/O, no
randomness beyond fixed seeds), so a single round is meaningful;
``once`` wraps ``benchmark.pedantic`` accordingly and returns the
experiment's result so benches can assert the reproduced shape.

Sweep-driven experiments go through ``repro.experiments.harness`` and
memoize results under ``.repro_cache/`` (``$REPRO_CACHE_DIR`` to
relocate): the first benchmark run simulates everything, re-runs are
mostly cache reads.  For a true cold-simulation measurement, clear the
store first (``python -m repro cache --clear``) or export
``REPRO_CACHE_DIR`` to an empty directory.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
