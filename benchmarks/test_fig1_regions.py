"""Figure 1: expected scaling regions (analytic model)."""

from repro.experiments import fig1_regions


class TestFig1:
    def test_bench_fig1(self, once):
        result = once(fig1_regions.run)
        print()
        print(result.render())
        regions = result.column("region")
        assert regions[0] == "sub-page"
        assert "scalable" in regions
        assert regions[-1] == "saturated"
        # Non-overlap falls from near-total to complete overlap.
        fractions = result.column("nonoverlap_fraction")
        assert fractions[0] > 0.9
        assert fractions[-1] == 0.0
        # Speedup is monotone non-decreasing in the modeled curve.
        speedups = result.column("speedup")
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
