"""Figure 5: execution time vs L1 D-cache size (plus the L2 text sweep)."""

import pytest

from repro.experiments import fig5_cache

APPS = ["array-insert", "database", "median-kernel", "median-total", "matrix-simplex"]
L1_SWEEP = [32, 48, 64, 128, 256]


def run_fig5():
    return fig5_cache.run(apps=APPS, l1_sweep_kb=L1_SWEEP, n_pages=2)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5()

    def test_bench_fig5(self, once):
        result = once(run_fig5)
        print()
        print(result.render())
        assert len(result.rows) == len(APPS) * len(L1_SWEEP)

    def _series(self, result, app, column):
        return [r[column] for r in result.rows if r["application"] == app]

    def test_conventional_mostly_unaffected(self, result):
        # Figure 5 (left): within 32K-256K most conventional apps are
        # flat.
        for name in ("database", "matrix-simplex", "median-kernel"):
            series = self._series(result, name, "conventional_ms")
            assert max(series) < 1.03 * min(series), name

    def test_some_conventional_apps_affected_below_64k(self, result):
        # Figure 5 (left): "some conventional applications are
        # affected by the size of the level one cache when it fell
        # below 64 kilobytes" — the array memmove is one (its read
        # stream evicts the about-to-be-written lines at 32K).
        series = self._series(result, "array-insert", "conventional_ms")
        at32, beyond64 = series[0], series[2:]
        assert at32 > 1.02 * min(beyond64)
        assert max(beyond64) < 1.03 * min(beyond64)

    def test_radram_kernels_unaffected(self, result):
        # Figure 5 (right): all but median-total are insensitive.
        for name in ("array-insert", "database", "median-kernel", "matrix-simplex"):
            series = self._series(result, name, "radram_ms")
            assert max(series) < 1.03 * min(series), name

    def test_median_total_stride_effects(self, result):
        # median-total's transform phase degrades below 64K.
        series = self._series(result, "median-total", "radram_ms")
        at32 = series[0]
        beyond = series[2:]  # 64K and larger
        assert at32 > 1.05 * max(beyond)
        assert max(beyond) < 1.02 * min(beyond)

    def test_l2_sweep_no_significant_differences(self):
        result = fig5_cache.run(
            apps=["database", "median-kernel"],
            l1_sweep_kb=[256, 1024, 4096],
            n_pages=2,
            level="l2",
        )
        for name in ("database", "median-kernel"):
            conv = [r["conventional_ms"] for r in result.rows if r["application"] == name]
            assert max(conv) < 1.05 * min(conv)
