"""Table 1 artifact: the reference machine and its parameter ranges.

Benchmarks machine construction + a reference kernel run, and asserts
the Table 1 reference values and variation ranges are all expressible.
"""

from repro.radram.config import RADramConfig
from repro.sim import ops as O
from repro.sim.config import KB, MB, MachineConfig
from repro.sim.machine import Machine


def build_and_run_reference():
    machine = Machine(config=MachineConfig.reference())
    machine.run(iter([O.Compute(1000), O.MemRead(0, 4096), O.MemRead(0, 4096)]))
    return machine


class TestTable1:
    def test_bench_reference_machine(self, once):
        machine = once(build_and_run_reference)
        assert machine.processor.now > 0

    def test_reference_values(self):
        m = MachineConfig.reference()
        r = RADramConfig.reference()
        assert m.cpu.clock_hz == 1e9
        assert m.l1i.size_bytes == 64 * KB
        assert m.l1d.size_bytes == 64 * KB
        assert m.l2.size_bytes == 1 * MB
        assert r.logic_hz == 100e6
        assert m.dram.miss_latency_ns == 50.0

    def test_variation_ranges_expressible(self):
        m = MachineConfig.reference()
        for size in (32 * KB, 256 * KB):
            assert m.with_l1d_size(size).l1d.size_bytes == size
        for size in (256 * KB, 4 * MB):
            assert m.with_l2_size(size).l2.size_bytes == size
        for lat in (0.0, 600.0):
            assert m.with_miss_latency(lat).dram.miss_latency_ns == lat
        r = RADramConfig.reference()
        for mhz in (10e6, 500e6):
            divisor = 1e9 / mhz
            assert r.with_logic_divisor(divisor).logic_hz // 1e6 == mhz // 1e6
