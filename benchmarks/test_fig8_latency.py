"""Figure 8: speedup vs cache-to-memory latency (0-600 ns)."""

import pytest

from repro.experiments import fig8_latency

APPS = ["array-insert", "database", "median-kernel", "matrix-simplex", "mpeg-mmx"]
LATENCIES = [0, 50, 150, 300, 600]


def run_fig8():
    return fig8_latency.run(apps=APPS, latencies_ns=LATENCIES)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8()

    def test_bench_fig8(self, once):
        result = once(run_fig8)
        print()
        print(result.render())
        assert len(result.rows) == len(APPS) * len(LATENCIES)

    def _series(self, result, app):
        return [r["speedup"] for r in result.rows if r["application"] == app]

    def test_advantage_survives_the_whole_range(self, result):
        # In-DRAM computation is unaffected by miss penalty: RADram
        # keeps winning from 0 through 600 ns.
        for name in APPS:
            assert min(self._series(result, name)) > 1.0, name

    def test_matrix_is_latency_sensitive(self, result):
        # The partitioned matrix kernel's processor phase reads packed
        # operands from memory: higher latency erodes its advantage.
        series = self._series(result, "matrix-simplex")
        assert series == sorted(series, reverse=True)
        assert series[0] / series[-1] > 1.5

    def test_slopes_vary_across_apps(self, result):
        # "These changes can result in either increases or decreases"
        # — the curves are not all parallel.
        ratios = {
            name: self._series(result, name)[-1] / self._series(result, name)[0]
            for name in APPS
        }
        assert max(ratios.values()) / min(ratios.values()) > 1.3
