"""Figure 3: speedup vs problem size for every application.

The bench sweep caps the long-tailed applications at 1024 pages (the
full sweeps are available via ``python -m repro.experiments.report``);
the assertions check the paper's curve shapes: the three regions, who
wins, and roughly by what factor.
"""

import pytest

from repro.core.regions import Region, classify_regions
from repro.experiments import fig3_speedup

BENCH_SWEEPS = {
    "array-insert": [0.25, 1, 4, 16, 64, 256, 1024],
    "array-delete": [0.25, 1, 4, 16, 64, 256, 1024],
    "array-find": [0.25, 1, 4, 16, 64, 256, 1024],
    "database": [0.25, 1, 2, 4, 8, 16, 32, 64, 128, 256],
    "median-kernel": [0.25, 1, 4, 16, 64, 256, 1024],
    "dynamic-prog": [0.25, 1, 4, 16, 64, 128],
    "matrix-simplex": [0.25, 1, 2, 4, 8, 16, 32, 64],
    "matrix-boeing": [0.25, 1, 2, 4, 8, 16, 32, 64],
    "mpeg-mmx": [0.25, 1, 2, 4, 8, 16, 32, 64, 128, 256],
}


def run_fig3():
    rows = []
    for name, sweep in BENCH_SWEEPS.items():
        rows.extend(
            fig3_speedup.run(apps=[name], sweep=sweep).rows
        )
    return rows


@pytest.fixture(scope="module")
def fig3_rows():
    return run_fig3()


class TestFig3:
    def test_bench_fig3(self, once):
        rows = once(run_fig3)
        assert len(rows) == sum(len(s) for s in BENCH_SWEEPS.values())

    def _series(self, rows, app):
        pts = [(r["pages"], r["speedup"]) for r in rows if r["application"] == app]
        return [p for p, _ in pts], [s for _, s in pts]

    def test_all_apps_beat_conventional_at_scale(self, fig3_rows):
        for name in BENCH_SWEEPS:
            _, speedups = self._series(fig3_rows, name)
            assert speedups[-1] > 4, name

    def test_array_speedups_approach_three_orders(self, fig3_rows):
        # The headline: "up to 1000X speedups".
        _, s = self._series(fig3_rows, "array-insert")
        assert s[-1] > 400

    def test_median_is_the_fastest_growing(self, fig3_rows):
        _, med = self._series(fig3_rows, "median-kernel")
        assert med[-1] > 2000

    def test_matrix_speedups_are_modest(self, fig3_rows):
        # Processor-centric: matrix tops out around 5-10x.
        for name in ("matrix-simplex", "matrix-boeing"):
            _, s = self._series(fig3_rows, name)
            assert 3 < s[-1] < 15, name

    def test_database_saturates_mid_two_digits(self, fig3_rows):
        _, s = self._series(fig3_rows, "database")
        assert 50 < s[-1] < 100

    def test_subpage_region_is_flat_and_small(self, fig3_rows):
        for name in BENCH_SWEEPS:
            pages, s = self._series(fig3_rows, name)
            sub = [v for p, v in zip(pages, s) if p <= 1]
            assert max(sub) < 20, name

    def test_saturating_apps_show_all_three_regions(self, fig3_rows):
        for name in ("database", "matrix-simplex", "mpeg-mmx"):
            pages, s = self._series(fig3_rows, name)
            labels = [p.region for p in classify_regions(pages, s)]
            assert labels[0] is Region.SUB_PAGE, name
            assert Region.SCALABLE in labels, name
            assert labels[-1] is Region.SATURATED, name

    def test_delete_subpage_anomaly(self, fig3_rows):
        # The adaptive sub-page delete runs on the processor: no gain.
        pages, s = self._series(fig3_rows, "array-delete")
        assert s[0] == pytest.approx(1.0, rel=0.02)

    def test_dynprog_speedup_bends_back_down(self, fig3_rows):
        _, s = self._series(fig3_rows, "dynamic-prog")
        assert max(s) > s[-1]  # communication starts to dominate
