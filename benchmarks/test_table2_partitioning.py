"""Table 2: application partitioning summary."""

from repro.experiments import table2_partitioning


class TestTable2:
    def test_bench_table2(self, once):
        result = once(table2_partitioning.run)
        print()
        print(result.render())
        assert len(result.rows) == 6
        memory_centric = [
            r["name"] for r in result.rows if r["partitioning"] == "memory-centric"
        ]
        assert memory_centric == ["Array", "Database", "Median", "Dynamic Prog"]
        processor_centric = [
            r["name"] for r in result.rows if r["partitioning"] == "processor-centric"
        ]
        assert processor_centric == ["Matrix", "MPEG-MMX"]
