"""Extension studies beyond the paper's figures.

Evaluations of Section 2/8/10 directions built in this repository —
shared implementations live in :mod:`repro.experiments.extensions`;
each bench prints the study's table and asserts its conclusion.
"""

import pytest

from repro.experiments.extensions import (
    comm_mechanism_study,
    partition_study,
    processor_speed_study,
    reduction_study,
    smp_study,
    technology_study_result,
)


class TestTechnologyStudy:
    def test_bench_technology_study(self, once):
        result = once(technology_study_result)
        print()
        print(result.render())
        by_name = {r["technology"]: r["speedup"] for r in result.rows}
        # Section 8: near-term parts have equal-or-better logic but
        # capacity caps their achievable speedup on scalable apps.
        assert by_name["radram-2001"] == max(by_name.values())
        assert by_name["radram-2001"] > 3 * by_name["fpga-sram-merged"]


class TestReductionStudy:
    def test_bench_reduction_study(self, once):
        result = once(reduction_study)
        print()
        print(result.render())
        for row in result.rows:
            # Hierarchical reduction requires the hardware network to
            # pay off; processor-mediated trees are a pessimization.
            assert row["tree_mediated_us"] > row["processor_fold_us"]
            assert row["tree_hardware_us"] < row["tree_mediated_us"]
        gains = [
            r["processor_fold_us"] / r["tree_hardware_us"] for r in result.rows
        ]
        assert gains[-1] > gains[0]  # advantage grows with page count


class TestCommMechanismStudy:
    def test_bench_comm_mechanism(self, once):
        result = once(comm_mechanism_study)
        print()
        print(result.render())
        gains = result.column("gain")
        assert gains[-1] > gains[0]
        assert gains[-1] > 1.1
        for row in result.rows:
            assert row["hardware_comm"] >= 0.95 * row["processor_mediated"]


class TestSMPStudy:
    def test_bench_smp_study(self, once):
        result = once(smp_study)
        print()
        print(result.render())
        scaling = result.column("scaling")
        assert scaling[1] > 1.7  # 2 CPUs
        assert scaling[2] > scaling[1]  # 4 CPUs keep helping


class TestPartitionStudy:
    def test_bench_partition_study(self, once):
        result = once(partition_study)
        print()
        print(result.render())
        assert all(r["matches_table2"] for r in result.rows)
        assert all(r["estimated_speedup"] > 1.5 for r in result.rows)


class TestProcessorSpeedStudy:
    def test_bench_processor_speed(self, once):
        result = once(processor_speed_study)
        print()
        print(result.render())
        db = [r for r in result.rows if r["application"] == "database"]
        mx = [r for r in result.rows if r["application"] == "matrix-simplex"]
        # database: processor-work-bound saturation — 8x the clock
        # cuts the saturated kernel substantially (bounded below 2x by
        # the clock-invariant sync-variable reads).
        assert db[-1]["vs_half_ghz"] > 1.6
        # matrix: bus-traffic-bound saturation — nearly clock-invariant.
        assert mx[-1]["vs_half_ghz"] < 1.2
        assert db[-1]["vs_half_ghz"] > 1.4 * mx[-1]["vs_half_ghz"]
