"""Table 3: synthesized logic — LEs, speed and code size per circuit."""

import pytest

from repro.experiments import table3_synthesis


class TestTable3:
    def test_bench_table3(self, once, benchmark):
        result = once(table3_synthesis.run)
        print()
        print(result.render())
        assert len(result.rows) == 7
        for row in result.rows:
            assert row["les"] == row["les_paper"]
            assert row["speed_ns"] == pytest.approx(row["speed_ns_paper"], rel=0.08)
            assert row["code_kb"] == pytest.approx(row["code_kb_paper"], rel=0.10)
        benchmark.extra_info["max_les"] = max(r["les"] for r in result.rows)
