"""STL array operations: conventional vs Active-Page backends.

The Section 5.1 extension operations, measured head to head at the
reference page size.  Data-parallel bulk operations win on pages; the
comparison table is what a library user consults before picking a
backend for a workload.
"""

import numpy as np
import pytest

from repro.radram.config import RADramConfig
from repro.stl.array import APArray

PAGES = 8
FILL = 40_000
CFG = RADramConfig.reference().with_page_bytes(64 * 1024)


def run_stl_comparison():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 16, FILL, dtype=np.uint32)
    rows = []
    operations = [
        ("insert", lambda a: a.insert(100, 7)),
        ("delete", lambda a: a.delete(100)),
        ("count", lambda a: a.count(int(values[5]))),
        ("accumulate", lambda a: a.accumulate()),
        ("partial_sum", lambda a: a.partial_sum()),
        ("rotate", lambda a: a.rotate(1234)),
        ("adjacent_difference", lambda a: a.adjacent_difference()),
    ]
    for name, call in operations:
        times = {}
        results = {}
        for backend in ("conventional", "radram"):
            array = APArray(capacity_pages=PAGES, backend=backend, radram_config=CFG)
            array.extend(values)
            before = array.elapsed_ns
            results[backend] = call(array)
            times[backend] = array.elapsed_ns - before
            results[f"{backend}_data"] = array.to_numpy()
        assert np.array_equal(
            results["conventional_data"], results["radram_data"]
        ), name
        rows.append(
            {
                "operation": name,
                "conventional_us": times["conventional"] / 1e3,
                "radram_us": times["radram"] / 1e3,
                "speedup": times["conventional"] / times["radram"],
            }
        )
    return rows


class TestSTLOperations:
    def test_bench_stl_operations(self, once):
        rows = once(run_stl_comparison)
        print()
        print(f"{'operation':<22} {'conventional':>14} {'RADram':>12} {'speedup':>8}")
        for r in rows:
            print(
                f"{r['operation']:<22} {r['conventional_us']:>12.1f}us "
                f"{r['radram_us']:>10.1f}us {r['speedup']:>8.1f}"
            )
        by_op = {r["operation"]: r["speedup"] for r in rows}
        # Bulk data manipulation belongs in memory...
        for op in ("insert", "delete", "count", "accumulate", "adjacent_difference"):
            assert by_op[op] > 1.0, op
        # ...and the paper's headline primitives win big.
        assert by_op["insert"] > 3.0
