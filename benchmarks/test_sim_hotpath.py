"""Cache-hierarchy hot-path benchmarks and the perf-regression gate.

Replays the :mod:`repro.experiments.simbench` workloads on both the
vectorized engine and the retained scalar reference, then compares each
workload's speedup *ratio* against the committed ``BENCH_sim.json``
baseline.  Ratios (not wall-clock) gate regressions: both engines run
on the same host in the same process, so the ratio is a property of the
code.  A workload fails if its ratio falls more than
``REGRESSION_TOLERANCE`` (30%) below baseline.

Refresh the baseline after intentional perf changes with
``python -m repro bench``.
"""

import pytest

from repro.experiments import simbench


@pytest.fixture(scope="module")
def baseline():
    try:
        return simbench.load_baseline()
    except OSError:
        pytest.skip("BENCH_sim.json missing; run `python -m repro bench`")


@pytest.fixture(scope="module")
def current():
    return simbench.run_benchmarks()


class TestHotpathRegressionGate:
    def test_baseline_covers_all_workloads(self, baseline):
        assert set(baseline["workloads"]) == set(simbench.WORKLOADS)

    @pytest.mark.parametrize("name", sorted(simbench.WORKLOADS))
    def test_no_speedup_regression(self, name, current, baseline):
        failures = simbench.check_regressions(
            {name: current[name]}, {"workloads": {name: baseline["workloads"][name]}}
        )
        assert not failures, failures

    def test_vectorized_engine_beats_scalar_on_wide_batches(self, current):
        """The headline claim: >=5x on the cache-bound wide scans."""
        for name in ("cold_read_scan_4mb", "cold_write_scan_4mb", "strided_50k_128b"):
            assert current[name]["speedup_ratio"] >= 3.5, (
                name,
                current[name],
            )


class TestHotpathTimings:
    """Wall-clock per workload, for ``pytest-benchmark`` trend tracking."""

    @pytest.mark.parametrize("name", sorted(simbench.WORKLOADS))
    def test_bench_workload(self, benchmark, name):
        streams, write, repeats = simbench.WORKLOADS[name]()

        def run():
            l1d = simbench._reference_hierarchy(simbench.build_hierarchy)
            for _ in range(repeats):
                for lines in streams:
                    l1d.access_lines(lines, write=write)

        benchmark.pedantic(run, rounds=1, iterations=1)
