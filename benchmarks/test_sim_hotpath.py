"""Cache-hierarchy hot-path benchmarks and the perf-regression gate.

Replays the :mod:`repro.experiments.simbench` workloads on both the
vectorized engine and the retained scalar reference, then compares each
workload's speedup *ratio* against the committed ``BENCH_sim.json``
baseline.  Ratios (not wall-clock) gate regressions: both engines run
on the same host in the same process, so the ratio is a property of the
code.  A workload fails if its ratio falls more than
``REGRESSION_TOLERANCE`` (30%) below baseline.

Refresh the baseline after intentional perf changes with
``python -m repro bench``.

Two tracing gates ride along: with :mod:`repro.trace` disabled (the
default) the wide-batch ratios must stay within a tight 5% budget of
baseline — the per-batch ``TRACER is None`` guard is the only cost the
instrumentation is allowed — and with a tracer enabled the same hot
path must actually emit events into a bounded ring.

The fault-injection layer gets the same treatment: with
``RADramConfig.faults`` left ``None`` (the default) the activate/wait
dispatch path pays one ``faults is None`` test and nothing else, gated
by a paired same-workload ratio within ±5% of baseline.

So does the runtime sanitizer: with ``repro.check`` disabled (the
default — ``CHECKER is None``) the instrumented processor/cache/engine
hot paths pay one guard each, gated by the dispatch benchmark's
``dispatch_ratio`` (hook-free scalar yardstick over checker-off
dispatch time — the tracing gate's methodology) staying within 5%
below baseline; with a checker enabled the same dispatch workload must
run violation-free, and its cost may not blow past a loose sanity
ceiling.
"""

import time

import pytest

from repro.experiments import simbench


def _remeasure_dispatch_gate(check, baseline, schedule=(9, 15)):
    """Run a paired dispatch gate, re-measuring on failure.

    The paired ratios sit near the host's noise floor, so a failing
    first measurement is re-taken with more trials after a pause long
    enough for a scheduler burst to pass.  A genuine leak outside the
    disabled-path guards moves the ratio far beyond the 5% budget, so
    it cannot hide behind re-measurement.
    """
    failures = check(simbench.run_dispatch_workload(), baseline)
    for trials in schedule:
        if not failures:
            break
        time.sleep(5.0)
        failures = check(simbench.run_dispatch_workload(trials=trials), baseline)
    return failures


@pytest.fixture(scope="module")
def baseline():
    try:
        return simbench.load_baseline()
    except OSError:
        pytest.skip("BENCH_sim.json missing; run `python -m repro bench`")


@pytest.fixture(scope="module")
def current():
    return simbench.run_benchmarks()


class TestHotpathRegressionGate:
    def test_baseline_covers_all_workloads(self, baseline):
        assert set(baseline["workloads"]) == set(simbench.WORKLOADS)

    @pytest.mark.parametrize("name", sorted(simbench.WORKLOADS))
    def test_no_speedup_regression(self, name, current, baseline):
        failures = simbench.check_regressions(
            {name: current[name]}, {"workloads": {name: baseline["workloads"][name]}}
        )
        assert not failures, failures

    def test_vectorized_engine_beats_scalar_on_wide_batches(self, current):
        """The headline claim: >=5x on the cache-bound wide scans."""
        for name in ("cold_read_scan_4mb", "cold_write_scan_4mb", "strided_50k_128b"):
            assert current[name]["speedup_ratio"] >= 3.5, (
                name,
                current[name],
            )


class TestBatchedExecutionGate:
    """The fused op-stream executor must keep beating the scalar oracle.

    Gated on the paired ``batch_speedup_ratio`` (scalar
    ``batching_enabled=False`` time over batched time, identical op
    stream, same process): host noise cancels, so a fall below the
    baseline band means the executor itself regressed.
    """

    @pytest.mark.parametrize("name", sorted(simbench.BATCH_WORKLOADS))
    def test_no_batching_regression(self, name, baseline):
        if "batch_workloads" not in baseline:
            pytest.skip("baseline predates batch_workloads; refresh bench")
        failures = simbench.check_batching_regressions(
            {name: simbench.run_batch_workload(name)},
            {"batch_workloads": {name: baseline["batch_workloads"][name]}},
        )
        for trials in (7, 9):
            if not failures:
                break
            time.sleep(5.0)
            failures = simbench.check_batching_regressions(
                {name: simbench.run_batch_workload(name, trials=trials)},
                {"batch_workloads": {name: baseline["batch_workloads"][name]}},
            )
        assert not failures, failures

    def test_batched_executor_beats_scalar(self):
        """Sanity floor: batching must win on the fused workloads."""
        row = simbench.run_batch_workload("processor_step_100k")
        assert row["batch_speedup_ratio"] >= 1.1, row


class TestTracingOverheadGate:
    """repro.trace must cost nothing when off (≤5% ratio budget)."""

    def test_tracer_is_disabled_during_benchmarks(self):
        from repro.trace import events as trace_events

        assert trace_events.TRACER is None

    def test_tracing_disabled_within_overhead_budget(self, current, baseline):
        failures = simbench.check_tracing_overhead(current, baseline)
        for trials in (7, 9):
            if not failures:
                break
            # 5% sits near the host's ratio noise floor; re-measure the
            # suspects with more trials (after letting a scheduler
            # burst pass) before declaring a regression.  A genuine
            # per-line guard costs far more than 5%, so it cannot hide
            # behind a retry.
            time.sleep(5.0)
            retry = {
                name: simbench.run_workload(name, trials=trials)
                for name in failures
            }
            current = {**current, **retry}
            failures = simbench.check_tracing_overhead(current, baseline)
        assert not failures, failures


class TestFaultsOverheadGate:
    """repro.faults must cost nothing when absent (±5% paired budget)."""

    def test_reference_config_carries_no_faults(self):
        from repro.radram.config import RADramConfig

        assert RADramConfig.reference().faults is None

    def test_faults_disabled_within_overhead_budget(self, baseline):
        failures = _remeasure_dispatch_gate(
            simbench.check_faults_overhead, baseline
        )
        assert not failures, failures


class TestCheckerOverheadGate:
    """repro.check must cost nothing when off (±5% paired budget)."""

    def test_checker_is_disabled_during_benchmarks(self):
        from repro.check import runtime as check_runtime

        assert check_runtime.CHECKER is None

    def test_checker_disabled_within_overhead_budget(self, baseline):
        failures = _remeasure_dispatch_gate(
            simbench.check_checker_overhead, baseline
        )
        assert not failures, failures


class TestCheckerEnabledSmoke:
    """With a live checker the dispatch path must stay clean."""

    def test_checked_dispatch_is_violation_free(self):
        out = simbench.run_checked_dispatch_workload()
        assert out["violations"] == 0.0

    def test_checker_restored_to_none_after_smoke(self):
        from repro.check import runtime as check_runtime

        simbench.run_checked_dispatch_workload()
        assert check_runtime.CHECKER is None


class TestTracingEnabledSmoke:
    """With a live tracer the hot path must emit (and stay bounded)."""

    def test_traced_workload_captures_events(self):
        out = simbench.run_traced_workload("warm_retouch_32kb_x20")
        assert out["events"] > 0

    def test_ring_buffer_bounds_event_count(self):
        out = simbench.run_traced_workload(
            "app_trace_16line_blocks", capacity=1_000
        )
        assert out["events"] <= 1_000


class TestHotpathTimings:
    """Wall-clock per workload, for ``pytest-benchmark`` trend tracking."""

    @pytest.mark.parametrize("name", sorted(simbench.WORKLOADS))
    def test_bench_workload(self, benchmark, name):
        streams, write, repeats = simbench.WORKLOADS[name]()

        def run():
            l1d = simbench._reference_hierarchy(simbench.build_hierarchy)
            for _ in range(repeats):
                for lines in streams:
                    l1d.access_lines(lines, write=write)

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_bench_traced_workload(self, benchmark):
        benchmark.pedantic(
            lambda: simbench.run_traced_workload("warm_retouch_32kb_x20"),
            rounds=1,
            iterations=1,
        )
