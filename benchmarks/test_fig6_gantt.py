"""Figure 6: processor/page activity timeline from a real run."""

import pytest

from repro.experiments import fig6_gantt


class TestFig6:
    def test_bench_fig6(self, once):
        result = once(fig6_gantt.run)
        print()
        print(result.render())
        assert len(result.rows) == 8

    @pytest.fixture(scope="class")
    def result(self):
        return fig6_gantt.run()

    def test_activations_are_sequential(self, result):
        starts = result.column("activated_us")
        assert starts == sorted(starts)
        # Activation spacing is roughly constant (T_A per page).
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert max(gaps) < 2 * min(gaps)

    def test_pages_compute_in_parallel(self, result):
        # Page 2 starts before page 1 completes: overlapped execution.
        assert result.rows[1]["activated_us"] < result.rows[0]["completed_us"]

    def test_per_page_computation_constant(self, result):
        tcs = result.column("t_c_us")
        assert max(tcs) < 1.05 * min(tcs)
        # Database T_C ~ 61 us per page.
        assert 50 < tcs[0] < 75

    def test_gantt_embedded_in_notes(self, result):
        notes = "\n".join(result.notes)
        assert "#" in notes and "processor" in notes
