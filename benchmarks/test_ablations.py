"""Ablations of DESIGN.md's called-out design choices.

These go beyond the paper's figures to quantify the design decisions
the paper makes qualitatively: the processor-mediated vs hardware
inter-page mechanism (Section 10 future work), interrupt batching
(Section 3), reconfiguration cost (Section 6 / 10), the conservative
32-bit port (Section 3 "Power"), and the yield economics (Section 3).
"""

import pytest

from repro.apps.registry import get_app
from repro.experiments.runner import measure_speedup, run_radram
from repro.radram.config import RADramConfig
from repro.radram.power import port_width_study
from repro.radram.yieldmodel import yield_table


def comm_mechanism_ablation():
    """Dynamic programming with processor-mediated vs hardware comm."""
    app = get_app("dynamic-prog")
    rows = []
    for pages in (16, 64, 128):
        base = measure_speedup(app, pages)
        hw = measure_speedup(
            app, pages, radram_config=RADramConfig.reference().with_hardware_comm()
        )
        rows.append(
            {
                "pages": pages,
                "processor_mediated": base.speedup,
                "hardware_comm": hw.speedup,
                "gain": hw.speedup / base.speedup,
            }
        )
    return rows


def reconfiguration_ablation():
    """Kernel cost as ap_bind reconfiguration time grows.

    Current FPGAs take 100s of ms to reconfigure (Section 10); the
    sweep covers amortized-away (0) through DPGA-style fast configs up
    to 1 ms per page.
    """
    from dataclasses import replace

    app = get_app("array-insert")
    pages = 64
    rows = []
    for reconfig_us in (0.0, 1.0, 100.0, 1000.0):
        cfg = replace(
            RADramConfig.reference(), reconfig_ns_per_page=reconfig_us * 1e3
        )
        result = run_radram(app, pages, radram_config=cfg)
        # One bind per kernel: charge it explicitly on top.
        bind_ns = cfg.reconfig_ns_per_page * pages
        rows.append(
            {
                "reconfig_us_per_page": reconfig_us,
                "kernel_ms": result.total_ns / 1e6,
                "with_bind_ms": (result.total_ns + bind_ns) / 1e6,
            }
        )
    return rows


class TestCommMechanism:
    def test_bench_comm_ablation(self, once):
        rows = once(comm_mechanism_ablation)
        print()
        for row in rows:
            print(row)
        # Hardware comm helps most exactly where processor-mediated
        # communication dominates (large wavefronts).
        assert rows[-1]["gain"] > rows[0]["gain"]
        assert rows[-1]["gain"] > 1.1

    def test_hardware_comm_never_hurts_dynprog(self):
        rows = comm_mechanism_ablation()
        for row in rows:
            assert row["hardware_comm"] >= 0.95 * row["processor_mediated"]


class TestReconfiguration:
    def test_bench_reconfig_ablation(self, once):
        rows = once(reconfiguration_ablation)
        print()
        for row in rows:
            print(row)
        # Fast (DPGA-class, <=1 us) reconfiguration is in the noise;
        # 100s-of-ms-era FPGA times would dominate the kernel — the
        # paper's Section 10 concern about Active-Page swapping.
        noise = rows[1]["with_bind_ms"] / rows[0]["with_bind_ms"]
        assert noise < 1.05
        assert rows[-1]["with_bind_ms"] > 5 * rows[0]["with_bind_ms"]


class TestInterruptBatching:
    def test_batching_reduces_interrupt_time(self, once):
        from dataclasses import replace

        app = get_app("dynamic-prog")

        def run_both():
            batched = run_radram(app, 32)
            unbatched = run_radram(
                app,
                32,
                radram_config=replace(
                    RADramConfig.reference(), batch_interrupts=False
                ),
            )
            return batched, unbatched

        batched, unbatched = once(run_both)
        assert unbatched.total_ns >= batched.total_ns


class TestPortWidth:
    def test_bench_port_width_study(self, once):
        rows = once(port_width_study)
        print()
        for row in rows:
            print(row)
        # The Section 3 rationale: 32 bits keeps every circuit within
        # area and power budgets; 512 bits buys 16x bandwidth but
        # breaks area for the big circuits and raises power ~25%.
        assert rows[0]["circuits_fitting"] == rows[0]["circuits_total"]
        assert rows[-1]["circuits_fitting"] < rows[-1]["circuits_total"]
        assert rows[-1]["page_power_mw"] > 1.15 * rows[0]["page_power_mw"]


class TestYieldEconomics:
    def test_bench_yield_table(self, once):
        rows = once(yield_table)
        print()
        for row in rows:
            print(
                f"{row['chip']:10s} yield={row['yield']:.3f} "
                f"cost-vs-dram={row['cost_vs_dram']:.2f}x"
            )
        table = {r["chip"]: r for r in rows}
        assert table["radram"]["cost_vs_dram"] < 1.1
        assert 7 < table["processor"]["cost_vs_dram"] < 13
