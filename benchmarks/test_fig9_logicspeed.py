"""Figure 9: speedup vs reconfigurable-logic speed (divisor form)."""

import pytest

from repro.experiments import fig9_logicspeed

APPS = ["array-insert", "database", "median-kernel", "matrix-simplex", "mpeg-mmx"]
DIVISORS = [2, 4, 10, 20, 50, 100]


def run_fig9():
    return fig9_logicspeed.run(apps=APPS, divisors=DIVISORS)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9()

    def test_bench_fig9(self, once):
        result = once(run_fig9)
        print()
        print(result.render())
        assert len(result.rows) == len(APPS) * len(DIVISORS) * 2

    def _series(self, result, app, region):
        return [
            r["speedup"]
            for r in result.rows
            if r["application"] == app and r["region"] == region
        ]

    def test_scalable_region_sensitive(self, result):
        # Slower logic (higher divisor) hurts scalable-region speedups
        # roughly proportionally.
        for name in APPS:
            series = self._series(result, name, "scalable")
            assert series == sorted(series, reverse=True), name
            assert series[0] / series[-1] > 5, name

    def test_saturated_region_generally_insensitive(self, result):
        # At saturation the processor is the bottleneck: from 500 MHz
        # down to the reference 100 MHz the speedup barely moves.
        for name in APPS:
            series = self._series(result, name, "saturated")
            at_div2, at_div10 = series[0], series[2]
            assert at_div10 > 0.9 * at_div2, name

    def test_sensitivity_gap_between_regions(self, result):
        for name in APPS:
            scal = self._series(result, name, "scalable")
            sat = self._series(result, name, "saturated")
            scal_drop = scal[0] / scal[-1]
            sat_drop = sat[0] / sat[-1]
            assert scal_drop > 1.5 * sat_drop, name
