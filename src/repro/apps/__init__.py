"""The six applications of the paper's evaluation (Section 5).

Each application exists in two versions sharing one functional memory
image:

* a **conventional** version — all work on the processor through the
  cache hierarchy (the baseline the paper's speedups are measured
  against), and
* an **Active-Page** version — hand-partitioned between processor and
  memory system per Table 2.

Applications are registered in :mod:`repro.apps.registry`; experiment
harnesses iterate the registry rather than naming applications.
"""

from repro.apps.base import Application, Partitioning, Table4Row, Workload
from repro.apps.registry import ALL_APPS, FIG3_APPS, get_app

__all__ = [
    "ALL_APPS",
    "Application",
    "FIG3_APPS",
    "Partitioning",
    "Table4Row",
    "Workload",
    "get_app",
]
