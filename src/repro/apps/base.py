"""Application framework: the contract between workloads and harness.

An :class:`Application` produces, for a problem size measured in Active
Pages (512 KB superpages, fractional sizes allowed for the sub-page
region):

* a :class:`Workload` — synthesized input data (optionally backed by
  real bytes in a :class:`repro.sim.memory.PagedMemory`),
* a **conventional operation stream** for the baseline system, and
* a **RADram operation stream** for the Active-Page system.

Streams perform the *functional* computation inline (mutating the
workload's arrays) when the workload was built with ``functional=True``;
with ``functional=False`` they emit identical timing operations against
synthesized addresses without touching data, which is how the large
problem-size sweeps stay tractable.

Phase conventions (consumed by the Table 4 harness):

* each activation is wrapped in phase ``"activation"`` — its mean is
  the paper's T_A;
* each per-page post-processing step is wrapped in phase ``"post"`` —
  its wait-excluded mean is T_P (stall time is NO(i), not T_P).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

import numpy as np

from repro.sim import ops as O
from repro.sim.memory import PagedMemory, Region

#: Virtual base address used for timing-only (unallocated) workloads.
FAKE_BASE = 0x1000_0000

PHASE_ACTIVATION = "activation"
PHASE_POST = "post"


class Partitioning(enum.Enum):
    """Table 2's two partitioning classes."""

    MEMORY_CENTRIC = "memory-centric"
    PROCESSOR_CENTRIC = "processor-centric"


@dataclass(frozen=True)
class Table4Row:
    """The paper's Table 4 reference values for one application."""

    t_a_us: float
    t_p_us: float
    t_c_us: float  # per-page computation time, microseconds
    pages_for_overlap: int
    speedup_correlation: float


@dataclass
class Workload:
    """One synthesized problem instance.

    ``n_pages`` may be fractional (sub-page problems).  ``region`` is
    None for timing-only workloads; ``data`` holds app-specific arrays
    and parameters; ``results`` collects functional outputs for
    equivalence checks.
    """

    n_pages: float
    page_bytes: int
    functional: bool
    memory: Optional[PagedMemory] = None
    region: Optional[Region] = None
    data: Dict[str, object] = field(default_factory=dict)
    results: Dict[str, object] = field(default_factory=dict)

    @property
    def whole_pages(self) -> int:
        """Number of Active Pages the problem occupies (at least 1)."""
        return max(1, int(np.ceil(self.n_pages)))

    @property
    def base(self) -> int:
        """Base virtual address of the workload's data."""
        if self.region is not None:
            return self.region.base
        return FAKE_BASE

    def page_base(self, index: int) -> int:
        """Base virtual address of the ``index``-th page."""
        return self.base + index * self.page_bytes


class Application(abc.ABC):
    """One evaluation application in both system versions."""

    #: registry key, e.g. ``"array-insert"``.
    name: str = ""
    #: Table 2 partitioning class.
    partitioning: Partitioning = Partitioning.MEMORY_CENTRIC
    #: Table 2 prose: what the processor does.
    processor_computation: str = ""
    #: Table 2 prose: what the Active Pages do.
    active_page_computation: str = ""
    #: 32-bit words written per activation (drives T_A).
    descriptor_words: int = 8
    #: paper's Table 4 row, when the application appears there.
    paper_table4: Optional[Table4Row] = None
    #: whether conventional cost is linear in pages (enables the
    #: harness's measure-small/extrapolate-large strategy).
    linear_conventional: bool = True

    # ------------------------------------------------------------------
    # Workload construction

    @abc.abstractmethod
    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        """Synthesize a problem of ``n_pages`` Active Pages.

        ``params`` carries the values of the application's workload
        axes (see :mod:`repro.workloads`); ``None`` and an empty
        mapping both mean "the historical fixed dataset".  Unknown
        keys are ignored, so one parameter dictionary can drive an
        app family.
        """

    @staticmethod
    def _param(
        params: Optional[Mapping[str, float]], name: str, default: float
    ) -> float:
        """One axis value with its legacy default."""
        if params is None:
            return default
        return float(params.get(name, default))

    # ------------------------------------------------------------------
    # Operation streams

    @abc.abstractmethod
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        """The baseline kernel (all work on the processor)."""

    @abc.abstractmethod
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        """The partitioned kernel (Active Pages + processor)."""

    # ------------------------------------------------------------------
    # Functional verification

    def check_equivalence(self, conv: Workload, radram: Workload) -> None:
        """Raise AssertionError unless both versions computed the same.

        Default compares every key the two workloads' ``results`` have
        in common; applications may override for richer checks.
        """
        shared = set(conv.results) & set(radram.results)
        if not shared:
            raise AssertionError(
                f"{self.name}: no overlapping results to compare"
            )
        for key in sorted(shared):
            a, b = conv.results[key], radram.results[key]
            if isinstance(a, np.ndarray):
                if not np.array_equal(a, b):
                    raise AssertionError(
                        f"{self.name}: result {key!r} differs between versions"
                    )
            elif a != b:
                raise AssertionError(
                    f"{self.name}: result {key!r} differs: {a!r} != {b!r}"
                )

    # ------------------------------------------------------------------
    # Shared stream helpers

    @staticmethod
    def _stream_block(
        addr: int, nbytes: int, write: bool, chunk: int = 1 << 16
    ) -> Iterator[O.Op]:
        """Sequential access split into bounded chunks."""
        offset = 0
        while offset < nbytes:
            size = min(chunk, nbytes - offset)
            if write:
                yield O.MemWrite(addr + offset, size)
            else:
                yield O.MemRead(addr + offset, size)
            offset += size

    def activate_page(
        self, page_no: int, task, descriptor_words: Optional[int] = None
    ) -> Iterator[O.Op]:
        """One activation wrapped in the T_A accounting phase."""
        words = self.descriptor_words if descriptor_words is None else descriptor_words
        yield O.BeginPhase(PHASE_ACTIVATION)
        yield O.Activate(page_no, words, task)
        yield O.EndPhase(PHASE_ACTIVATION)
