"""Sparse-matrix multiply (Section 5.2) — processor-centric.

The key kernel is the sparse vector-vector dot product.  Each Active
Page holds one operand pair (index and value arrays co-located on the
page) plus an output staging area:

* **conventional** — the processor streams both index arrays, merge-
  compares them (~17 instructions per nonzero), gathers the values of
  matching indices, multiplies, and writes results back.  "Sparse
  vector FLOPS on a conventional system are often an order of
  magnitude lower than those for dense vectors."
* **Active Pages** — the compare-gather-compute partitioning: the page
  circuit compares indices (1 cycle per nonzero) and packs matching
  value pairs into cache-line-sized blocks (2 cycles per match); the
  processor reads only the packed pairs, multiplies at peak
  floating-point speed, and writes back cache-line blocks.

Two datasets: ``matrix-simplex`` (register-allocation LPs: constant
row density, so per-page times are constant and the analytic model
fits well) and ``matrix-boeing`` (Harwell-Boeing-like finite-element
rows: strongly varied density, which breaks the constant-time model —
the paper's 0.830 correlation outlier).
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.apps.base import (
    PHASE_POST,
    Application,
    Partitioning,
    Table4Row,
    Workload,
)
from repro.apps.data import (
    BOEING_MEAN_NNZ,
    SIMPLEX_INDEX_RANGE,
    SIMPLEX_NNZ,
    SparseVectorPair,
    boeing_pairs,
    simplex_pairs,
)
from repro.core.functions import PageTask
from repro.core.page import SYNC_BYTES
from repro.sim import ops as O
from repro.sim.memory import PagedMemory

#: Logic cycles per nonzero index compared.
CYCLES_PER_NNZ = 1.0
#: Logic cycles per matched pair gathered into the output block.
CYCLES_PER_MATCH = 2.0
#: Conventional instructions per nonzero (loads, compare, branch).
CONV_OPS_PER_NNZ = 17
#: Conventional instructions per match (address calc, FP multiply).
CONV_OPS_PER_MATCH = 8
#: Processor instructions per match in the partitioned version
#: (pipelined FP multiply over packed operands).
RADRAM_OPS_PER_MATCH = 6

_IDX = 4  # int32 indices
_VAL = 8  # float64 values


class _MatrixAppBase(Application):
    """Shared plumbing for the two sparse-matrix datasets."""

    partitioning = Partitioning.PROCESSOR_CENTRIC
    processor_computation = "Floating point multiplies"
    active_page_computation = "Index comparison and gather/scatter of data"

    def _make_pairs(
        self,
        n_pairs: int,
        seed: int,
        params: Optional[Mapping[str, float]] = None,
    ) -> List[SparseVectorPair]:
        raise NotImplementedError

    def _expected_sizes(
        self,
        n_pairs: int,
        seed: int,
        params: Optional[Mapping[str, float]] = None,
    ) -> List[dict]:
        """Per-pair (nnz_a, nnz_b, matches) without building arrays.

        Timing-only workloads need deterministic sizes; building the
        pairs and summarizing them keeps one source of truth, and pair
        construction is cheap relative to simulation.
        """
        return [
            {
                "na": len(p.idx_a),
                "nb": len(p.idx_b),
                "m": len(p.matches()),
            }
            for p in self._make_pairs(n_pairs, seed, params)
        ]

    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        w = Workload(
            n_pages=n_pages, page_bytes=page_bytes, functional=functional, memory=memory
        )
        n_pairs = w.whole_pages
        pairs = self._make_pairs(n_pairs, seed, params)
        w.data["params"] = dict(params) if params else {}
        if n_pages < 1.0:
            # Sub-page problem: one pair scaled down proportionally.
            p = pairs[0]
            keep_a = max(2, int(len(p.idx_a) * n_pages))
            keep_b = max(2, int(len(p.idx_b) * n_pages))
            pairs = [
                SparseVectorPair(
                    p.idx_a[:keep_a], p.val_a[:keep_a], p.idx_b[:keep_b], p.val_b[:keep_b]
                )
            ]
        w.data["pairs"] = pairs
        w.data["sizes"] = [
            {"na": len(p.idx_a), "nb": len(p.idx_b), "m": len(p.matches())}
            for p in pairs
        ]
        if functional:
            if memory is None:
                memory = PagedMemory(page_bytes=page_bytes)
                w.memory = memory
            w.region = memory.alloc_pages(w.whole_pages, name=self.name)
        return w

    # ------------------------------------------------------------------
    def _dot_products(self, pairs: List[SparseVectorPair]) -> np.ndarray:
        """Reference dots — identical arithmetic order to both streams."""
        dots = []
        for p in pairs:
            common, ia, ib = np.intersect1d(
                p.idx_a, p.idx_b, assume_unique=True, return_indices=True
            )
            dots.append(float(np.dot(p.val_a[ia], p.val_b[ib])))
        return np.array(dots)

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        if w.functional:
            w.results["dots"] = self._dot_products(w.data["pairs"])
        for j, size in enumerate(w.data["sizes"]):
            na, nb, m = size["na"], size["nb"], size["m"]
            base = w.page_base(j)
            idx_a, val_a = base, base + na * _IDX
            idx_b = val_a + na * _VAL
            val_b = idx_b + nb * _IDX
            out = val_b + nb * _VAL
            yield O.MemRead(idx_a, na * _IDX)
            yield O.MemRead(idx_b, nb * _IDX)
            yield O.Compute(CONV_OPS_PER_NNZ * (na + nb))
            if m:
                # Gather matched values from both value arrays: the
                # matches are spread through them, so most touches are
                # fresh lines.
                step_a = max(1, na // m)
                step_b = max(1, nb // m)
                ks = np.arange(m, dtype=np.int64)
                yield O.GatherRead(val_a + ks * (step_a * _VAL), elem_bytes=_VAL)
                yield O.GatherRead(val_b + ks * (step_b * _VAL), elem_bytes=_VAL)
                yield O.Compute(CONV_OPS_PER_MATCH * m)
                yield O.MemWrite(out, m * _VAL)

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        if w.functional:
            w.results["dots"] = self._dot_products(w.data["pairs"])
        sizes = w.data["sizes"]
        for j, size in enumerate(sizes):
            cycles = (
                CYCLES_PER_NNZ * (size["na"] + size["nb"])
                + CYCLES_PER_MATCH * size["m"]
            )
            task = PageTask.simple(cycles)
            yield from self.activate_page(w.page_base(j) // w.page_bytes, task)
        for j, size in enumerate(sizes):
            m = size["m"]
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            out = w.page_base(j) + w.page_bytes - SYNC_BYTES - 16 * max(m, 1)
            # Packed operand pairs: sequential cache-line blocks.
            yield O.MemRead(out, 16 * m)
            yield O.Compute(RADRAM_OPS_PER_MATCH * m)
            yield O.MemWrite(out, 8 * m)
            yield O.EndPhase(PHASE_POST)


class MatrixSimplexApp(_MatrixAppBase):
    """Simplex method for optimal register allocation (uniform rows)."""

    name = "matrix-simplex"
    descriptor_words = 29
    paper_table4 = Table4Row(2.033, 4.418, 13.422, 8, 0.968)

    def _make_pairs(
        self,
        n_pairs: int,
        seed: int,
        params: Optional[Mapping[str, float]] = None,
    ) -> List[SparseVectorPair]:
        # Axis: ``density`` = nnz / index range (sparsity axis); 0 is a
        # fully sparse row, 1 fully dense.  Legacy operating point
        # 606/6330 ≈ 0.0957.
        density = self._param(params, "density", SIMPLEX_NNZ / SIMPLEX_INDEX_RANGE)
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must be in [0, 1]")
        nnz = int(round(density * SIMPLEX_INDEX_RANGE))
        return simplex_pairs(n_pairs, seed=seed, nnz=nnz)


class MatrixBoeingApp(_MatrixAppBase):
    """Harwell-Boeing finite-element multiply (varied row density)."""

    name = "matrix-boeing"
    descriptor_words = 24
    paper_table4 = Table4Row(1.722, 11.486, 12.814, 9, 0.830)

    def _make_pairs(
        self,
        n_pairs: int,
        seed: int,
        params: Optional[Mapping[str, float]] = None,
    ) -> List[SparseVectorPair]:
        # Axes: ``skew`` is the interface/interior density ratio (None
        # preserves the legacy ≈8.85); ``density`` scales the mean row
        # density (0 fully sparse, 1 legacy, >1 denser).
        skew = (
            None if params is None or "skew" not in params
            else float(params["skew"])
        )
        density = self._param(params, "density", 1.0)
        if density < 0.0:
            raise ValueError("density scale cannot be negative")
        mean_nnz = int(round(density * BOEING_MEAN_NNZ))
        return boeing_pairs(n_pairs, seed=seed, mean_nnz=mean_nnz, skew=skew)
