"""MPEG decode via MMX primitives (Section 5.2) — processor-centric.

The studied kernel applies motion-correction matrices to P/B frames:
``frame = paddsw(frame, correction)`` over large int16 blocks.

* **conventional** — SimpleScalar-style MMX: each instruction produces
  32 bits, so the processor issues one instruction per word plus the
  loads/stores, streaming both operands through the caches.
* **Active Pages** — a RADram MMX instruction operates on up to 256 KB
  in the page's logic; the processor's job shrinks to dispatching the
  wide instruction (a large descriptor: opcode plus correction-block
  parameters, hence the big T_A) and polling.

Each page holds a frame half and a correction half; one wide
instruction corrects the whole frame half in place.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.apps.base import (
    PHASE_POST,
    Application,
    Partitioning,
    Table4Row,
    Workload,
)
from repro.apps.data import apply_byte_mutations, mpeg_blocks
from repro.core.page import SYNC_BYTES
from repro.radram.mmx import (
    conventional_instruction_count,
    mmx_op,
    radram_mmx_task,
)
from repro.sim import ops as O
from repro.sim.memory import PagedMemory

#: Conventional instructions per MMX word beyond the op itself
#: (effective address + load + store pipeline slots).
CONV_OPS_PER_WORD = 3

_PADDSW = mmx_op("paddsw")


def frame_bytes_per_page(page_bytes: int) -> int:
    """Bytes of frame data per page (half the data area, word aligned)."""
    usable = page_bytes - SYNC_BYTES
    return (usable // 2) & ~0x3


class MpegMMXApp(Application):
    """Motion-correction application with MMX primitives."""

    name = "mpeg-mmx"
    partitioning = Partitioning.PROCESSOR_CENTRIC
    processor_computation = "MMX dispatch; discrete cosine transform"
    active_page_computation = "MMX instructions"
    descriptor_words = 136
    paper_table4 = Table4Row(8.484, 0.438, 142.3, 9, 0.997)

    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        w = Workload(
            n_pages=n_pages, page_bytes=page_bytes, functional=functional, memory=memory
        )
        fbp = frame_bytes_per_page(page_bytes)
        total_frame_bytes = max(128, int(round(n_pages * fbp)) & ~0x7F)
        # Axes: ``amplitude`` scales the int16 value ranges (how often
        # saturating adds actually saturate); ``byte_flips`` applies
        # seeded byte-level mutations to both operand blocks (fuzzing).
        amplitude = self._param(params, "amplitude", 1.0)
        byte_flips = int(self._param(params, "byte_flips", 0))
        w.data["fbp"] = fbp
        w.data["frame_bytes"] = total_frame_bytes
        w.data["params"] = dict(params) if params else {}
        if functional:
            if memory is None:
                memory = PagedMemory(page_bytes=page_bytes)
                w.memory = memory
            w.region = memory.alloc_pages(w.whole_pages, name=self.name)
            n_blocks = total_frame_bytes // 128  # 8x8 int16 blocks
            frames, corrections = mpeg_blocks(n_blocks, seed=seed, amplitude=amplitude)
            if byte_flips:
                frames = apply_byte_mutations(frames, byte_flips, seed=seed)
                corrections = apply_byte_mutations(
                    corrections, byte_flips, seed=seed + 1
                )
            w.data["frames"] = frames.reshape(-1)
            w.data["corrections"] = corrections.reshape(-1)
        return w

    # ------------------------------------------------------------------
    def _page_frame_bytes(self, w: Workload) -> List[int]:
        fbp, remaining = w.data["fbp"], w.data["frame_bytes"]
        out = []
        while remaining > 0:
            out.append(min(fbp, remaining))
            remaining -= fbp
        return out

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        if w.functional:
            w.results["frames"] = _PADDSW.apply(
                w.data["frames"], w.data["corrections"]
            )
        for j, nbytes in enumerate(self._page_frame_bytes(w)):
            frame_base = w.page_base(j)
            corr_base = frame_base + nbytes
            insns = conventional_instruction_count(nbytes)
            chunk = 1 << 15
            offset = 0
            while offset < nbytes:
                size = min(chunk, nbytes - offset)
                yield O.MemRead(frame_base + offset, size)
                yield O.MemRead(corr_base + offset, size)
                yield O.Compute(CONV_OPS_PER_WORD * (size // 4))
                yield O.MemWrite(frame_base + offset, size)
                offset += size
        yield O.Compute(100)  # dispatch loop epilogue

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        if w.functional:
            w.results["frames"] = _PADDSW.apply(
                w.data["frames"], w.data["corrections"]
            )
        per_page = self._page_frame_bytes(w)
        for j, nbytes in enumerate(per_page):
            task = radram_mmx_task(nbytes)
            yield from self.activate_page(w.page_base(j) // w.page_bytes, task)
        for j in range(len(per_page)):
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            yield O.MemRead(w.page_base(j) + w.page_bytes - SYNC_BYTES, 4)
            yield O.Compute(300)  # select and queue the next instruction
            yield O.EndPhase(PHASE_POST)
