"""The STL array template application (Section 5.1).

A C++ ``array<T>`` backed by dense storage whose ``insert``, ``delete``
and ``find``/``count`` operations are offloaded to Active Pages:

* **insert** — every page shifts its slice up one slot in parallel;
  the processor performs the cross-page carries (Table 2: "cross-page
  moves") by saving each page's boundary word before activation and
  writing it into the next page afterwards.
* **delete** — the mirror image, shifting down.  For arrays smaller
  than one Active Page the RADram version adaptively falls back to the
  processor, which the SimpleScalar-style ISA favours for deletes
  (the paper's one sub-page anomaly).
* **find** — each page counts matches of a 32-bit key with a binary
  comparison circuit; the processor sums per-page counts.

Layout note: the conventional system stores the array contiguously;
the Active-Page system stores it as the concatenation of per-page data
areas (each page reserves its top 64 bytes for sync variables).  The
equivalence checks compare logical array contents, not raw addresses.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.apps.base import (
    PHASE_ACTIVATION,
    PHASE_POST,
    Application,
    Partitioning,
    Table4Row,
    Workload,
)
from repro.core.functions import PageTask
from repro.core.page import SYNC_BYTES
from repro.sim import ops as O
from repro.sim.memory import PagedMemory

#: Logic cycles per word for the shift circuits (32-bit port, one word
#: read+written per cycle via the row buffer).
SHIFT_CYCLES_PER_WORD = 1.0
#: Logic cycles per word for the compare-and-count circuit.
FIND_CYCLES_PER_WORD = 9.0 / 8.0

_WORD = 4


def words_per_page(page_bytes: int) -> int:
    """32-bit words in one page's data area (page minus sync area)."""
    return (page_bytes - SYNC_BYTES) // _WORD


class _ArrayAppBase(Application):
    """Shared workload construction for the three array primitives."""

    partitioning = Partitioning.MEMORY_CENTRIC
    processor_computation = "C++ code using array class; cross-page moves"
    active_page_computation = "Array insert, delete, and find"

    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        w = Workload(
            n_pages=n_pages,
            page_bytes=page_bytes,
            functional=functional,
            memory=memory,
        )
        wpp = words_per_page(page_bytes)
        total = max(8, int(round(n_pages * wpp)))
        # Axes: ``position`` is the insert/delete point as a fraction
        # of the array (how many pages shift); ``key_density`` the
        # planted-key fraction (the find/count selectivity).
        position = self._param(params, "position", 1.0 / 3.0)
        key_density = self._param(params, "key_density", 1.0 / 97.0)
        if not 0.0 <= position <= 1.0:
            raise ValueError("position must be in [0, 1]")
        if not 0.0 <= key_density <= 1.0:
            raise ValueError("key_density must be in [0, 1]")
        w.data["wpp"] = wpp
        w.data["total_words"] = total
        # Clamp so insert/delete always have at least one word to move.
        w.data["position"] = min(total - 2, int(position * total)) if params else total // 3
        w.data["key"] = 0x5A5A5A5A
        w.data["params"] = dict(params) if params else {}
        if functional:
            if memory is None:
                memory = PagedMemory(page_bytes=page_bytes)
                w.memory = memory
            w.region = memory.alloc_pages(w.whole_pages, name=self.name)
            rng = np.random.default_rng(seed)
            values = rng.integers(0, 1 << 20, total, dtype=np.uint32)
            # Plant copies of the key at the axis density (legacy ~1%).
            if params is not None and "key_density" in params:
                n_planted = int(round(total * key_density))
            else:
                n_planted = max(1, total // 97)
            planted = rng.choice(total, size=n_planted, replace=False)
            values[planted] = w.data["key"]
            start = 0
            for chunk in self._page_slices(w):
                chunk[:] = values[start : start + len(chunk)]
                start += len(chunk)
            w.data["initial"] = values
        return w

    # -- paged logical array helpers ----------------------------------

    def _page_word_counts(self, w: Workload) -> List[int]:
        """Words stored in each page (last page may be partial)."""
        wpp = w.data["wpp"]
        remaining = w.data["total_words"]
        counts = []
        while remaining > 0:
            counts.append(min(wpp, remaining))
            remaining -= wpp
        return counts

    def _page_slices(self, w: Workload) -> List[np.ndarray]:
        """Typed views of each page's occupied data words."""
        assert w.functional and w.region is not None
        views = []
        for j, count in enumerate(self._page_word_counts(w)):
            start = j * w.page_bytes
            page = w.region.buffer[start : start + w.page_bytes - SYNC_BYTES]
            views.append(page.view(np.uint32)[:count])
        return views

    def logical_array(self, w: Workload) -> np.ndarray:
        """The array as the application sees it (concatenated pages)."""
        return np.concatenate(self._page_slices(w))

    def _sync_addr(self, w: Workload, page_index: int) -> int:
        return w.page_base(page_index) + w.page_bytes - SYNC_BYTES

    def _word_addr(self, w: Workload, index: int) -> int:
        """Virtual address of logical word ``index`` in paged layout."""
        wpp = w.data["wpp"]
        page, offset = divmod(index, wpp)
        return w.page_base(page) + offset * _WORD

    # -- conventional-layout workload ----------------------------------

    def conventional_workload(self, *args, **kwargs) -> Workload:
        """Same problem, contiguous layout (no per-page sync areas)."""
        w = self.workload(*args, **kwargs)
        if w.functional:
            flat = self.logical_array(w).copy()
            w.data["flat"] = flat
        return w


class ArrayInsertApp(_ArrayAppBase):
    """``array.insert(position, value)``."""

    name = "array-insert"
    descriptor_words = 29
    paper_table4 = Table4Row(2.058, 0.387, 1250.0, 3225, 0.999)

    VALUE = 0x1234_5678

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        total, pos = w.data["total_words"], w.data["position"]
        moved = total - pos - 1  # capacity-preserving: last word drops
        if w.functional:
            flat = w.data["flat"]
            tail = flat[pos:-1].copy()
            flat[pos + 1 :] = tail
            flat[pos] = self.VALUE
            w.results["array"] = flat.copy()
        addr = w.base + pos * _WORD
        chunk_words = 1 << 14
        done = 0
        while done < moved:
            n = min(chunk_words, moved - done)
            yield O.MemRead(addr + done * _WORD, n * _WORD)
            yield O.MemWrite(addr + done * _WORD + _WORD, n * _WORD)
            yield O.Compute(2 * n)
            done += n
        yield O.Compute(20)  # bookkeeping: size update, bounds check

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        wpp, total, pos = w.data["wpp"], w.data["total_words"], w.data["position"]
        counts = self._page_word_counts(w)
        first_page = pos // wpp
        pages = list(range(first_page, len(counts)))

        carries = {}
        slices = self._page_slices(w) if w.functional else None
        if w.functional:
            # Save each affected page's last word BEFORE any page
            # shifts (the cross-page carry values).
            for j in pages[:-1]:
                carries[j + 1] = int(slices[j][-1])

        for j in pages:
            yield O.BeginPhase(PHASE_ACTIVATION)
            if j < pages[-1]:
                # Processor saves this page's boundary word (the carry
                # into page j+1) BEFORE activating the page: reading it
                # after dispatch would race the in-flight shift.  Same
                # address set and cost as reading page j-1's last word
                # one iteration later, without the race.
                yield O.GatherRead([self._word_addr(w, (j + 1) * wpp - 1)])
            start_local = pos - j * wpp if j == first_page else 0
            shifted = max(0, counts[j] - start_local - (1 if j == len(counts) - 1 else 0))
            task = PageTask.simple(shifted * SHIFT_CYCLES_PER_WORD)
            yield O.Activate(w.page_base(j) // w.page_bytes, self.descriptor_words, task)
            yield O.EndPhase(PHASE_ACTIVATION)
            if w.functional:
                sl = slices[j]
                lo = start_local
                tail = sl[lo:-1].copy()
                sl[lo + 1 :] = tail

        for j in pages:
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            if j > first_page:
                yield O.ScatterWrite([self._word_addr(w, j * wpp)])
                if w.functional:
                    slices[j][0] = carries[j]
            else:
                if w.functional:
                    slices[j][pos - j * wpp] = self.VALUE
            yield O.MemRead(self._sync_addr(w, j), _WORD)
            yield O.Compute(115)  # size update, iterator fix-up
            yield O.EndPhase(PHASE_POST)
        if w.functional:
            w.results["array"] = self.logical_array(w).copy()


class ArrayDeleteApp(_ArrayAppBase):
    """``array.delete(position)`` (adaptive below one page)."""

    name = "array-delete"
    descriptor_words = 27
    paper_table4 = Table4Row(1.927, 0.512, 1250.0, 2438, 0.999)

    # ------------------------------------------------------------------
    def _move_ops(self, w: Workload) -> Iterator[O.Op]:
        """Timing ops of the processor-side shift-down (memmove)."""
        total, pos = w.data["total_words"], w.data["position"]
        moved = total - pos - 1
        addr = w.base + pos * _WORD
        chunk_words = 1 << 14
        done = 0
        while done < moved:
            n = min(chunk_words, moved - done)
            yield O.MemRead(addr + (done + 1) * _WORD, n * _WORD)
            yield O.MemWrite(addr + done * _WORD, n * _WORD)
            yield O.Compute(2 * n)
            done += n
        yield O.Compute(20)

    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        pos = w.data["position"]
        if w.functional:
            flat = w.data["flat"]
            flat[pos:-1] = flat[pos + 1 :].copy()
            flat[-1] = 0
            w.results["array"] = flat.copy()
        yield from self._move_ops(w)

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        wpp, total, pos = w.data["wpp"], w.data["total_words"], w.data["position"]
        if w.n_pages < 1.0:
            # Sub-page adaptive algorithm: the processor's fast delete
            # beats activation overhead for arrays within one page.
            if w.functional:
                sl = self._page_slices(w)[0]
                sl[pos:-1] = sl[pos + 1 :].copy()
                sl[-1] = 0
                w.results["array"] = self.logical_array(w).copy()
            yield from self._move_ops(w)
            return
        counts = self._page_word_counts(w)
        first_page = pos // wpp
        pages = list(range(first_page, len(counts)))

        carries = {}
        slices = self._page_slices(w) if w.functional else None
        if w.functional:
            # Save each following page's first word BEFORE shifts (it
            # becomes the previous page's new last word).
            for j in pages[1:]:
                carries[j - 1] = int(slices[j][0])

        for j in pages:
            yield O.BeginPhase(PHASE_ACTIVATION)
            if j < pages[-1]:
                yield O.GatherRead([self._word_addr(w, (j + 1) * wpp)])
            start_local = pos - j * wpp if j == first_page else 0
            shifted = max(0, counts[j] - start_local - 1)
            task = PageTask.simple(shifted * SHIFT_CYCLES_PER_WORD)
            yield O.Activate(w.page_base(j) // w.page_bytes, self.descriptor_words, task)
            yield O.EndPhase(PHASE_ACTIVATION)
            if w.functional:
                sl = slices[j]
                lo = start_local
                sl[lo:-1] = sl[lo + 1 :].copy()

        for j in pages:
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            if j < pages[-1]:
                yield O.ScatterWrite([self._word_addr(w, (j + 1) * wpp - 1)])
                if w.functional:
                    slices[j][-1] = carries[j]
            else:
                # Zero-fill the vacated tail slot.
                yield O.ScatterWrite([self._word_addr(w, j * wpp + 0)])
                if w.functional:
                    slices[j][-1] = 0
            yield O.MemRead(self._sync_addr(w, j), _WORD)
            # Size update plus the destructor/iterator fix-up the STL
            # delete path performs per displaced block.
            yield O.Compute(235)
            yield O.EndPhase(PHASE_POST)
        if w.functional:
            w.results["array"] = self.logical_array(w).copy()


class ArrayFindApp(_ArrayAppBase):
    """``array.count(key)`` — the binary comparison circuit."""

    name = "array-find"
    descriptor_words = 25
    paper_table4 = Table4Row(1.776, 0.923, 1500.0, 1624, 0.999)

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        total, key = w.data["total_words"], w.data["key"]
        if w.functional:
            w.results["count"] = int(np.count_nonzero(w.data["flat"] == key))
            w.results["array"] = w.data["flat"].copy()
        chunk_words = 1 << 14
        done = 0
        while done < total:
            n = min(chunk_words, total - done)
            yield O.MemRead(w.base + done * _WORD, n * _WORD)
            yield O.Compute(2 * n)
            done += n
        yield O.Compute(20)

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        key = w.data["key"]
        counts = self._page_word_counts(w)
        slices = self._page_slices(w) if w.functional else None
        page_counts = []

        for j, count in enumerate(counts):
            task = PageTask.simple(count * FIND_CYCLES_PER_WORD)
            yield from self.activate_page(w.page_base(j) // w.page_bytes, task)
            if w.functional:
                page_counts.append(int(np.count_nonzero(slices[j] == key)))

        total_count = 0
        for j in range(len(counts)):
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            # Read the page's result words and fold into the total,
            # plus per-page bookkeeping for the C++ count() caller.
            yield O.MemRead(self._sync_addr(w, j), 64)
            yield O.Compute(640)
            yield O.EndPhase(PHASE_POST)
            if w.functional:
                total_count += page_counts[j]
        if w.functional:
            w.results["count"] = total_count
            w.results["array"] = self.logical_array(w).copy()
