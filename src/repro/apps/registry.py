"""Application registry.

``ALL_APPS`` maps names to singleton application instances;
``FIG3_APPS`` lists the applications of the paper's Figure 3/4 sweeps
in the paper's naming.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.array import ArrayDeleteApp, ArrayFindApp, ArrayInsertApp
from repro.apps.base import Application
from repro.apps.database import DatabaseApp
from repro.apps.lcs import LCSApp
from repro.apps.matrix import MatrixBoeingApp, MatrixSimplexApp
from repro.apps.median import MedianApp, MedianTotalApp
from repro.apps.mpeg import MpegMMXApp

ALL_APPS: Dict[str, Application] = {
    app.name: app
    for app in [
        ArrayInsertApp(),
        ArrayDeleteApp(),
        ArrayFindApp(),
        DatabaseApp(),
        MedianApp(),
        MedianTotalApp(),
        LCSApp(),
        MatrixSimplexApp(),
        MatrixBoeingApp(),
        MpegMMXApp(),
    ]
}

#: The Figure 3 / Figure 4 application set.
FIG3_APPS: List[str] = [
    "array-insert",
    "array-delete",
    "array-find",
    "database",
    "median-kernel",
    "dynamic-prog",
    "matrix-simplex",
    "matrix-boeing",
    "mpeg-mmx",
]

#: One representative application per workload family, in the order
#: the parametric generator framework (repro.workloads) covers them:
#: database, median, LCS, the two matrix datasets, array, and MPEG.
#: ``repro fuzz`` draws its candidates from these by default.
FUZZ_APPS: List[str] = [
    "database",
    "median-kernel",
    "dynamic-prog",
    "matrix-simplex",
    "matrix-boeing",
    "array-insert",
    "array-find",
    "mpeg-mmx",
]

#: Applications with a Table 4 row, in the paper's row order.
TABLE4_APPS: List[str] = [
    "array-insert",
    "array-delete",
    "array-find",
    "database",
    "matrix-simplex",
    "matrix-boeing",
    "median-kernel",
    "mpeg-mmx",
]


def get_app(name: str) -> Application:
    """Look up an application by its registry name."""
    try:
        return ALL_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(ALL_APPS)}"
        ) from None
