"""Largest common subsequence / dynamic programming (Section 5.1).

The n x n DP table is distributed across Active Pages as row bands;
the computation proceeds as a wavefront over a K-band x K-chunk grid.
The processor orchestrates the wavefront: at each anti-diagonal step it
copies boundary-row segments from each band's predecessor into the
band's halo (processor-mediated inter-page communication) and dispatches
the band's next chunk; pages compute chunks at one logic cycle per cell.

This realizes the paper's O(n log n)-flavoured wavefront and its
observed behaviour: non-overlap stays high (the processor is mostly
coordinating, not computing), and for very large problems the
processor-mediated communication dominates, bending the speedup curve
back down.

Backtracking runs entirely on the processor in *both* versions, per
Table 2.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.apps.base import (
    PHASE_ACTIVATION,
    PHASE_POST,
    Application,
    Partitioning,
    Workload,
)
from repro.apps.data import related_sequences
from repro.core.functions import CommRequest, PageTask, Segment
from repro.core.page import SYNC_BYTES
from repro.sim import ops as O
from repro.sim.memory import PagedMemory

#: Logic cycles per DP cell (two chained MAX units, pipelined).
CYCLES_PER_CELL = 1.0
#: Conventional instructions per DP cell.
CONV_OPS_PER_CELL = 6
#: Instructions per backtracking step.
BACKTRACK_OPS = 20

_CELL = 2  # int16 table entries


def cells_per_page(page_bytes: int) -> int:
    return (page_bytes - SYNC_BYTES) // _CELL


class LCSApp(Application):
    """Protein-sequence LCS via wavefront dynamic programming."""

    name = "dynamic-prog"
    partitioning = Partitioning.MEMORY_CENTRIC
    processor_computation = "Backtracking"
    active_page_computation = "Compute MINs and fills table"
    #: per-chunk dispatch: the band's parameters are bound once, each
    #: activation only carries the chunk index.
    descriptor_words = 2
    paper_table4 = None  # dynamic prog is not in Table 4

    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        w = Workload(
            n_pages=n_pages, page_bytes=page_bytes, functional=functional, memory=memory
        )
        cpp = cells_per_page(page_bytes)
        n = max(8, int(round(np.sqrt(n_pages * cpp))))
        bands = w.whole_pages
        # Axis: ``similarity`` in [0, 1] is the sequence-similarity
        # axis — 1 gives identical sequences, the legacy default 0.85
        # the homolog-like 15% mutation rate.
        similarity = self._param(params, "similarity", 0.85)
        if not 0.0 <= similarity <= 1.0:
            raise ValueError("similarity must be in [0, 1]")
        w.data["n"] = n
        w.data["bands"] = bands
        w.data["band_rows"] = -(-n // bands)
        w.data["chunk_cols"] = -(-n // bands)
        w.data["params"] = dict(params) if params else {}
        if functional:
            if memory is None:
                memory = PagedMemory(page_bytes=page_bytes)
                w.memory = memory
            w.region = memory.alloc_pages(w.whole_pages, name=self.name)
            a, b = related_sequences(n, mutation_rate=1.0 - similarity, seed=seed)
            w.data["seq_a"] = a
            w.data["seq_b"] = b
        return w

    # ------------------------------------------------------------------
    def _lcs_by_bands(self, w: Workload) -> int:
        """Functional LCS length, computed band of rows at a time."""
        a, b = w.data["seq_a"], w.data["seq_b"]
        band_rows = w.data["band_rows"]
        b_arr = np.frombuffer(b, dtype=np.uint8)
        prev = np.zeros(len(b) + 1, dtype=np.int32)
        for band_start in range(0, len(a), band_rows):
            # The boundary row `prev` is what the wavefront hands from
            # band i-1 to band i, chunk by chunk.
            for ch in a[band_start : band_start + band_rows]:
                curr = np.zeros_like(prev)
                candidate = np.maximum(prev[:-1] + (b_arr == ch), prev[1:])
                np.maximum.accumulate(candidate, out=curr[1:])
                prev = curr
        return int(prev[-1])

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        n = w.data["n"]
        if w.functional:
            w.results["lcs"] = self._lcs_by_bands(w)
        row_bytes = n * _CELL
        for r in range(n):
            yield O.Compute(CONV_OPS_PER_CELL * n)
            yield O.MemWrite(w.base + r * row_bytes, row_bytes)
        yield from self._backtrack_stream(w)

    def _backtrack_stream(self, w: Workload) -> Iterator[O.Op]:
        """Walk the table from (n, n) back to the origin."""
        n = w.data["n"]
        row_bytes = n * _CELL
        steps = 2 * n
        # The path walks up/left one cell at a time: one random-ish
        # table read per step.
        k = np.arange(steps, dtype=np.int64)
        path = (
            w.base
            + (n - 1 - k // 2) * row_bytes
            + (n - 1 - (k + 1) // 2) * _CELL
        )
        chunk = 1 << 12
        for i in range(0, steps, chunk):
            yield O.GatherRead(path[i : i + chunk], elem_bytes=_CELL)
            yield O.Compute(BACKTRACK_OPS * min(chunk, steps - i))

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        n, bands = w.data["n"], w.data["bands"]
        band_rows, chunk_cols = w.data["band_rows"], w.data["chunk_cols"]
        chunk_cells = band_rows * chunk_cols
        chunks = bands  # square chunk grid: one chunk column per band
        if w.functional:
            w.results["lcs"] = self._lcs_by_bands(w)

        # With the Section 10 hardware comm network, boundary rows are
        # in-page references the network satisfies; otherwise the
        # processor copies them (the paper's reference mechanism).
        rconfig = w.data.get("radram_config")
        hardware_comm = (
            rconfig is not None and rconfig.comm_mechanism == "hardware"
        )

        boundary_bytes = chunk_cols * _CELL
        for step in range(bands + chunks - 1):
            active: List[Tuple[int, int]] = [
                (i, step - i)
                for i in range(max(0, step - chunks + 1), min(bands, step + 1))
            ]
            for band, chunk in active:
                yield O.BeginPhase(PHASE_ACTIVATION)
                segments = []
                # This activation touches its halo row and the chunk's
                # cell block — declared so the sanitizer's race detector
                # can prove the boundary copy below (which reads band-1
                # while band-1 computes chunk+1) never overlaps an
                # in-flight span.  The read occupies unit offsets
                # [band_rows-1+chunk, band_rows+chunk) of band-1, the
                # in-flight computed block [(chunk+1)*band_rows,
                # (chunk+2)*band_rows): disjoint for all band_rows >= 1;
                # the in-flight halo overlaps only when band_rows == 2,
                # below any practical sweep size.
                spans = [
                    (
                        w.page_base(band) + chunk * chunk_cells * _CELL,
                        chunk_cells * _CELL,
                    )
                ]
                if band > 0:
                    src = w.page_base(band - 1) + (band_rows - 1) * chunk_cols * _CELL
                    dst = w.page_base(band) + chunk * boundary_bytes
                    spans.append((dst, boundary_bytes))
                    if hardware_comm:
                        # The page pulls its boundary over the in-chip
                        # network before computing.
                        segments.append(
                            Segment(
                                0.0,
                                CommRequest(
                                    nbytes=boundary_bytes,
                                    src_vaddr=src + chunk * boundary_bytes,
                                    dst_vaddr=dst,
                                ),
                            )
                        )
                    else:
                        # Processor-mediated boundary copy; the halo
                        # write must be flushed out of the caches before
                        # dispatch or the page would compute on stale
                        # DRAM (the paper's Section 4 coherence rule).
                        yield O.MemRead(src + chunk * boundary_bytes, boundary_bytes)
                        yield O.MemWrite(dst, boundary_bytes)
                        yield O.FlushRange(dst, boundary_bytes)
                        yield O.Compute(20)
                segments.append(Segment(chunk_cells * CYCLES_PER_CELL))
                task = PageTask.of(segments, working_spans=spans)
                yield O.Activate(
                    w.page_base(band) // w.page_bytes, self.descriptor_words, task
                )
                yield O.EndPhase(PHASE_ACTIVATION)
            # Wavefront barrier: the next anti-diagonal needs these done.
            for band, chunk in active:
                yield O.BeginPhase(PHASE_POST)
                yield O.WaitPage(w.page_base(band) // w.page_bytes)
                yield O.Compute(12)
                yield O.EndPhase(PHASE_POST)
        # Read the final corner cell (the LCS length), then backtrack.
        yield O.MemRead(w.page_base(bands - 1) + w.page_bytes - SYNC_BYTES, 4)
        yield from self._backtrack_stream(w)
