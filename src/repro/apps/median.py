"""Image median filtering (Section 5.1).

A 3x3 median filter over a uint16 image.  The image is divided into
row bands, one per Active Page; each band carries two halo rows (one
above, one below) so the kernel never leaves its page:

* **conventional** — a hand-tuned scan: ~25 instructions per pixel
  (the minimal-comparison median-of-9 network plus loads/stores).
* **Active Pages (median-kernel)** — each page filters its band with a
  pipelined 9-value sorting circuit at 4/3 logic cycles per pixel; the
  processor only dispatches and polls.
* **median-total** — additionally simulates the two processor phases
  around the kernel: transforming the scanline-ordered source image
  into the banded-with-halo page layout (a strided gather whose cost
  depends on the L1 data cache — the Figure 5 stride effects) and
  reading the filtered bands back out.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.apps.base import (
    PHASE_POST,
    Application,
    Partitioning,
    Table4Row,
    Workload,
)
from repro.apps.data import apply_byte_mutations, median3x3_reference, noisy_image
from repro.core.functions import PageTask
from repro.core.page import SYNC_BYTES
from repro.sim import ops as O
from repro.sim.memory import PagedMemory

#: Logic cycles per pixel: pipelined sorter at ~1 pixel/cycle plus
#: row-buffer refill overhead.
CYCLES_PER_PIXEL = 4.0 / 3.0
#: Conventional instructions per pixel (minimal median-of-9 network).
CONV_OPS_PER_PIXEL = 25

_PX = 2  # bytes per uint16 pixel


def band_geometry(page_bytes: int) -> Tuple[int, int]:
    """``(width, rows_per_page)`` for a page size.

    Width is the power of two giving roughly square bands; each page
    stores its band rows plus two halo rows.
    """
    data_bytes = page_bytes - SYNC_BYTES
    width = 1 << max(4, int(np.log2(np.sqrt(data_bytes / _PX))))
    rows = data_bytes // (_PX * width) - 2  # minus halo rows
    if rows < 1:
        width //= 2
        rows = data_bytes // (_PX * width) - 2
    return width, max(1, rows)


class MedianApp(Application):
    """3x3 median filter, kernel-only timing (paper "median-kernel")."""

    name = "median-kernel"
    partitioning = Partitioning.MEMORY_CENTRIC
    processor_computation = "Image I/O"
    active_page_computation = "Median of neighboring pixels"
    descriptor_words = 1
    paper_table4 = Table4Row(0.381, 0.580, 3502.0, 9185, 0.997)

    #: whether streams include the layout-transform phases.
    include_transform = False

    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        w = Workload(
            n_pages=n_pages, page_bytes=page_bytes, functional=functional, memory=memory
        )
        width, rows_per_page = band_geometry(page_bytes)
        height = max(4, int(round(n_pages * rows_per_page)))
        # Axes: ``noise`` is the salt-and-pepper impulse fraction (the
        # image-entropy axis); ``byte_flips`` applies that many seeded
        # byte-level mutations to the generated image (fuzzing).
        noise = self._param(params, "noise", 0.05)
        byte_flips = int(self._param(params, "byte_flips", 0))
        w.data["width"] = width
        w.data["rows_per_page"] = rows_per_page
        w.data["height"] = height
        w.data["params"] = dict(params) if params else {}
        if functional:
            if memory is None:
                memory = PagedMemory(page_bytes=page_bytes)
                w.memory = memory
            # Pages for the banded layout plus a contiguous image copy.
            w.region = memory.alloc_pages(w.whole_pages, name=self.name)
            image = noisy_image(height, width, seed=seed, noise=noise)
            if byte_flips:
                image = apply_byte_mutations(image, byte_flips, seed=seed)
            w.data["image"] = image
        return w

    # ------------------------------------------------------------------
    def _band_rows(self, w: Workload) -> List[Tuple[int, int]]:
        """``(first_row, n_rows)`` per band."""
        rpp, height = w.data["rows_per_page"], w.data["height"]
        bands = []
        row = 0
        while row < height:
            bands.append((row, min(rpp, height - row)))
            row += rpp
        return bands

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        width, height = w.data["width"], w.data["height"]
        if w.functional:
            w.results["filtered"] = median3x3_reference(w.data["image"])
        row_bytes = width * _PX
        in_base = w.base
        out_base = w.base + height * row_bytes
        for r in range(height):
            # The sliding 3-row window: the newest row streams in, the
            # two rows above are still cached.
            yield O.MemRead(in_base + r * row_bytes, row_bytes)
            yield O.Compute(CONV_OPS_PER_PIXEL * width)
            yield O.MemWrite(out_base + r * row_bytes, row_bytes)

    # ------------------------------------------------------------------
    @staticmethod
    def _tile_rows(row_bytes: int) -> int:
        """Transform tile height: 48 KB of rows.

        The column-major gather keeps one tile's rows live across the
        column sweep.  Rows at this stride collide three-deep in a
        32 KB 2-way L1 (conflict misses on every revisit) but two-deep
        — exactly the associativity — from 64 KB up: the Figure 5
        "stride effects" of the median-total transform phase.
        """
        return max(8, 49152 // row_bytes)

    def _transform_in_stream(self, w: Workload) -> Iterator[O.Op]:
        """Scanline image -> banded page layout.

        The source image is gathered column-group by column-group
        within row tiles (a transpose-like access): the first pass
        over a tile misses, later column groups hit only if the tile
        fits in the L1 D-cache — the paper's "stride effects".
        """
        width = w.data["width"]
        row_bytes = width * _PX
        src_base = w.base + w.whole_pages * w.page_bytes  # staging buffer
        for j, (first_row, n_rows) in enumerate(self._band_rows(w)):
            band_rows = n_rows + 2  # with halos
            tile_start = 0
            tile_rows = self._tile_rows(row_bytes)
            while tile_start < band_rows:
                tile = min(tile_rows, band_rows - tile_start)
                tile_base = src_base + (first_row + tile_start) * row_bytes
                # Column-major gather: column c+1 revisits the lines
                # column c touched; they hit only if the tile's rows
                # stayed resident (L1-size dependent).
                for c in range(width):
                    yield O.StridedRead(
                        addr=tile_base + c * _PX,
                        count=tile,
                        stride_bytes=row_bytes,
                        elem_bytes=_PX,
                    )
                yield O.MemWrite(
                    w.page_base(j) + tile_start * row_bytes, tile * row_bytes
                )
                yield O.Compute(4 * tile * width)
                tile_start += tile
            # The page is about to be activated on this data: flush the
            # tile writes out of the caches so the page logic sees them
            # in DRAM (Section 4 coherence; the dispatch-time dirty-line
            # check in repro.check enforces exactly this).
            yield O.FlushRange(w.page_base(j), band_rows * row_bytes)

    def _transform_out_stream(self, w: Workload) -> Iterator[O.Op]:
        """Banded results -> contiguous output image."""
        width = w.data["width"]
        row_bytes = width * _PX
        dst_base = w.base + w.whole_pages * w.page_bytes
        for j, (first_row, n_rows) in enumerate(self._band_rows(w)):
            yield O.MemRead(w.page_base(j) + row_bytes, n_rows * row_bytes)
            yield O.MemWrite(dst_base + first_row * row_bytes, n_rows * row_bytes)
            yield O.Compute(2 * n_rows * width)

    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        width = w.data["width"]
        bands = self._band_rows(w)
        if self.include_transform:
            yield from self._transform_in_stream(w)

        for j, (first_row, n_rows) in enumerate(bands):
            task = PageTask.simple(n_rows * width * CYCLES_PER_PIXEL)
            yield from self.activate_page(w.page_base(j) // w.page_bytes, task)

        outputs = []
        for j, (first_row, n_rows) in enumerate(bands):
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            yield O.MemRead(w.page_base(j) + w.page_bytes - SYNC_BYTES, 4)
            yield O.Compute(420)
            yield O.EndPhase(PHASE_POST)
            if w.functional:
                outputs.append(self._filter_band(w, first_row, n_rows))

        if self.include_transform:
            yield from self._transform_out_stream(w)
        if w.functional:
            w.results["filtered"] = np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------
    def _filter_band(self, w: Workload, first_row: int, n_rows: int) -> np.ndarray:
        """Functionally filter one band using its halo rows."""
        image = w.data["image"]
        height = w.data["height"]
        lo = max(0, first_row - 1)
        hi = min(height, first_row + n_rows + 1)
        window = image[lo:hi]
        filtered = median3x3_reference(window)
        # median3x3_reference copies borders; rows that are interior to
        # the full image but border rows of the window are correct
        # because the window includes the halo.
        start = first_row - lo
        return filtered[start : start + n_rows]


class MedianTotalApp(MedianApp):
    """Median filter including the layout-transform processor phases."""

    name = "median-total"
    include_transform = True
    paper_table4 = None  # Table 4 lists the kernel variant only
