"""Unindexed address-database query (Section 5.1).

Records are fixed 512-byte structures (:data:`repro.apps.data.RECORD_LAYOUT`).
The benchmark counts exact matches on the last-name field:

* **conventional** — the processor walks every record, touching the
  32-byte field at a 512-byte stride (one cache line per record, all
  misses at scale: linear in the number of records).
* **Active Pages** — every page scans its own block of records with a
  custom field-comparison circuit (6 logic cycles per record) and
  leaves a match count in its sync area; the processor initiates the
  query and summarizes per-page counts.  O(1) in record count once
  pages are working in parallel, "however the constant bounding it is
  quite large".
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.apps.base import (
    PHASE_POST,
    Application,
    Partitioning,
    Table4Row,
    Workload,
)
from repro.apps.data import (
    PLANTED_LASTNAME,
    RECORD_BYTES,
    RECORD_LAYOUT,
    address_book,
)
from repro.core.functions import PageTask
from repro.core.page import SYNC_BYTES
from repro.sim import ops as O
from repro.sim.memory import PagedMemory

#: Logic cycles to fetch and compare one record's search field.
CYCLES_PER_RECORD = 6.0
#: Conventional instructions per record (address calc, loads, compares).
CONV_OPS_PER_RECORD = 12

def records_per_page(page_bytes: int) -> int:
    return (page_bytes - SYNC_BYTES) // RECORD_BYTES


class DatabaseApp(Application):
    """Count exact matches on a record field over an unindexed book.

    The paper's custom circuits "search for exact matches on any of
    the string fields": the searched field is a constructor parameter
    (the measured benchmark uses the last name), and the activation
    descriptor carries the field offset/length, so one circuit serves
    every field.
    """

    name = "database"
    partitioning = Partitioning.MEMORY_CENTRIC
    processor_computation = "Initiates queries; summarizes results"
    active_page_computation = "Searches unindexed data"
    descriptor_words = 16
    paper_table4 = Table4Row(1.263, 0.798, 60.43, 76, 0.999)

    def __init__(self, search_field: str = "lastname") -> None:
        if search_field not in RECORD_LAYOUT:
            raise ValueError(
                f"unknown field {search_field!r}; "
                f"records have {sorted(RECORD_LAYOUT)}"
            )
        self.search_field = search_field
        self._field_off, self._field_len = RECORD_LAYOUT[search_field]

    def workload(
        self,
        n_pages: float,
        page_bytes: int,
        functional: bool = True,
        memory: Optional[PagedMemory] = None,
        seed: int = 0,
        params: Optional[Mapping[str, float]] = None,
    ) -> Workload:
        w = Workload(
            n_pages=n_pages, page_bytes=page_bytes, functional=functional, memory=memory
        )
        rpp = records_per_page(page_bytes)
        if rpp < 1:
            raise ValueError(
                f"page of {page_bytes} bytes cannot hold a {RECORD_BYTES}-byte record"
            )
        # Axes: ``records`` overrides the page-derived record count
        # (down to a single-record database); ``selectivity`` plants an
        # exact fraction of query-matching records.
        records_override = int(self._param(params, "records", 0))
        selectivity = (
            None if params is None or "selectivity" not in params
            else float(params["selectivity"])
        )
        if records_override > 0:
            n_records = records_override
        else:
            n_records = max(4, int(round(n_pages * rpp)))
        w.data["rpp"] = rpp
        w.data["n_records"] = n_records
        w.data["params"] = dict(params) if params else {}
        if functional:
            if memory is None:
                memory = PagedMemory(page_bytes=page_bytes)
                w.memory = memory
            w.region = memory.alloc_pages(w.whole_pages, name=self.name)
            records = address_book(n_records, seed=seed, selectivity=selectivity)
            if selectivity is not None:
                # Query the planted name: the match count is exactly
                # round(selectivity * n_records), monotone in the axis.
                query = np.zeros(self._field_len, dtype=np.uint8)
                name = PLANTED_LASTNAME[: self._field_len]
                query[: len(name)] = np.frombuffer(name, dtype=np.uint8)
            else:
                # Query: the last name of a mid-database record (so the
                # count is at least 1, usually several — names repeat).
                query = records[n_records // 2, self._field_off : self._field_off + self._field_len].copy()
            w.data["records"] = records
            w.data["query"] = query
            start = 0
            for j in range(w.whole_pages):
                count = min(rpp, n_records - start)
                if count <= 0:
                    break
                page = w.region.buffer[
                    j * page_bytes : j * page_bytes + count * RECORD_BYTES
                ]
                page[:] = records[start : start + count].reshape(-1)
                start += count
        else:
            w.data["query"] = None
        return w

    # ------------------------------------------------------------------
    def _page_record_counts(self, w: Workload) -> List[int]:
        rpp, remaining = w.data["rpp"], w.data["n_records"]
        counts = []
        while remaining > 0:
            counts.append(min(rpp, remaining))
            remaining -= rpp
        return counts

    def _count_matches(self, records: np.ndarray, query: np.ndarray) -> int:
        fields = records[:, self._field_off : self._field_off + self._field_len]
        return int(np.count_nonzero(np.all(fields == query, axis=1)))

    # ------------------------------------------------------------------
    def conventional_stream(self, w: Workload) -> Iterator[O.Op]:
        n_records = w.data["n_records"]
        if w.functional:
            w.results["count"] = self._count_matches(w.data["records"], w.data["query"])
        chunk = 1 << 13
        done = 0
        while done < n_records:
            n = min(chunk, n_records - done)
            yield O.StridedRead(
                addr=w.base + done * RECORD_BYTES + self._field_off,
                count=n,
                stride_bytes=RECORD_BYTES,
                elem_bytes=self._field_len,
            )
            yield O.Compute(CONV_OPS_PER_RECORD * n)
            done += n
        yield O.Compute(60)  # query setup and result summary

    # ------------------------------------------------------------------
    def radram_stream(self, w: Workload) -> Iterator[O.Op]:
        counts = self._page_record_counts(w)
        page_matches = []
        if w.functional:
            records, query = w.data["records"], w.data["query"]
            start = 0
            for count in counts:
                page_matches.append(
                    self._count_matches(records[start : start + count], query)
                )
                start += count

        for j, count in enumerate(counts):
            task = PageTask.simple(count * CYCLES_PER_RECORD)
            yield from self.activate_page(w.page_base(j) // w.page_bytes, task)

        total = 0
        for j in range(len(counts)):
            yield O.BeginPhase(PHASE_POST)
            yield O.WaitPage(w.page_base(j) // w.page_bytes)
            sync_addr = w.page_base(j) + w.page_bytes - SYNC_BYTES
            yield O.MemRead(sync_addr, 4)
            yield O.Compute(660)  # fold count, record block summary
            yield O.EndPhase(PHASE_POST)
            if w.functional:
                total += page_matches[j]
        if w.functional:
            w.results["count"] = total
