"""Synthetic workload data generators.

Replaces the paper's external inputs that are unavailable offline
(DESIGN.md section 4): the synthetic address book, images for median
filtering, protein sequences, Harwell-Boeing-like finite-element
sparse data, simplex tableaus with register-allocation shape, and
MPEG P/B-frame correction blocks.  All generators are deterministic in
their ``seed``.

Every generator exposes the axes the parametric workload framework
(:mod:`repro.workloads`) sweeps — query selectivity, image noise,
sequence similarity, sparsity, density skew, value amplitude — as
optional keyword parameters whose defaults reproduce the historical
fixed datasets bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Address database (Section 5.1, "Database Query")

#: Fixed record layout: field name -> (offset, length) in bytes.
RECORD_LAYOUT = {
    "lastname": (0, 32),
    "firstname": (32, 32),
    "street": (64, 64),
    "city": (128, 32),
    "state": (160, 2),
    "zip": (162, 10),
    "phone": (172, 16),
    "email": (188, 48),
}
RECORD_BYTES = 512  # fields + padding

_SYLLABLES = [
    "an", "ber", "chen", "dov", "el", "far", "gar", "hoff", "is", "jo",
    "kim", "lor", "man", "ner", "os", "pet", "qui", "ros", "son", "tov",
    "ul", "vic", "wal", "xi", "yam", "zim",
]


def _random_name(rng: np.random.Generator, max_len: int) -> bytes:
    parts = rng.integers(2, 4)
    name = "".join(_SYLLABLES[i] for i in rng.integers(0, len(_SYLLABLES), parts))
    return name.encode("ascii")[:max_len]


#: Query name planted by ``address_book``'s selectivity axis.  Upper
#: case, so it can never collide with a syllable-generated name.
PLANTED_LASTNAME = b"QUERYTARGET"


def address_book(
    n_records: int, seed: int = 0, selectivity: Optional[float] = None
) -> np.ndarray:
    """A synthetic address database as raw record bytes.

    Returns shape ``(n_records, RECORD_BYTES)`` uint8.  Names repeat
    (the syllable space is small), so exact-match queries find several
    records — matching the paper's count-of-exact-matches benchmark.

    With ``selectivity`` set, ``round(selectivity * n_records)``
    records additionally get :data:`PLANTED_LASTNAME` as their last
    name, making the match count of a planted-name query an exact,
    monotone function of the axis (the workload framework's query-
    selectivity axis).  ``None`` preserves the legacy dataset
    bit-for-bit.
    """
    rng = np.random.default_rng(seed)
    records = np.zeros((n_records, RECORD_BYTES), dtype=np.uint8)
    for i in range(n_records):
        for fld in ("lastname", "firstname", "city"):
            off, length = RECORD_LAYOUT[fld]
            name = _random_name(rng, length)
            records[i, off : off + len(name)] = np.frombuffer(name, dtype=np.uint8)
        off, length = RECORD_LAYOUT["zip"]
        zipcode = f"{rng.integers(10000, 99999)}".encode()
        records[i, off : off + len(zipcode)] = np.frombuffer(zipcode, dtype=np.uint8)
    if selectivity is not None:
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError("selectivity must be in [0, 1]")
        n_planted = int(round(selectivity * n_records))
        planted = rng.choice(n_records, size=n_planted, replace=False)
        off, length = RECORD_LAYOUT["lastname"]
        records[planted, off : off + length] = 0
        name = PLANTED_LASTNAME[:length]
        records[np.ix_(planted, range(off, off + len(name)))] = np.frombuffer(
            name, dtype=np.uint8
        )
    return records


def field_bytes(record: np.ndarray, fld: str) -> bytes:
    """Extract one field of a raw record as bytes."""
    off, length = RECORD_LAYOUT[fld]
    return bytes(record[off : off + length])


# ----------------------------------------------------------------------
# Images (Section 5.1, "Image Processing")


def noisy_image(
    height: int, width: int, seed: int = 0, noise: float = 0.05
) -> np.ndarray:
    """A smooth gradient with salt-and-pepper noise, uint16.

    Median filtering should remove most of the impulsive noise — the
    examples use this to show the filter doing real work.  ``noise``
    is the impulse fraction (the workload framework's image-entropy
    axis): 0 gives the clean gradient, 1 pure impulse noise.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    y = np.linspace(0, 4 * np.pi, height)[:, None]
    x = np.linspace(0, 4 * np.pi, width)[None, :]
    base = (2000 + 1500 * (np.sin(x) + np.cos(y))).astype(np.uint16)
    noise_mask = rng.random((height, width)) < noise
    noise_vals = rng.integers(0, 4096, (height, width), dtype=np.uint16)
    return np.where(noise_mask, noise_vals, base).astype(np.uint16)


def apply_byte_mutations(arr: np.ndarray, n_flips: int, seed: int = 0) -> np.ndarray:
    """XOR ``n_flips`` random bytes of ``arr`` (returns a mutated copy).

    Byte-level input fuzzing for the imaging/MPEG applications: the
    mutation positions and values are deterministic in ``seed``, so a
    fuzz counterexample replays exactly.  ``n_flips`` of 0 returns an
    unmutated copy.
    """
    if n_flips < 0:
        raise ValueError("n_flips cannot be negative")
    out = np.array(arr, copy=True)
    if n_flips == 0 or out.nbytes == 0:
        return out
    rng = np.random.default_rng(seed)
    flat = out.reshape(-1).view(np.uint8)
    positions = rng.integers(0, flat.size, n_flips)
    values = rng.integers(1, 256, n_flips, dtype=np.uint8)  # never a no-op XOR 0
    for pos, val in zip(positions, values):
        flat[pos] ^= val
    return out


def median3x3_reference(image: np.ndarray) -> np.ndarray:
    """Reference 3x3 median filter (interior pixels; borders copied)."""
    out = image.copy()
    stack = np.stack(
        [
            image[i : i + image.shape[0] - 2, j : j + image.shape[1] - 2]
            for i in range(3)
            for j in range(3)
        ]
    )
    out[1:-1, 1:-1] = np.median(stack, axis=0).astype(image.dtype)
    return out


# ----------------------------------------------------------------------
# Protein sequences (Section 5.1, "Largest Common Subsequence")

_AMINO_ACIDS = b"ACDEFGHIKLMNPQRSTVWY"


def protein_sequence(length: int, seed: int = 0) -> bytes:
    """A random amino-acid sequence."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(_AMINO_ACIDS), length)
    return bytes(bytearray(_AMINO_ACIDS[i] for i in idx))


def related_sequences(length: int, mutation_rate: float = 0.15, seed: int = 0) -> Tuple[bytes, bytes]:
    """Two sequences sharing long common subsequences.

    The second is the first with point mutations and small indels —
    the shape of real homologous proteins, so LCS backtracking finds
    substantial alignments.
    """
    rng = np.random.default_rng(seed)
    a = bytearray(protein_sequence(length, seed=seed))
    b = bytearray(a)
    n_mutations = int(length * mutation_rate)
    for _ in range(n_mutations):
        pos = rng.integers(0, len(b))
        op = rng.integers(0, 3)
        residue = _AMINO_ACIDS[rng.integers(0, len(_AMINO_ACIDS))]
        if op == 0:
            b[pos] = residue
        elif op == 1 and len(b) > 10:
            del b[pos]
        else:
            b.insert(pos, residue)
    del b[length:]
    while len(b) < length:
        b.append(_AMINO_ACIDS[rng.integers(0, len(_AMINO_ACIDS))])
    return bytes(a), bytes(b)


def lcs_reference(a: bytes, b: bytes) -> int:
    """Reference LCS length via the classic DP, vectorized by rows."""
    prev = np.zeros(len(b) + 1, dtype=np.int32)
    b_arr = np.frombuffer(b, dtype=np.uint8)
    for ch in a:
        curr = np.zeros_like(prev)
        match = prev[:-1] + (b_arr == ch)
        np.maximum.accumulate(np.maximum(match, prev[1:]), out=curr[1:])
        # accumulate handles the curr[j-1] dependency for the max with
        # the left neighbour because values increase by at most 1.
        prev = curr
    return int(prev[-1])


# ----------------------------------------------------------------------
# Sparse matrices (Section 5.2, "Sparse-Matrix Multiply")


@dataclass(frozen=True)
class SparseVectorPair:
    """One sparse dot-product operand pair (sorted index arrays)."""

    idx_a: np.ndarray
    val_a: np.ndarray
    idx_b: np.ndarray
    val_b: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.idx_a) + len(self.idx_b)

    def matches(self) -> np.ndarray:
        """Indices present in both vectors."""
        return np.intersect1d(self.idx_a, self.idx_b, assume_unique=True)

    def dot(self) -> float:
        """Reference sparse dot product."""
        common, ia, ib = np.intersect1d(
            self.idx_a, self.idx_b, assume_unique=True, return_indices=True
        )
        return float(np.dot(self.val_a[ia], self.val_b[ib]))


def _sparse_vector(
    rng: np.random.Generator, nnz: int, index_range: int
) -> Tuple[np.ndarray, np.ndarray]:
    idx = np.sort(rng.choice(index_range, size=min(nnz, index_range), replace=False))
    val = rng.standard_normal(len(idx))
    return idx.astype(np.int32), val


#: Simplex operating point: constant density, ~58 index matches/pair.
SIMPLEX_NNZ = 606
SIMPLEX_INDEX_RANGE = 6330


def simplex_pairs(
    n_pairs: int,
    seed: int = 0,
    nnz: int = SIMPLEX_NNZ,
    index_range: int = SIMPLEX_INDEX_RANGE,
) -> List[SparseVectorPair]:
    """Register-allocation simplex tableaus: uniform row density.

    Constant nnz per vector — the data-independence that makes
    matrix-simplex correlate well with the constant-time model.
    Expected matches per pair: nnz^2 / index_range (~64 at defaults).
    ``nnz / index_range`` is the workload framework's sparsity axis:
    0 nonzeros is a fully sparse row, ``nnz == index_range`` fully
    dense.
    """
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(n_pairs):
        idx_a, val_a = _sparse_vector(rng, nnz, index_range)
        idx_b, val_b = _sparse_vector(rng, nnz, index_range)
        pairs.append(SparseVectorPair(idx_a, val_a, idx_b, val_b))
    return pairs


#: Boeing operating point: banded rows, density varies ~3x around 480.
BOEING_MEAN_NNZ = 480


#: Legacy interface-to-interior density ratio (2.3 / 0.26).
BOEING_LEGACY_SKEW = 2.3 / 0.26
#: Mean scale factor the legacy constants produce; skewed variants
#: preserve it so ``skew`` changes the spread, not the total work.
_BOEING_MEAN_SCALE = (2.3 + 4 * 0.26) / 5


def boeing_pairs(
    n_pairs: int,
    seed: int = 0,
    mean_nnz: int = BOEING_MEAN_NNZ,
    skew: Optional[float] = None,
) -> List[SparseVectorPair]:
    """Harwell-Boeing-like finite-element rows: banded, varied density.

    Row densities vary strongly, which violates the analytic model's
    constant-T_C assumption — the cause of matrix-boeing's low Table 4
    correlation.  Every fifth row pair is an *interface* row (finite-
    element meshes couple boundary-node rows to many elements), an
    order of magnitude denser than the interior rows; both vectors of
    a pair share a band, so matches are frequent (~density/3).

    ``skew`` is the interface-to-interior density ratio (the workload
    framework's skew axis): 1 gives uniform rows, larger values an
    ever-more-extreme split at a constant mean density.  ``None``
    preserves the legacy dataset (ratio ≈ 8.85) bit-for-bit.
    """
    rng = np.random.default_rng(seed)
    if skew is None:
        interior_scale, interface_scale = 0.26, 2.3
    else:
        if skew < 1.0:
            raise ValueError("skew must be >= 1 (interface / interior ratio)")
        interior_scale = 5 * _BOEING_MEAN_SCALE / (skew + 4)
        interface_scale = interior_scale * skew
    pairs = []
    for i in range(n_pairs):
        interface_row = i % 5 == 0
        scale = interface_scale if interface_row else interior_scale
        density = int(
            mean_nnz * (0.15 + scale) + rng.integers(0, max(1, mean_nnz // 6))
        )
        band_width = 3 * density
        center = int(rng.integers(0, 8192))
        lo = max(0, center - band_width // 2)
        hi = lo + band_width
        band = np.arange(lo, hi)
        size = min(density, len(band))
        idx_a = np.sort(rng.choice(band, size=size, replace=False))
        idx_b = np.sort(rng.choice(band, size=size, replace=False))
        pairs.append(
            SparseVectorPair(
                idx_a.astype(np.int32),
                rng.standard_normal(len(idx_a)),
                idx_b.astype(np.int32),
                rng.standard_normal(len(idx_b)),
            )
        )
    return pairs


# ----------------------------------------------------------------------
# MPEG frames (Section 5.2, "MMX Primitives")


def mpeg_blocks(
    n_blocks: int, seed: int = 0, amplitude: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """P/B-frame data and motion-correction matrices, 8x8 int16 blocks.

    Returns ``(frames, corrections)`` of shape ``(n_blocks, 64)``.
    Values sit near the int16 saturation boundary often enough that
    saturating adds (paddsw) behave differently from wrapping adds —
    tests rely on this to catch wrong MMX semantics.

    ``amplitude`` scales both value ranges (the workload framework's
    signal-amplitude axis): below ~0.55 sums can no longer saturate,
    above 1.0 saturation dominates.  1.0 is the legacy dataset.
    """
    if amplitude < 0.0:
        raise ValueError("amplitude cannot be negative")
    rng = np.random.default_rng(seed)
    frame_amp = min(32767, int(round(28000 * amplitude)))
    corr_amp = min(32767, int(round(12000 * amplitude)))
    frames = rng.integers(
        -frame_amp, max(1, frame_amp), (n_blocks, 64), dtype=np.int16
    )
    corrections = rng.integers(
        -corr_amp, max(1, corr_amp), (n_blocks, 64), dtype=np.int16
    )
    return frames, corrections
