"""repro.check: runtime coherence/race/protocol sanitizer.

See :mod:`repro.check.runtime` for the detectors and the
zero-overhead-when-off ``CHECKER`` hook, and :mod:`repro.check.runner`
for the ``python -m repro check`` entry point.
"""

from repro.check.runtime import (
    CHECKER,
    CheckError,
    Checker,
    Violation,
    checking,
    disable,
    enable,
    is_enabled,
)

__all__ = [
    "CHECKER",
    "CheckError",
    "Checker",
    "Violation",
    "checking",
    "disable",
    "enable",
    "is_enabled",
]
