"""Runtime sanitizer core: detectors, violations, and the global hook.

The paper's Active-Page model rests on correctness invariants the
simulator otherwise trusts silently (Section 2 "Coordination", the
Section 4 coherence discussion):

* processor and page functions must not touch the same page data
  unsynchronized (**race** detector),
* cached copies must not go stale across an activation — dirty lines
  over a page's working set at dispatch, or sync words served from a
  copy fetched before the page completed (**coherence** detector),
* the ``SyncState`` protocol ``IDLE -> ARMED -> RUNNING -> (BLOCKED
  <->) -> DONE`` must be obeyed, with no double activation of a busy
  page and no result reads before ``DONE`` (**protocol** detector),
* the co-simulation must make progress — no event storms at a frozen
  timestamp, no wait-service loops that never advance, no SMP barrier
  deadlock (**watchdog** detector).

Zero overhead when off
----------------------
Checking follows the exact pattern of :mod:`repro.trace.events`: the
module-level :data:`CHECKER` is ``None`` when disabled, and every
instrumented hot path guards with::

    ck = runtime.CHECKER
    if ck is not None:
        ck.on_op(op, self)

so a disabled checker costs one module-attribute load and a ``None``
test per operation (and one per *batch* on the vectorized cache paths).
``benchmarks/test_sim_hotpath.py`` gates that disabled cost at ±5%.

Modes
-----
Default is **warn-and-count**: violations are recorded (bounded by
``max_violations``), tallied per detector, and mirrored onto the
``check`` trace track when a tracer is live.  **Strict** mode raises
:class:`CheckError` at the first violation.

Working spans
-------------
The race detector needs to know which bytes an activation may touch.
A :class:`repro.core.functions.PageTask` can declare explicit
``working_spans`` (absolute ``(vaddr, nbytes)`` pairs); tasks that
declare none default to the activated page's whole data region (the
page minus its sync area), which is the conservative reading of the
paper's "one page's function operates on that page's data".
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim import ops as O
from repro.sim.errors import SimulationError
from repro.trace import events as _trace

#: Bytes reserved for sync variables at the top of every Active Page.
#: Mirrors ``repro.core.page.SYNC_BYTES`` (asserted equal in tests);
#: duplicated here because ``repro.core.sync`` imports this module.
SYNC_BYTES = 64

#: Detector identifiers (the ``Violation.detector`` vocabulary).
RACE = "race"
COHERENCE = "coherence"
PROTOCOL = "protocol"
WATCHDOG = "watchdog"

DETECTORS = (RACE, COHERENCE, PROTOCOL, WATCHDOG)

#: ``SyncState`` transitions the protocol permits (as int pairs).
#: IDLE=0, ARMED=1, RUNNING=2, BLOCKED=3, DONE=4 — see
#: ``repro.core.sync.SyncState``.  Any state may reset to IDLE.
_STATE_NAMES = ("IDLE", "ARMED", "RUNNING", "BLOCKED", "DONE")
_ALLOWED_TRANSITIONS = frozenset(
    [(0, 1), (4, 1), (1, 2), (2, 3), (3, 2), (2, 4), (3, 4)]
    + [(s, 0) for s in range(5)]
)
_DONE = 4


class CheckError(SimulationError):
    """A sanitizer violation in strict mode."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation, with structured context."""

    detector: str  # "race" | "coherence" | "protocol" | "watchdog"
    message: str
    page: Optional[int] = None
    addr_lo: Optional[int] = None
    addr_hi: Optional[int] = None  # exclusive
    time_ns: float = 0.0
    op: str = ""  # originating operation / hook, e.g. "MemWrite"
    app: str = ""  # application under check, when known

    def render(self) -> str:
        """One human-readable report line."""
        parts = [f"[{self.detector}]", self.message]
        ctx = []
        if self.app:
            ctx.append(f"app={self.app}")
        if self.page is not None:
            ctx.append(f"page={self.page}")
        if self.addr_lo is not None and self.addr_hi is not None:
            ctx.append(f"addr=0x{self.addr_lo:x}..0x{self.addr_hi:x}")
        if self.op:
            ctx.append(f"op={self.op}")
        ctx.append(f"t={self.time_ns:.1f}ns")
        return " ".join(parts) + " (" + ", ".join(ctx) + ")"


class Checker:
    """Shadow state and detectors behind the :data:`CHECKER` hook.

    All hook methods are cheap relative to an *enabled* sanitizer's
    budget; the disabled cost is the ``CHECKER is None`` guard at each
    instrumentation site, and nothing here.
    """

    __slots__ = (
        "strict",
        "app",
        "max_violations",
        "wait_spin_limit",
        "livelock_limit",
        "violations",
        "counts",
        "dropped",
        "now",
        "_page_bytes",
        "_inflight",
        "_syncing",
        "_stale_watch",
        "_engine_last_now",
        "_engine_same",
        "_wait_last_now",
        "_wait_spins",
        "_computing_pages",
    )

    def __init__(
        self,
        strict: bool = False,
        app: str = "",
        page_bytes: Optional[int] = None,
        max_violations: int = 1000,
        wait_spin_limit: int = 10_000,
        livelock_limit: int = 100_000,
    ) -> None:
        self.strict = strict
        self.app = app
        self.max_violations = max_violations
        self.wait_spin_limit = wait_spin_limit
        self.livelock_limit = livelock_limit
        self.violations: List[Violation] = []
        self.counts: Dict[str, int] = {d: 0 for d in DETECTORS}
        #: violations beyond ``max_violations`` are counted, not stored.
        self.dropped: int = 0
        #: clock hint (simulated ns) for hooks without a processor.
        self.now: float = 0.0
        self._page_bytes = page_bytes
        #: page_no -> tuple of (vaddr, nbytes) working spans in flight.
        self._inflight: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        #: page most recently entered via WaitPage (replay target).
        self._syncing: Optional[int] = None
        #: sync-area line -> page: resident when the page dispatched.
        self._stale_watch: Dict[int, int] = {}
        self._engine_last_now: float = -1.0
        self._engine_same: int = 0
        self._wait_last_now: float = -1.0
        self._wait_spins: int = 0
        #: pager pages between begin_computation and end_computation.
        self._computing_pages: set = set()

    # ------------------------------------------------------------------
    # Recording

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def record(self, violation: Violation) -> None:
        """Count (and in strict mode raise) one violation."""
        self.counts[violation.detector] += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self.dropped += 1
        tr = _trace.TRACER
        if tr is not None:
            tr.instant(
                "check",
                violation.detector,
                violation.time_ns,
                message=violation.message,
                page=violation.page,
                op=violation.op or None,
            )
        if self.strict:
            raise CheckError(violation.render())

    def _violate(self, detector: str, message: str, **ctx) -> None:
        ctx.setdefault("time_ns", self.now)
        ctx.setdefault("app", self.app)
        self.record(Violation(detector, message, **ctx))

    def report(self) -> str:
        """Human-readable summary of everything recorded."""
        lines = [
            "check: "
            + ", ".join(f"{d}={self.counts[d]}" for d in DETECTORS)
            + f" (total {self.total})"
        ]
        for v in self.violations:
            lines.append("  " + v.render())
        if self.dropped:
            lines.append(f"  ... {self.dropped} further violation(s) not stored")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Processor-op hook (top of ``Processor.step``)

    def on_op(self, op: O.Op, proc) -> None:
        """Observe one processor operation before it executes."""
        self.now = proc.now
        if isinstance(op, (O.MemRead, O.StridedRead, O.GatherRead)):
            if self._inflight:
                self._check_mem(op, proc, write=False)
        elif isinstance(op, (O.MemWrite, O.StridedWrite, O.ScatterWrite)):
            if self._inflight:
                self._check_mem(op, proc, write=True)
        elif isinstance(op, O.Activate):
            self._on_activate(op, proc)
        elif isinstance(op, O.WaitPage):
            # WaitPage is the happens-before edge: once the processor
            # commits to waiting, the page's spans are released to it.
            self._inflight.pop(op.page_no, None)
            self._syncing = op.page_no
            self._wait_last_now = -1.0
            self._wait_spins = 0

    # -- race detector --------------------------------------------------

    def _check_mem(self, op: O.Op, proc, write: bool) -> None:
        """Flag processor accesses overlapping in-flight working spans."""
        if isinstance(op, (O.MemRead, O.MemWrite)):
            ranges: Iterator[Tuple[int, int]] = iter(((op.addr, op.nbytes),))
        elif isinstance(op, (O.GatherRead, O.ScatterWrite)):
            eb = op.elem_bytes
            ranges = iter((a, eb) for a in op.addrs)
        else:  # strided: test the envelope first, elements only if hot
            env_lo = op.addr
            env_n = (op.count - 1) * op.stride_bytes + op.elem_bytes
            if self._find_overlap(env_lo, env_n) is None:
                return
            eb = op.elem_bytes
            ranges = iter(
                (op.addr + k * op.stride_bytes, eb) for k in range(op.count)
            )
        for lo, nbytes in ranges:
            hit = self._find_overlap(lo, nbytes)
            if hit is not None:
                page, span = hit
                kind = "write" if write else "read"
                self._violate(
                    RACE,
                    f"unsynchronized {kind} overlaps the working span "
                    f"0x{span[0]:x}+{span[1]} of in-flight page {page}",
                    page=page,
                    addr_lo=lo,
                    addr_hi=lo + nbytes,
                    op=type(op).__name__,
                )
                return  # one violation per op; avoid per-element spam

    def _find_overlap(
        self, lo: int, nbytes: int
    ) -> Optional[Tuple[int, Tuple[int, int]]]:
        """First in-flight working span overlapping ``[lo, lo+nbytes)``."""
        if nbytes <= 0:
            return None
        inflight = self._inflight
        hi = lo + nbytes
        pb = self._page_bytes
        if pb:
            p0, p1 = lo // pb, (hi - 1) // pb
            if p1 - p0 + 1 <= len(inflight):
                for p in range(p0, p1 + 1):
                    spans = inflight.get(p)
                    if spans:
                        for span in spans:
                            if lo < span[0] + span[1] and span[0] < hi:
                                return p, span
                return None
        for p, spans in inflight.items():
            for span in spans:
                if lo < span[0] + span[1] and span[0] < hi:
                    return p, span
        return None

    # -- dispatch-time checks -------------------------------------------

    def _discover_page_bytes(self, proc) -> Optional[int]:
        pb = self._page_bytes
        if pb is None:
            config = getattr(proc.memsys, "config", None)
            pb = getattr(config, "page_bytes", None)
            if pb is not None:
                self._page_bytes = pb
        return pb

    def _on_activate(self, op: O.Activate, proc) -> None:
        page = op.page_no
        if page in self._inflight:
            self._violate(
                PROTOCOL,
                f"page {page} activated while a previous activation "
                f"is still in flight (no WaitPage between them)",
                page=page,
                op="Activate",
            )
        pb = self._discover_page_bytes(proc)
        spans = getattr(op.task, "working_spans", None)
        if spans:
            spans = tuple((int(lo), int(n)) for lo, n in spans)
        elif pb is not None:
            spans = ((page * pb, pb - SYNC_BYTES),)
        else:
            spans = ()
        if pb is not None:
            self._check_dispatch_coherence(page, spans, proc)
            self._watch_sync_lines(page, pb, proc)
        self._inflight[page] = spans

    def _check_dispatch_coherence(self, page, spans, proc) -> None:
        """Dirty cached lines over the working spans mean the page
        would compute on stale DRAM data (paper Section 4)."""
        line_bytes = proc.l1d.config.line_bytes
        for lo, nbytes in spans:
            if nbytes <= 0:
                continue
            lo_line = lo // line_bytes
            hi_line = (lo + nbytes - 1) // line_bytes
            level = proc.l1d
            while level is not None:
                dirty = level.dirty_lines_in(lo_line, hi_line)
                if dirty:
                    self._violate(
                        COHERENCE,
                        f"{len(dirty)} dirty {level.name} line(s) overlap "
                        f"page {page}'s working span at dispatch "
                        f"(unflushed processor writes)",
                        page=page,
                        addr_lo=dirty[0] * line_bytes,
                        addr_hi=(dirty[-1] + 1) * line_bytes,
                        op="Activate",
                    )
                    return  # one violation per activation
                level = level.next_level

    def _watch_sync_lines(self, page: int, pb: int, proc) -> None:
        """Snapshot sync-area lines resident at dispatch: a later read
        served from such a copy predates the page's DONE write."""
        line_bytes = proc.l1d.config.line_bytes
        sync_lo = page * pb + pb - SYNC_BYTES
        lo_line = sync_lo // line_bytes
        hi_line = (page * pb + pb - 1) // line_bytes
        for ln in range(lo_line, hi_line + 1):
            level = proc.l1d
            while level is not None:
                if level.contains(ln):
                    self._stale_watch[ln] = page
                    break
                level = level.next_level

    # ------------------------------------------------------------------
    # Cache batch hook (top of ``Cache.access_lines``)

    def on_cache_batch(self, cache, addrs, write: bool) -> None:
        """Resolve stale-sync watches against one access batch.

        Called with the batch's line-address array *before* the batch
        resolves, so residency reflects what the access would hit.
        """
        watch = self._stale_watch
        if not watch:
            return
        for ln in list(watch):
            if ln not in addrs:
                continue
            page = watch.pop(ln)
            level = cache
            resident = False
            while level is not None:
                if level.contains(ln):
                    resident = True
                    break
                level = level.next_level
            if resident and not write:
                line_bytes = cache.config.line_bytes
                self._violate(
                    COHERENCE,
                    f"read of page {page}'s sync words hit a cached copy "
                    f"fetched before the activation completed (stale "
                    f"{level.name} line)",
                    page=page,
                    addr_lo=ln * line_bytes,
                    addr_hi=(ln + 1) * line_bytes,
                    op="cache.access_lines",
                )
            # A miss refetches fresh data; a write overwrites the copy.
            # Either way the watch is spent.

    # ------------------------------------------------------------------
    # Sync-protocol hooks (``repro.core.sync.SyncArea``)

    def on_sync_transition(
        self, old: int, new: int, owner: Optional[int]
    ) -> None:
        """Validate one status-word transition."""
        if old == new:
            if old == 1:  # ARMED -> ARMED: a second activation landed
                self._violate(
                    PROTOCOL,
                    "page re-armed while already ARMED (double activation)",
                    page=owner,
                    op="SyncArea.status",
                )
            return
        if (old, new) not in _ALLOWED_TRANSITIONS:
            o = _STATE_NAMES[old] if 0 <= old < 5 else str(old)
            n = _STATE_NAMES[new] if 0 <= new < 5 else str(new)
            self._violate(
                PROTOCOL,
                f"invalid SyncState transition {o} -> {n}",
                page=owner,
                op="SyncArea.status",
            )

    def on_result_read(self, status: int, owner: Optional[int]) -> None:
        """Result words read while the status word is not DONE."""
        if status != _DONE:
            name = _STATE_NAMES[status] if 0 <= status < 5 else str(status)
            self._violate(
                PROTOCOL,
                f"result words read while page status is {name}, not DONE",
                page=owner,
                op="SyncArea.read_results",
            )

    # ------------------------------------------------------------------
    # Faults-controller integration (``repro.radram.system``)

    def on_replay(self, page_no: int, proc) -> None:
        """A fault replay must restart a page that was actually running."""
        if page_no in self._inflight or page_no == self._syncing:
            return
        self._violate(
            PROTOCOL,
            f"fault replay restarted page {page_no} with no activation "
            f"in flight",
            page=page_no,
            time_ns=proc.now,
            op="replay",
        )

    def on_degraded(self, page_no: int, proc) -> None:
        """Degraded execution completes synchronously on the processor,
        so the page's spans are released immediately."""
        self._inflight.pop(page_no, None)

    # ------------------------------------------------------------------
    # Watchdog hooks

    def on_engine_event(self, when: float) -> None:
        """Count consecutive engine events with a frozen clock."""
        if when == self._engine_last_now:
            self._engine_same += 1
            if self._engine_same >= self.livelock_limit:
                self._engine_same = 0
                self._violate(
                    WATCHDOG,
                    f"engine dispatched {self.livelock_limit} consecutive "
                    f"events with no time advance (livelock?)",
                    time_ns=when,
                    op="Engine.step",
                )
        else:
            self._engine_last_now = when
            self._engine_same = 0

    def on_wait_iteration(self, page_no: int, proc) -> None:
        """Count wait-service iterations that fail to advance time."""
        if proc.now == self._wait_last_now:
            self._wait_spins += 1
            if self._wait_spins >= self.wait_spin_limit:
                self._wait_spins = 0
                self._violate(
                    WATCHDOG,
                    f"WaitPage({page_no}) serviced {self.wait_spin_limit} "
                    f"times without the clock advancing (page stuck "
                    f"blocked?)",
                    page=page_no,
                    time_ns=proc.now,
                    op="WaitPage",
                )
        else:
            self._wait_last_now = proc.now
            self._wait_spins = 0

    def on_smp_deadlock(self, message: str, time_ns: float) -> None:
        """Record the SMP barrier deadlock diagnosis as a violation."""
        self._violate(WATCHDOG, message, time_ns=time_ns, op="SMPMachine.run")

    # ------------------------------------------------------------------
    # Pager hooks (``repro.os.paging``)

    def on_begin_computation(self, page_id: int, already: bool) -> None:
        if already:
            self._violate(
                PROTOCOL,
                f"begin_computation on page {page_id} which is already "
                f"computing",
                page=page_id,
                op="Pager.begin_computation",
            )
        self._computing_pages.add(page_id)

    def on_end_computation(self, page_id: int, was_computing: bool) -> None:
        if not was_computing:
            self._violate(
                PROTOCOL,
                f"end_computation on page {page_id} with no computation "
                f"in flight",
                page=page_id,
                op="Pager.end_computation",
            )
        self._computing_pages.discard(page_id)

    def on_victim_exhaustion(self, n_frames: int, computing) -> None:
        self._violate(
            WATCHDOG,
            f"pager cannot evict: all {n_frames} resident frames hold "
            f"computing pages {sorted(computing)[:8]}",
            op="Pager._pick_victim",
        )


#: The process-wide checker; ``None`` means checking is disabled and
#: every instrumentation site reduces to a load-and-test no-op.
CHECKER: Optional[Checker] = None


def enable(strict: bool = False, **kwargs) -> Checker:
    """Install (and return) a fresh process-wide checker."""
    global CHECKER
    CHECKER = Checker(strict=strict, **kwargs)
    return CHECKER


def disable() -> Optional[Checker]:
    """Disable checking; returns the checker that was active, if any."""
    global CHECKER
    previous, CHECKER = CHECKER, None
    return previous


def is_enabled() -> bool:
    return CHECKER is not None


@contextmanager
def checking(strict: bool = False, **kwargs) -> Iterator[Checker]:
    """Enable checking for a ``with`` block, restoring the prior state.

    >>> with checking(strict=True) as ck:
    ...     machine.run(stream)
    >>> assert ck.total == 0
    """
    global CHECKER
    previous = CHECKER
    checker = Checker(strict=strict, **kwargs)
    CHECKER = checker
    try:
        yield checker
    finally:
        CHECKER = previous
