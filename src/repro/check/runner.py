"""Run applications under the sanitizer: the ``repro check`` backend.

Each app runs twice — once on the conventional machine, once on the
RADram machine — with a fresh :class:`repro.check.runtime.Checker`
installed for each run.  In counting mode (the default) violations are
collected and reported; in strict mode the first violation aborts the
run with :class:`CheckError` and still produces a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.apps.registry import get_app
from repro.check.runtime import CheckError, Checker, checking
from repro.experiments import runner as _runner
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: The six paper applications the acceptance suite strict-checks
#: (Table 2 / Figure 3 core set; one representative per family).
PAPER_SIX = (
    "array-insert",
    "database",
    "median-kernel",
    "dynamic-prog",
    "matrix-simplex",
    "mpeg-mmx",
)

SYSTEMS = ("conventional", "radram")


@dataclass
class CheckRun:
    """Sanitizer outcome for one (app, system) run."""

    app: str
    system: str
    violations: list
    counts: Dict[str, int]
    dropped: int
    error: Optional[str] = None  # CheckError message in strict mode

    @property
    def clean(self) -> bool:
        return self.total == 0 and self.error is None

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class CheckReport:
    """All runs for one ``repro check`` invocation."""

    runs: List[CheckRun] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.runs)

    @property
    def total(self) -> int:
        return sum(r.total for r in self.runs)

    def render(self) -> str:
        lines = []
        for r in self.runs:
            status = "ok" if r.clean else f"{r.total} violation(s)"
            lines.append(f"check {r.app} [{r.system}]: {status}")
            for v in r.violations:
                lines.append("  " + v.render())
            if r.dropped:
                lines.append(f"  ... {r.dropped} further violation(s) not stored")
            if r.error is not None:
                lines.append(f"  aborted (strict): {r.error}")
        lines.append(
            f"check summary: {len(self.runs)} run(s), "
            f"{self.total} violation(s), "
            + ("CLEAN" if self.clean else "VIOLATIONS FOUND")
        )
        return "\n".join(lines)


def _snapshot(ck: Checker, app: str, system: str, error: Optional[str]) -> CheckRun:
    return CheckRun(
        app=app,
        system=system,
        violations=list(ck.violations),
        counts=dict(ck.counts),
        dropped=ck.dropped,
        error=error,
    )


def check_app(
    app_name: str,
    n_pages: float = 8.0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    strict: bool = False,
    systems: Tuple[str, ...] = SYSTEMS,
    seed: int = 0,
    params: Optional[Mapping[str, float]] = None,
) -> List[CheckRun]:
    """Run ``app_name`` on each system with the sanitizer installed."""
    app = get_app(app_name)
    runs = []
    for system in systems:
        error = None
        with checking(strict=strict, app=f"{app_name}/{system}") as ck:
            try:
                if system == "conventional":
                    _runner.run_conventional(
                        app, n_pages, page_bytes=page_bytes, seed=seed, params=params
                    )
                else:
                    _runner.run_radram(
                        app, n_pages, page_bytes=page_bytes, seed=seed, params=params
                    )
            except CheckError as exc:
                error = str(exc)
        runs.append(_snapshot(ck, app_name, system, error))
    return runs


def check_apps(
    app_names,
    n_pages: float = 8.0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    strict: bool = False,
    systems: Tuple[str, ...] = SYSTEMS,
    seed: int = 0,
    params: Optional[Mapping[str, float]] = None,
) -> CheckReport:
    """Sanitize a list of apps; returns the combined report."""
    report = CheckReport()
    for name in app_names:
        report.runs.extend(
            check_app(
                name,
                n_pages=n_pages,
                page_bytes=page_bytes,
                strict=strict,
                systems=systems,
                seed=seed,
                params=params,
            )
        )
    return report
