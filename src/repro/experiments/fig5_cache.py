"""Figure 5: execution time vs L1 data-cache size (both systems).

The L1 D-cache is varied 32 KB - 256 KB at a fixed problem size.
Expected shapes (Section 7.3): most applications are flat across the
whole range; some conventional applications degrade below 64 KB, and
RADram ``median-total`` shows stride effects in its layout-transform
phase.  The companion L2 sweep (256 KB - 4 MB, reported in the text
rather than a figure) shows no significant differences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments import harness
from repro.experiments.results import ExperimentResult
from repro.sim.config import KB, MB, MachineConfig
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: The paper's L1 D-cache range.
L1_SWEEP_KB = [32, 48, 64, 96, 128, 192, 256]
#: The paper's L2 range (Section 7.3 text).
L2_SWEEP_KB = [256, 512, 1024, 2048, 4096]

#: Applications shown; median appears in both kernel and total form.
DEFAULT_APPS = [
    "array-insert",
    "database",
    "median-kernel",
    "median-total",
    "dynamic-prog",
    "matrix-simplex",
    "mpeg-mmx",
]

DEFAULT_PAGES = 4.0


def run(
    apps: Optional[Sequence[str]] = None,
    l1_sweep_kb: Optional[Sequence[int]] = None,
    n_pages: float = DEFAULT_PAGES,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    level: str = "l1",
) -> ExperimentResult:
    """Regenerate Figure 5 (``level='l1'``) or the L2 text sweep."""
    apps = list(apps) if apps is not None else DEFAULT_APPS
    sweep = list(l1_sweep_kb) if l1_sweep_kb is not None else (
        L1_SWEEP_KB if level == "l1" else L2_SWEEP_KB
    )
    def config_for(size_kb: int) -> MachineConfig:
        if level == "l1":
            return MachineConfig.reference().with_l1d_size(size_kb * KB)
        return MachineConfig.reference().with_l2_size(size_kb * KB)

    tasks = [
        harness.speedup_task(
            name,
            n_pages,
            page_bytes=page_bytes,
            cap_pages=None,
            machine_config=config_for(size_kb),
        )
        for name in apps
        for size_kb in sweep
    ]
    outcome = harness.run_sweep(tasks)
    rows: List[dict] = []
    for (task, result), size_kb in zip(
        zip(tasks, outcome), [s for _ in apps for s in sweep]
    ):
        rows.append(
            {
                "application": task.app_name,
                f"{level}_kb": size_kb,
                "conventional_ms": result["conventional_ns"] / 1e6,
                "radram_ms": result["radram_ns"] / 1e6,
            }
        )
    return ExperimentResult(
        experiment_id="figure-5" if level == "l1" else "section-7.3-l2",
        title=(
            "Execution time vs L1 D-cache size"
            if level == "l1"
            else "Execution time vs L2 cache size (Section 7.3 text)"
        ),
        columns=["application", f"{level}_kb", "conventional_ms", "radram_ms"],
        rows=rows,
        notes=[f"problem size fixed at {n_pages} pages"] + outcome.notes(),
    )
