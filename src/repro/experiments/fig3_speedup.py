"""Figure 3: RADram speedup as problem size varies.

Every Figure 3/4 application is swept over problem sizes measured in
512 KB Active Pages, from sub-page fractions up to its interesting
range (arrays and median keep scaling for thousands of pages; matrix
saturates below ten).  The sweep produces both the speedup series
(Figure 3) and the processor-stall series (Figure 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.registry import FIG3_APPS
from repro.experiments import harness
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import SpeedupPoint
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: Per-application page sweeps.  Communication-orchestrated (dynprog)
#: and early-saturating (matrix) applications use shorter ranges, like
#: the paper's per-curve extents.
DEFAULT_SWEEPS: Dict[str, List[float]] = {
    "array-insert": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    "array-delete": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    "array-find": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    "database": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
    "median-kernel": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    "dynamic-prog": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256],
    "matrix-simplex": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64],
    "matrix-boeing": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64],
    "mpeg-mmx": [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
}

#: A quick sweep for tests and smoke runs.
SMOKE_SWEEP = [0.5, 2, 8, 32]


def sweep_tasks(
    apps: Sequence[str],
    sweep: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    **kwargs,
) -> List[harness.SweepTask]:
    """The Figure 3/4 sweep, declared as harness tasks."""
    return [
        harness.speedup_task(name, k, page_bytes=page_bytes, **kwargs)
        for name in apps
        for k in (sweep if sweep is not None else DEFAULT_SWEEPS[name])
    ]


def sweep_app(
    name: str,
    sweep: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    **kwargs,
) -> List[SpeedupPoint]:
    """Measure one application's speedup curve."""
    tasks = sweep_tasks([name], sweep=sweep, page_bytes=page_bytes, **kwargs)
    outcome = harness.run_sweep(tasks)
    return [
        SpeedupPoint.from_values(task.app_name, task.n_pages, result.values)
        for task, result in zip(tasks, outcome)
    ]


def run(
    apps: Optional[Sequence[str]] = None,
    sweep: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> ExperimentResult:
    """Regenerate Figure 3's series for all (or selected) applications."""
    apps = list(apps) if apps is not None else FIG3_APPS
    tasks = sweep_tasks(apps, sweep=sweep, page_bytes=page_bytes)
    outcome = harness.run_sweep(tasks)
    rows = []
    for task, result in zip(tasks, outcome):
        point = SpeedupPoint.from_values(task.app_name, task.n_pages, result.values)
        rows.append(
            {
                "application": task.app_name,
                "pages": point.n_pages,
                "speedup": point.speedup,
                "stall_fraction": point.stall_fraction,
                "conventional_ms": point.conventional_ns / 1e6,
                "radram_ms": point.radram_ns / 1e6,
            }
        )
    return ExperimentResult(
        experiment_id="figure-3",
        title="RADram speedup as problem size varies",
        columns=[
            "application",
            "pages",
            "speedup",
            "stall_fraction",
            "conventional_ms",
            "radram_ms",
        ],
        rows=rows,
        notes=[
            "pages are 512 KB superpages; fractional sizes are the sub-page region",
            "conventional times above the linearity cap are measured at 8 pages "
            "and extrapolated (validated in tests)",
        ]
        + outcome.notes(),
    )
