"""Result containers and plain-text rendering for experiments.

Every experiment returns an :class:`ExperimentResult`: a title, column
names, and rows.  ``render`` prints the same rows/series the paper's
tables and figures report, as aligned text (this reproduction has no
plotting dependency; series are printed as columns, which is what the
benchmark logs capture).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str  # e.g. "figure-3"
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Aligned text rendering."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.01:
                    return f"{value:.3g}"
                return f"{value:.3f}".rstrip("0").rstrip(".")
            return str(value)

        cells = [[fmt(row.get(col, "")) for col in self.columns] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(col.rjust(w) for col, w in zip(self.columns, widths)))
        for row_cells in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The rows as CSV (header row first)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def to_json(self) -> str:
        """The full result (metadata + rows) as JSON."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output (round-trip)."""
        payload = json.loads(text)
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=[dict(row) for row in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )
