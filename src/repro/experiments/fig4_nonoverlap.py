"""Figure 4: percent cycles the processor is stalled on RADram.

The same sweep as Figure 3; the reported series is the processor-memory
non-overlap fraction.  The saturating applications (database, matrix,
median at the far right, mpeg) fall to complete overlap; the array
primitives and dynamic programming stay high — they are memory-centric,
with very little processor activity to overlap against.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments import fig3_speedup
from repro.experiments.results import ExperimentResult
from repro.sim.memory import DEFAULT_PAGE_BYTES


def run(
    apps: Optional[Sequence[str]] = None,
    sweep: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> ExperimentResult:
    """Regenerate Figure 4 from the Figure 3 sweep."""
    fig3 = fig3_speedup.run(apps=apps, sweep=sweep, page_bytes=page_bytes)
    rows = [
        {
            "application": row["application"],
            "pages": row["pages"],
            "stalled_percent": 100.0 * row["stall_fraction"],
        }
        for row in fig3.rows
    ]
    return ExperimentResult(
        experiment_id="figure-4",
        title="Percent cycles the processor is stalled on RADram",
        columns=["application", "pages", "stalled_percent"],
        rows=rows,
        notes=["complete overlap (0%) marks the saturated region boundary"]
        # The underlying sweep is Figure 3's; on a warm cache this
        # experiment performs zero simulations.
        + [n for n in fig3.notes if n.startswith("harness:")],
    )
