"""Figure 6: abstract view of processor and Active-Page activity.

The paper's Figure 6 is a hand-drawn timeline: the processor activates
pages 1..K in sequence, pages compute in staggered parallel, and the
processor returns to post-process each, stalling (NO(i)) where a page
has not finished.  We regenerate it from a *real* simulated run: the
database kernel at a size small enough to show non-overlap, rendered
as the ASCII Gantt of :mod:`repro.viz.gantt`, plus a row table of
per-page activation/completion times.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.registry import get_app
from repro.experiments.results import ExperimentResult
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.viz.gantt import page_intervals, render_gantt

DEFAULT_APP = "database"
DEFAULT_PAGES = 8.0


def run(
    app_name: str = DEFAULT_APP, n_pages: float = DEFAULT_PAGES
) -> ExperimentResult:
    """Regenerate Figure 6 from a simulated run."""
    app = get_app(app_name)
    rconfig = RADramConfig.reference()
    memsys = RADramMemorySystem(rconfig)
    machine = Machine(
        memory=PagedMemory(page_bytes=rconfig.page_bytes), memsys=memsys
    )
    w = app.workload(n_pages, rconfig.page_bytes, functional=False)
    w.data["radram_config"] = rconfig
    stats = machine.run(app.radram_stream(w))

    rows = []
    for index, (page_no, spans) in enumerate(sorted(page_intervals(memsys).items())):
        start, end = spans[0]
        rows.append(
            {
                "page": index + 1,
                "activated_us": start / 1e3,
                "completed_us": end / 1e3,
                "t_c_us": (end - start) / 1e3,
            }
        )
    gantt = render_gantt(memsys, stats, max_pages=int(max(1, n_pages)))
    return ExperimentResult(
        experiment_id="figure-6",
        title=f"Processor and Active-Page activity ({app_name}, {n_pages} pages)",
        columns=["page", "activated_us", "completed_us", "t_c_us"],
        rows=rows,
        notes=[line for line in gantt.splitlines()],
    )
