"""Figure 6: abstract view of processor and Active-Page activity.

The paper's Figure 6 is a hand-drawn timeline: the processor activates
pages 1..K in sequence, pages compute in staggered parallel, and the
processor returns to post-process each, stalling (NO(i)) where a page
has not finished.  We regenerate it from a *real* simulated run — and
since PR 3, from the run's **trace events**: the simulation executes
under :func:`repro.trace.tracing`, the per-page activation rows come
from the ``"X"`` compute spans on the ``page/<n>`` tracks, and the
ASCII Gantt is :func:`repro.viz.gantt.render_gantt_events` over the
same event stream.  ``python -m repro trace fig6 --out FILE`` exports
the identical events as Perfetto-loadable JSON.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.registry import get_app
from repro.experiments.results import ExperimentResult
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.trace import events as trace_events
from repro.trace.events import Event
from repro.viz.gantt import page_intervals_from_events, render_gantt_events

DEFAULT_APP = "database"
DEFAULT_PAGES = 8.0


def run_traced(
    app_name: str = DEFAULT_APP, n_pages: float = DEFAULT_PAGES
) -> Tuple[ExperimentResult, List[Event]]:
    """Regenerate Figure 6; returns the result *and* the trace events.

    The CLI ``trace`` subcommand exports the returned events; ``run``
    below keeps the plain experiment interface for the report.
    """
    app = get_app(app_name)
    rconfig = RADramConfig.reference()
    memsys = RADramMemorySystem(rconfig)
    machine = Machine(
        memory=PagedMemory(page_bytes=rconfig.page_bytes), memsys=memsys
    )
    w = app.workload(n_pages, rconfig.page_bytes, functional=False)
    w.data["radram_config"] = rconfig
    with trace_events.tracing() as tracer:
        stats = machine.run(app.radram_stream(w))
    events = tracer.events()

    rows = []
    intervals = page_intervals_from_events(events)
    for index, (page_no, spans) in enumerate(intervals.items()):
        start, end = spans[0]
        rows.append(
            {
                "page": index + 1,
                "activated_us": start / 1e3,
                "completed_us": end / 1e3,
                "t_c_us": (end - start) / 1e3,
            }
        )
    gantt = render_gantt_events(events, stats, max_pages=int(max(1, n_pages)))
    result = ExperimentResult(
        experiment_id="figure-6",
        title=f"Processor and Active-Page activity ({app_name}, {n_pages} pages)",
        columns=["page", "activated_us", "completed_us", "t_c_us"],
        rows=rows,
        notes=[line for line in gantt.splitlines()],
    )
    return result, events


def run(
    app_name: str = DEFAULT_APP, n_pages: float = DEFAULT_PAGES
) -> ExperimentResult:
    """Regenerate Figure 6 from a simulated, traced run."""
    result, _ = run_traced(app_name, n_pages)
    return result
