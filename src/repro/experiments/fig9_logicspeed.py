"""Figure 9: RADram speedup as reconfigurable-logic speed varies.

Logic speed is expressed as a *divisor* of the processor clock: the
reference 100 MHz logic is divisor 10 against the 1 GHz core; a higher
divisor is slower logic (down to 10 MHz = divisor 100, up to 500 MHz =
divisor 2 — the paper's Table 1 range).

Expected generalization (Section 8): applications operating in the
*scalable* region are sensitive to logic speed; applications in the
*saturated* region are generally insensitive (the processor, not the
pages, is the bottleneck).  Each application is therefore measured at
two sizes, one in each region.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import harness
from repro.experiments.results import ExperimentResult
from repro.radram.config import RADramConfig
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: Logic-clock divisors: 500 MHz down to 10 MHz at a 1 GHz core.
DIVISOR_SWEEP = [2, 4, 10, 20, 50, 100]

#: (scalable-region pages, saturated-region pages) per application.
DEFAULT_SIZES: Dict[str, Tuple[float, float]] = {
    "array-insert": (64, 4096),
    "database": (8, 256),
    "median-kernel": (64, 8192),
    "matrix-simplex": (2, 32),
    "mpeg-mmx": (8, 512),
}


def run(
    apps: Optional[Sequence[str]] = None,
    divisors: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> ExperimentResult:
    """Regenerate Figure 9's speedup-vs-logic-divisor series."""
    apps = list(apps) if apps is not None else list(DEFAULT_SIZES)
    sweep = list(divisors) if divisors is not None else DIVISOR_SWEEP
    grid: List[Tuple[str, str, float, float]] = []
    for name in apps:
        scalable_pages, saturated_pages = DEFAULT_SIZES.get(name, (8, 256))
        for region, n_pages in (("scalable", scalable_pages), ("saturated", saturated_pages)):
            for divisor in sweep:
                grid.append((name, region, n_pages, divisor))
    tasks = [
        harness.speedup_task(
            name,
            n_pages,
            page_bytes=page_bytes,
            radram_config=RADramConfig.reference().with_logic_divisor(divisor),
        )
        for name, _, n_pages, divisor in grid
    ]
    outcome = harness.run_sweep(tasks)
    rows: List[dict] = [
        {
            "application": name,
            "region": region,
            "pages": n_pages,
            "logic_divisor": divisor,
            "speedup": result["speedup"],
        }
        for (name, region, n_pages, divisor), result in zip(grid, outcome)
    ]
    return ExperimentResult(
        experiment_id="figure-9",
        title="RADram speedup as logic speed varies (higher divisor = slower)",
        columns=["application", "region", "pages", "logic_divisor", "speedup"],
        rows=rows,
        notes=["reference divisor is 10 (100 MHz logic, 1 GHz core)"] + outcome.notes(),
    )
