"""Cache-hierarchy hot-path microbenchmarks and the perf baseline.

``BENCH_sim.json`` (repo root) records the simulator's perf trajectory
across PRs.  Because wall-clock numbers are machine-dependent, the
*regression gate* is the speedup **ratio** of the vectorized engine
(:mod:`repro.sim.cache`) over the retained scalar reference
(:mod:`repro.sim.cache_reference`) on the same host at the same moment:
that ratio is a property of the code, not the machine.  Absolute
timings are recorded alongside for context only.

Refresh the baseline with ``python -m repro bench``; CI replays the
workloads via ``benchmarks/test_sim_hotpath.py`` and fails if any
workload's speedup ratio falls more than ``REGRESSION_TOLERANCE``
below the committed baseline.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Dict, Tuple

import numpy as np

from repro.sim.bus import Bus
from repro.sim.cache import build_hierarchy
from repro.sim.cache_reference import build_scalar_hierarchy
from repro.sim.config import KB, MB, BusConfig, CacheConfig, DRAMConfig
from repro.sim.dram import DRAM

#: A workload's speedup ratio may fall at most this far below baseline.
REGRESSION_TOLERANCE = 0.30

#: Budget for the *disabled* tracer on the vectorized hot path: with
#: ``repro.trace`` off, each workload's speedup ratio may sit at most
#: this far below the committed baseline.  The instrumented engine pays
#: one ``TRACER is None`` test per batch, so 5% is generous — a failure
#: means someone put a guard inside a per-line loop.
TRACING_OVERHEAD_TOLERANCE = 0.05

#: The wide workloads gated at :data:`TRACING_OVERHEAD_TOLERANCE` —
#: exactly the batch shapes whose per-batch guard cost must vanish.
TRACE_GATE_WORKLOADS = (
    "cold_read_scan_4mb",
    "cold_write_scan_4mb",
    "strided_50k_128b",
)

#: Tolerance for the fault-path dispatch gate.  With
#: ``RADramConfig.faults`` left ``None`` (the default), the
#: activate/wait handlers pay one ``self.faults is None`` test per
#: activation and nothing else.  The gated number is the ratio of the
#: same dispatch workload run with a present-but-disabled
#: ``FaultConfig`` over the ``faults=None`` run — both sides share the
#: host, the workload and the noise, so the ratio is tight.  It must
#: stay within 5% of the committed baseline in *either* direction:
#: falling means fault work leaked outside the ``faults is not None``
#: guards (inflating the fault-free denominator every experiment runs
#: on); rising means the disabled controller got more expensive.
FAULTS_OVERHEAD_TOLERANCE = 0.05

#: Baseline key for the fault-path dispatch benchmark.
FAULTS_GATE_KEY = "radram_dispatch_2k"

#: Tolerance for the disabled-sanitizer gate.  With
#: :data:`repro.check.runtime.CHECKER` left ``None`` (the default) the
#: instrumented hot paths — one guard per processor op, per cache
#: batch, per engine event, per sync-word transition — pay a
#: module-attribute load and a ``None`` test each and nothing else.
#: The gated number is ``dispatch_ratio`` from the dispatch benchmark:
#: the frozen scalar-cache yardstick's time over the checker-off
#: dispatch time, the same instrumented-vs-frozen-reference
#: methodology as the tracing gate, with a one-sided floor — if the
#: ratio falls more than 5% below baseline, the checker-off dispatch
#: path (which every experiment runs on) got slower, i.e. sanitizer
#: work leaked outside the ``CHECKER is not None`` guards.
CHECK_OVERHEAD_TOLERANCE = 0.05

#: Sanity ceiling on the *enabled* checker's cost (``checker_overhead``,
#: the paired checked/checker-off ratio).  Enabled-mode checking is an
#: opt-in debugging tool whose cost may evolve with its detectors, so
#: it is not band-gated; but a ratio past this ceiling means a detector
#: went accidentally super-linear (typ. measured ~4-5x).
CHECK_ENABLED_CEILING = 20.0

#: The checker gate anchors on the same dispatch benchmark entry.
CHECK_GATE_KEY = FAULTS_GATE_KEY

#: A batched-execution workload's paired speedup ratio (scalar
#: ``batching_enabled=False`` time over batched time, same process,
#: fresh machines) may fall at most this far below baseline.  Both
#: regimes run the identical op stream back to back, so host noise
#: cancels and the ratio is a property of the code.
BATCHING_TOLERANCE = 0.30

BASELINE_PATH = pathlib.Path(__file__).resolve().parents[3] / "BENCH_sim.json"

HISTORY_PATH = pathlib.Path(__file__).resolve().parents[3] / "BENCH_history.jsonl"

LINE = 32


def _reference_hierarchy(build):
    l1 = CacheConfig(size_bytes=64 * KB, assoc=2, line_bytes=LINE, hit_ns=1.0)
    l2 = CacheConfig(size_bytes=1 * MB, assoc=4, line_bytes=LINE, hit_ns=6.0)
    dram = DRAM(DRAMConfig(), Bus(BusConfig()))
    l1d, _, _ = build(l1, l2, dram)
    return l1d


# ----------------------------------------------------------------------
# Workloads: factories return ([stream, ...], write?, repeats)


def _cold_read_scan():
    return [range(0, (4 * MB) // LINE)], False, 1


def _cold_write_scan():
    return [range(0, (4 * MB) // LINE)], True, 1


def _warm_retouch():
    return [range(0, (32 * KB) // LINE)], False, 20


def _strided_conflict():
    # 128-byte stride: touches every 4th line over a 6.4MB footprint.
    return [np.arange(50_000, dtype=np.int64) * 4], False, 1


def _app_trace_blocks():
    # The app-trace shape: thousands of narrow (16-line) block ops.
    # Exercises the small-batch scalar regime of the adaptive dispatch.
    return [
        np.arange(i * 16, i * 16 + 16, dtype=np.int64) for i in range(10_000)
    ], False, 1


WORKLOADS: Dict[str, Callable] = {
    "cold_read_scan_4mb": _cold_read_scan,
    "cold_write_scan_4mb": _cold_write_scan,
    "warm_retouch_32kb_x20": _warm_retouch,
    "strided_50k_128b": _strided_conflict,
    "app_trace_16line_blocks": _app_trace_blocks,
}


def _time_workload(l1d, streams, write: bool, repeats: int) -> float:
    t0 = time.perf_counter()
    for _ in range(repeats):
        for lines in streams:
            l1d.access_lines(lines, write=write)
    return time.perf_counter() - t0


def run_workload(name: str, trials: int = 3) -> Dict[str, float]:
    """Run one workload on both engines; returns timings + ratio.

    Each engine gets ``trials`` fresh-hierarchy runs and the fastest
    counts: short workloads are jittery and the *minimum* is the
    stable, noise-resistant estimator for a regression gate.  The
    per-trial *medians* ride along for ``BENCH_history.jsonl``, which
    tracks trends rather than gating.
    """
    import statistics

    factory = WORKLOADS[name]
    streams, write, repeats = factory()
    n_lines = sum(len(s) for s in streams) * repeats

    vec_times = []
    ref_times = []
    for _ in range(trials):
        vec = _reference_hierarchy(build_hierarchy)
        vec_times.append(_time_workload(vec, streams, write, repeats))
        ref = _reference_hierarchy(build_scalar_hierarchy)
        ref_times.append(_time_workload(ref, streams, write, repeats))
    t_vec = min(vec_times)
    t_ref = min(ref_times)

    # Equal work is a correctness smoke check, not just timing hygiene.
    assert (vec.stats.hits, vec.stats.misses, vec.stats.writebacks) == (
        ref.stats.hits,
        ref.stats.misses,
        ref.stats.writebacks,
    ), f"engines diverged on workload {name!r}"

    return {
        "lines": n_lines,
        "vectorized_ms": round(t_vec * 1e3, 3),
        "scalar_ref_ms": round(t_ref * 1e3, 3),
        "vectorized_ms_median": round(statistics.median(vec_times) * 1e3, 3),
        "scalar_ref_ms_median": round(statistics.median(ref_times) * 1e3, 3),
        "vectorized_ns_per_line": round(t_vec / n_lines * 1e9, 1),
        "speedup_ratio": round(t_ref / t_vec, 2),
    }


def run_benchmarks(trials: int = 3) -> Dict[str, Dict[str, float]]:
    """All workloads; keyed by workload name."""
    return {name: run_workload(name, trials=trials) for name in sorted(WORKLOADS)}


def load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def check_regressions(
    current: Dict[str, Dict[str, float]], baseline: dict
) -> Dict[str, str]:
    """Compare current ratios against the baseline; returns failures."""
    failures = {}
    for name, base in baseline["workloads"].items():
        cur = current.get(name)
        if cur is None:
            failures[name] = "workload missing from current run"
            continue
        floor = base["speedup_ratio"] * (1.0 - REGRESSION_TOLERANCE)
        if cur["speedup_ratio"] < floor:
            failures[name] = (
                f"speedup ratio {cur['speedup_ratio']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup_ratio']:.2f}x "
                f"- {REGRESSION_TOLERANCE:.0%} tolerance)"
            )
    return failures


def check_tracing_overhead(
    current: Dict[str, Dict[str, float]], baseline: dict
) -> Dict[str, str]:
    """The ≤5% tracing-disabled gate over :data:`TRACE_GATE_WORKLOADS`.

    ``current`` must come from a run with the tracer disabled (the
    default — benchmarks never enable it).  Like the 30% regression
    gate this compares speedup *ratios*, so it is machine-independent;
    only the tolerance differs.
    """
    failures = {}
    for name in TRACE_GATE_WORKLOADS:
        base = baseline["workloads"].get(name)
        cur = current.get(name)
        if base is None or cur is None:
            failures[name] = "workload missing from baseline or current run"
            continue
        floor = base["speedup_ratio"] * (1.0 - TRACING_OVERHEAD_TOLERANCE)
        if cur["speedup_ratio"] < floor:
            failures[name] = (
                f"speedup ratio {cur['speedup_ratio']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup_ratio']:.2f}x - "
                f"{TRACING_OVERHEAD_TOLERANCE:.0%} tracing-overhead budget)"
            )
    return failures


def _dispatch_machine(fault_config):
    """A RADram machine for the dispatch benchmark (4 KB pages)."""
    from repro.radram.config import RADramConfig
    from repro.radram.system import RADramMemorySystem
    from repro.sim.machine import Machine
    from repro.sim.memory import PagedMemory

    cfg = RADramConfig.reference().with_page_bytes(4 * KB).with_faults(fault_config)
    memsys = RADramMemorySystem(cfg)
    return Machine(memory=PagedMemory(page_bytes=4 * KB), memsys=memsys)


def _dispatch_ops(n_pages: int = 64, rounds: int = 32):
    """Wide activate/wait bursts: the dispatch-path hot loop."""
    from repro.core.functions import PageTask
    from repro.sim import ops as O

    # One immutable task descriptor shared by every activation: the
    # benchmark gates the *dispatch* path, and re-constructing 2048
    # identical frozen dataclasses was pure generator noise in the
    # timed region.
    task = PageTask.simple(1_000.0)
    ops = []
    for _ in range(rounds):
        for p in range(n_pages):
            ops.append(O.Activate(p, 1, task))
        for p in range(n_pages):
            ops.append(O.WaitPage(p))
    return ops


def run_dispatch_workload(trials: int = 5) -> Dict[str, float]:
    """The fault-path dispatch benchmark (:data:`FAULTS_GATE_KEY`).

    Times 2048 activate/wait pairs through ``RADramMemorySystem`` four
    ways: faults absent (``faults=None``, the default every experiment
    runs with — this leg runs the batched executor and is the headline
    ``dispatch_ms``), the same fault-free machine with batching forced
    off (the scalar pairing leg — a present fault config or live
    checker forces the scalar regime, so overhead ratios must pair
    against scalar, not batched, time), a present-but-disabled
    :class:`FaultConfig` (controller live, zero rates), and the frozen
    scalar cache engine as a same-host yardstick.
    ``faults_disabled_overhead`` (disabled-config time over scalar
    faults-absent time) is the gated number — both sides run the same
    workload in the same regime in the same call, so host noise
    cancels and a 5% drift either way is code, not jitter.  ``dispatch_ratio`` (yardstick /
    faults-absent time) is the sanitizer's disabled-path gate number
    (see :data:`CHECK_OVERHEAD_TOLERANCE`): the scalar yardstick
    carries no checker hooks, so a fall means the instrumented
    checker-off path got slower.  The absolute timings are context.

    A fourth leg runs the same workload with a live counting
    :class:`repro.check.runtime.Checker`; ``checker_overhead`` — the
    *median across trials* of the per-trial checked/scalar ratio
    (a live checker forces the scalar regime, so scalar is the fair
    denominator)
    (adjacent runs share the host's load burst, so the paired median
    shrugs it off) — reports the enabled-mode cost, sanity-bounded by
    :data:`CHECK_ENABLED_CEILING` rather than band-gated.
    """
    import statistics

    from repro.check import runtime as check_runtime
    from repro.faults.models import FaultConfig

    streams, write, repeats = _warm_retouch()
    t_none = t_scalar = t_disabled = t_checked = t_yard = float("inf")
    checked_ratios = []
    for _ in range(trials):
        machine = _dispatch_machine(None)
        t0 = time.perf_counter()
        machine.run(iter(_dispatch_ops()))
        trial_none = time.perf_counter() - t0
        t_none = min(t_none, trial_none)

        # A present FaultConfig (and a live checker) force the scalar
        # regime, so the overhead ratios pair against a scalar
        # faults-absent leg — otherwise they would measure the batched
        # executor's speedup, not the fault/checker machinery.
        machine = _dispatch_machine(None)
        machine.processor.batching_enabled = False
        t0 = time.perf_counter()
        machine.run(iter(_dispatch_ops()))
        trial_scalar = time.perf_counter() - t0
        t_scalar = min(t_scalar, trial_scalar)

        machine = _dispatch_machine(FaultConfig())
        t0 = time.perf_counter()
        machine.run(iter(_dispatch_ops()))
        t_disabled = min(t_disabled, time.perf_counter() - t0)

        machine = _dispatch_machine(None)
        with check_runtime.checking():
            t0 = time.perf_counter()
            machine.run(iter(_dispatch_ops()))
            trial_checked = time.perf_counter() - t0
        t_checked = min(t_checked, trial_checked)
        checked_ratios.append(trial_checked / trial_scalar)

        yard = _reference_hierarchy(build_scalar_hierarchy)
        t_yard = min(t_yard, _time_workload(yard, streams, write, repeats))

    return {
        "activations": 2048,
        "dispatch_ms": round(t_none * 1e3, 3),
        "scalar_dispatch_ms": round(t_scalar * 1e3, 3),
        "faults_disabled_ms": round(t_disabled * 1e3, 3),
        "checked_ms": round(t_checked * 1e3, 3),
        "yardstick_ms": round(t_yard * 1e3, 3),
        "dispatch_ratio": round(t_yard / t_none, 3),
        "faults_disabled_overhead": round(t_disabled / t_scalar, 2),
        "checker_overhead": round(statistics.median(checked_ratios), 2),
    }


def check_faults_overhead(
    current: Dict[str, float], baseline: dict
) -> Dict[str, str]:
    """The ±5% faults-disabled gate over the dispatch benchmark.

    ``current`` is one :func:`run_dispatch_workload` result; the
    baseline entry lives under :data:`FAULTS_GATE_KEY`.  The gated
    number is ``faults_disabled_overhead`` — a paired same-workload
    ratio, so host noise cancels — and the band is two-sided (see
    :data:`FAULTS_OVERHEAD_TOLERANCE` for what each direction means).
    """
    base = baseline.get(FAULTS_GATE_KEY)
    if base is None:
        return {
            FAULTS_GATE_KEY: (
                "dispatch baseline missing; refresh with `python -m repro bench`"
            )
        }
    anchor = base["faults_disabled_overhead"]
    floor = anchor * (1.0 - FAULTS_OVERHEAD_TOLERANCE)
    ceiling = anchor * (1.0 + FAULTS_OVERHEAD_TOLERANCE)
    cur = current["faults_disabled_overhead"]
    if cur < floor:
        return {
            FAULTS_GATE_KEY: (
                f"faults-disabled overhead {cur:.2f}x fell below {floor:.2f}x "
                f"(baseline {anchor:.2f}x - {FAULTS_OVERHEAD_TOLERANCE:.0%}): "
                "fault work likely leaked outside the `faults is not None` "
                "guards, slowing the fault-free path every experiment uses"
            )
        }
    if cur > ceiling:
        return {
            FAULTS_GATE_KEY: (
                f"faults-disabled overhead {cur:.2f}x rose above {ceiling:.2f}x "
                f"(baseline {anchor:.2f}x + {FAULTS_OVERHEAD_TOLERANCE:.0%}): "
                "the disabled fault controller got more expensive"
            )
        }
    return {}


def check_checker_overhead(
    current: Dict[str, float], baseline: dict
) -> Dict[str, str]:
    """The ≤5% checker-disabled gate over the dispatch benchmark.

    ``current`` is one :func:`run_dispatch_workload` result taken with
    :data:`repro.check.runtime.CHECKER` at its default ``None`` outside
    the benchmark's own checked leg (the caller asserts this).  The
    gated number is ``dispatch_ratio`` — the frozen scalar-cache
    yardstick over the checker-off dispatch time, one-sided against
    the entry under :data:`CHECK_GATE_KEY` (see
    :data:`CHECK_OVERHEAD_TOLERANCE`): the yardstick carries no
    sanitizer hooks, so only a slowdown of the instrumented
    checker-off path can pull the ratio down.  ``checker_overhead``
    (the enabled-mode cost) is not band-gated — it is an opt-in
    debugging mode — but a blowup past
    :data:`CHECK_ENABLED_CEILING` flags a detector gone super-linear.
    """
    base = baseline.get(CHECK_GATE_KEY)
    if base is None or "dispatch_ratio" not in base:
        return {
            CHECK_GATE_KEY: (
                "checker baseline missing; refresh with `python -m repro bench`"
            )
        }
    anchor = base["dispatch_ratio"]
    floor = anchor * (1.0 - CHECK_OVERHEAD_TOLERANCE)
    cur = current["dispatch_ratio"]
    if cur < floor:
        return {
            CHECK_GATE_KEY: (
                f"dispatch ratio {cur:.3f} fell below {floor:.3f} "
                f"(baseline {anchor:.3f} - {CHECK_OVERHEAD_TOLERANCE:.0%}): "
                "the checker-off dispatch path slowed relative to the "
                "hook-free scalar yardstick — sanitizer work likely "
                "leaked outside the `CHECKER is not None` guards"
            )
        }
    if current["checker_overhead"] > CHECK_ENABLED_CEILING:
        return {
            CHECK_GATE_KEY: (
                f"enabled-checker overhead {current['checker_overhead']:.1f}x "
                f"blew past the {CHECK_ENABLED_CEILING:.0f}x sanity ceiling "
                "(typ. ~4-5x): a detector likely went super-linear"
            )
        }
    return {}


def run_checked_dispatch_workload() -> Dict[str, float]:
    """The dispatch workload with a *live* (counting) sanitizer.

    The smoke half of the checker benchmarks: proves the instrumented
    dispatch path actually feeds the detectors under a live checker —
    and that a correct workload stays violation-free — without gating
    on enabled-mode wall-clock, which is allowed to be slower.
    """
    from repro.check import runtime as check_runtime

    machine = _dispatch_machine(None)
    with check_runtime.checking() as checker:
        t0 = time.perf_counter()
        machine.run(iter(_dispatch_ops()))
        seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "violations": float(checker.total),
        "pages_tracked": 64.0,
    }


# ----------------------------------------------------------------------
# Batched-execution workloads: the fused segment executor vs the
# retained scalar oracle (``Processor.batching_enabled = False``).


def _processor_step_ops(blocks: int = 12_500):
    """A 100k-op straight-line conventional stream.

    Eight ops per block — reads, compute, writes over a rolling window
    — with no sync points, so the batched executor fuses the whole
    stream into maximal segments while the scalar oracle replays it op
    by op.
    """
    from repro.sim import ops as O

    ops = []
    span = 256 * KB
    for i in range(blocks):
        base = (i * 192) % span
        ops.append(O.MemRead(base, 128))
        ops.append(O.Compute(40.0))
        ops.append(O.MemRead(base + 4 * KB, 64))
        ops.append(O.Compute(25.0))
        ops.append(O.MemWrite(base + 8 * KB, 128))
        ops.append(O.StridedRead(base, count=4, stride_bytes=LINE, elem_bytes=4))
        ops.append(O.Compute(10.0))
        ops.append(O.MemWrite(base + 12 * KB, 64))
    return ops


def _conventional_machine():
    from repro.sim.machine import Machine
    from repro.sim.memory import PagedMemory

    return Machine(memory=PagedMemory())


def _run_processor_step(batching: bool) -> float:
    machine = _conventional_machine()
    machine.processor.batching_enabled = batching
    ops = _processor_step_ops()
    t0 = time.perf_counter()
    machine.run(iter(ops))
    return time.perf_counter() - t0


def _run_dispatch_batch(batching: bool) -> float:
    machine = _dispatch_machine(None)
    machine.processor.batching_enabled = batching
    ops = _dispatch_ops()
    t0 = time.perf_counter()
    machine.run(iter(ops))
    return time.perf_counter() - t0


#: name -> (runner taking ``batching: bool``, op count for context).
BATCH_WORKLOADS: Dict[str, Tuple[Callable[[bool], float], int]] = {
    "processor_step_100k": (_run_processor_step, 100_000),
    "dispatch_batch_2k": (_run_dispatch_batch, 4096),
}


def run_batch_workload(name: str, trials: int = 3) -> Dict[str, float]:
    """One batched-vs-scalar paired measurement.

    Both regimes execute the identical op stream on fresh machines in
    the same call; the gated ``batch_speedup_ratio`` is scalar time
    over batched time, so host noise cancels.
    """
    import statistics

    runner, n_ops = BATCH_WORKLOADS[name]
    batched_times = []
    scalar_times = []
    for _ in range(trials):
        batched_times.append(runner(True))
        scalar_times.append(runner(False))
    t_batched = min(batched_times)
    t_scalar = min(scalar_times)
    return {
        "ops": n_ops,
        "batched_ms": round(t_batched * 1e3, 3),
        "scalar_ms": round(t_scalar * 1e3, 3),
        "batched_ms_median": round(statistics.median(batched_times) * 1e3, 3),
        "scalar_ms_median": round(statistics.median(scalar_times) * 1e3, 3),
        "batch_speedup_ratio": round(t_scalar / t_batched, 2),
    }


def run_batch_benchmarks(trials: int = 3) -> Dict[str, Dict[str, float]]:
    """All batched-execution workloads; keyed by workload name."""
    return {
        name: run_batch_workload(name, trials=trials)
        for name in sorted(BATCH_WORKLOADS)
    }


def check_batching_regressions(
    current: Dict[str, Dict[str, float]], baseline: dict
) -> Dict[str, str]:
    """The paired batched-vs-scalar gate over ``batch_workloads``."""
    failures = {}
    base_block = baseline.get("batch_workloads")
    if base_block is None:
        return {
            "batch_workloads": (
                "batched baseline missing; refresh with `python -m repro bench"
                " --update`"
            )
        }
    for name, base in base_block.items():
        cur = current.get(name)
        if cur is None:
            failures[name] = "workload missing from current run"
            continue
        floor = base["batch_speedup_ratio"] * (1.0 - BATCHING_TOLERANCE)
        if cur["batch_speedup_ratio"] < floor:
            failures[name] = (
                f"batched speedup {cur['batch_speedup_ratio']:.2f}x fell "
                f"below {floor:.2f}x (baseline "
                f"{base['batch_speedup_ratio']:.2f}x - "
                f"{BATCHING_TOLERANCE:.0%} tolerance)"
            )
    return failures


# ----------------------------------------------------------------------
# Append-only run history (``BENCH_history.jsonl``)


def history_record(
    workloads: Dict[str, Dict[str, float]],
    batch: Dict[str, Dict[str, float]],
    dispatch: Dict[str, float],
    trials: int,
    note: str = "",
    profiled: bool = False,
) -> dict:
    """One ``BENCH_history.jsonl`` line: host + rev + per-workload medians.

    ``profiled`` marks runs taken under cProfile — their absolute
    timings are inflated severalfold, so statistical consumers must be
    able to exclude them.
    """
    import datetime
    import platform
    import subprocess

    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BASELINE_PATH.parent,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        rev = None
    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "note": note or None,
        "profiled": profiled,
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_rev": rev,
        "trials": trials,
        "workloads": {
            name: {
                "vectorized_ms_median": row.get("vectorized_ms_median"),
                "scalar_ref_ms_median": row.get("scalar_ref_ms_median"),
                "speedup_ratio": row.get("speedup_ratio"),
            }
            for name, row in sorted(workloads.items())
        },
        "batch_workloads": {
            name: {
                "batched_ms_median": row.get("batched_ms_median"),
                "scalar_ms_median": row.get("scalar_ms_median"),
                "batch_speedup_ratio": row.get("batch_speedup_ratio"),
            }
            for name, row in sorted(batch.items())
        },
        "dispatch": {
            "dispatch_ms": dispatch.get("dispatch_ms"),
            "dispatch_ratio": dispatch.get("dispatch_ratio"),
            "faults_disabled_overhead": dispatch.get("faults_disabled_overhead"),
            "checker_overhead": dispatch.get("checker_overhead"),
        },
    }


def append_history(record: dict, path: pathlib.Path = HISTORY_PATH) -> None:
    """Append one run record to the append-only history file."""
    with open(path, "a") as fh:
        json.dump(record, fh, sort_keys=False)
        fh.write("\n")


def run_traced_workload(
    name: str = "cold_read_scan_4mb", capacity: int = 100_000
) -> Dict[str, float]:
    """One vectorized-engine workload run with tracing *enabled*.

    The smoke half of the tracing benchmarks: proves the instrumented
    hot path actually emits under a live tracer (and that the ring
    buffer bounds memory) without gating on enabled-mode wall-clock,
    which is allowed to be slower.
    """
    from repro.trace import events as trace_events

    streams, write, repeats = WORKLOADS[name]()
    l1d = _reference_hierarchy(build_hierarchy)
    with trace_events.tracing(capacity=capacity) as tracer:
        seconds = _time_workload(l1d, streams, write, repeats)
    return {
        "seconds": seconds,
        "events": float(len(tracer)),
        "dropped": float(tracer.dropped),
    }


def refresh_baseline(note: str = "", trials: int = 3) -> dict:
    """Re-measure and rewrite ``BENCH_sim.json`` (the ``bench`` CLI).

    A committed baseline anchors tight (5%) overhead gates, so on a
    jittery host refresh with more ``trials`` — each workload keeps its
    fastest run, and the minimum stabilizes as trials grow.
    """
    current = run_benchmarks(trials=trials)
    doc = {
        "comment": (
            "Cache-hierarchy hot-path perf baseline. The regression gate "
            "is 'speedup_ratio' (vectorized engine vs scalar reference, "
            "same host): machine-independent. Absolute ms are context "
            "only. 'batch_workloads' gates the fused op-stream executor "
            "against the retained scalar oracle the same way "
            "('batch_speedup_ratio'). Refresh with: python -m repro bench"
        ),
        "regression_tolerance": REGRESSION_TOLERANCE,
        "batching_tolerance": BATCHING_TOLERANCE,
        "workloads": current,
        "batch_workloads": run_batch_benchmarks(trials=trials),
        FAULTS_GATE_KEY: run_dispatch_workload(trials=max(5, trials)),
    }
    if note:
        doc["note"] = note
    # Keep historical context blocks if present.
    try:
        old = load_baseline()
        for key in ("seed_before", "pre_batching", "report_quick"):
            if key in old:
                doc[key] = old[key]
    except (OSError, json.JSONDecodeError):
        pass
    with open(BASELINE_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc
