"""Run every experiment and print the full reproduction report.

``python -m repro.experiments.report`` regenerates every table and
figure of the paper's evaluation; ``--quick`` uses reduced sweeps.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    fig1_regions,
    harness,
    fig3_speedup,
    fig4_nonoverlap,
    fig5_cache,
    fig6_gantt,
    fig8_latency,
    fig9_logicspeed,
    table2_partitioning,
    table3_synthesis,
    table4_model,
)
from repro.experiments.results import ExperimentResult

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table-2": table2_partitioning.run,
    "table-3": table3_synthesis.run,
    "figure-1": fig1_regions.run,
    "figure-3": fig3_speedup.run,
    "figure-4": fig4_nonoverlap.run,
    "figure-5": fig5_cache.run,
    "figure-6": fig6_gantt.run,
    "figure-8": fig8_latency.run,
    "figure-9": fig9_logicspeed.run,
    "table-4": table4_model.run,
}

QUICK_OVERRIDES: Dict[str, Callable[[], ExperimentResult]] = {
    "figure-3": lambda: fig3_speedup.run(sweep=fig3_speedup.SMOKE_SWEEP),
    "figure-4": lambda: fig4_nonoverlap.run(sweep=fig3_speedup.SMOKE_SWEEP),
    "figure-5": lambda: fig5_cache.run(l1_sweep_kb=[32, 64, 256], n_pages=2),
    "figure-8": lambda: fig8_latency.run(latencies_ns=[0, 50, 600]),
    "figure-9": lambda: fig9_logicspeed.run(divisors=[2, 10, 100]),
    "table-4": lambda: table4_model.run(sweep=[1, 4, 16]),
}


def run_all(quick: bool = False, only: Optional[List[str]] = None) -> List[ExperimentResult]:
    """Run the selected experiments, in paper order."""
    results = []
    for name, runner in EXPERIMENTS.items():
        if only and name not in only:
            continue
        if quick and name in QUICK_OVERRIDES:
            runner = QUICK_OVERRIDES[name]
        results.append(runner())
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(EXPERIMENTS),
        help="run a subset of experiments",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write one CSV and JSON file per experiment into DIR",
    )
    parser.add_argument(
        "--extensions",
        action="store_true",
        help="also run the extension studies (Sections 2/3/8/10)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan sweep points out across N worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk sweep result cache (.repro_cache/)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-task deadline in seconds (pooled sweeps preempt hangs)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for crashed/hung/raising sweep tasks",
    )
    parser.add_argument(
        "--trace-summary",
        action="store_true",
        help="run sweeps under the event tracer and cache trace.* digests",
    )
    parser.add_argument(
        "--allow-failures",
        action="store_true",
        help="exit 0 even if sweep tasks failed (default: exit 1)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    harness.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        trace_summary=True if args.trace_summary else None,
        task_timeout_s=args.task_timeout,
        retries=args.retries,
    )
    t0 = time.time()
    harness.reset_failed_tasks()
    results = run_all(quick=args.quick, only=args.only)
    if args.extensions:
        from repro.experiments.extensions import run_all_extensions

        results += run_all_extensions()
    for result in results:
        print(result.render())
        print()
    if args.output:
        import pathlib

        out = pathlib.Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        for result in results:
            (out / f"{result.experiment_id}.csv").write_text(result.to_csv())
            (out / f"{result.experiment_id}.json").write_text(result.to_json())
        print(f"[wrote {2 * len(results)} files to {out}]")
    failed = harness.total_failed_tasks
    if failed:
        # A partial sweep renders plausible-looking tables; make the
        # failure impossible to miss and reflect it in the exit code.
        print(
            f"[WARNING: {failed} sweep task(s) FAILED; "
            f"affected experiments carry 'harness: ... FAILED' notes]"
        )
    print(f"[report complete in {time.time() - t0:.1f}s]")
    if failed and not args.allow_failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
