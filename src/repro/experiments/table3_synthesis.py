"""Table 3: Active-Page functions synthesized for RADram.

Thin experiment wrapper over :mod:`repro.synth.report`, adding the
paper's published values for side-by-side comparison.
"""

from __future__ import annotations

from repro.experiments.results import ExperimentResult
from repro.synth.circuits import TABLE3_PAPER
from repro.synth.report import table3


def run() -> ExperimentResult:
    """Regenerate Table 3."""
    rows = []
    for result in table3():
        paper_les, paper_speed, paper_code = TABLE3_PAPER[result.name]
        rows.append(
            {
                "application": result.name,
                "les": result.les,
                "les_paper": paper_les,
                "speed_ns": result.speed_ns,
                "speed_ns_paper": paper_speed,
                "code_kb": result.code_kb,
                "code_kb_paper": paper_code,
            }
        )
    return ExperimentResult(
        experiment_id="table-3",
        title="Active-Page functions synthesized for RADram",
        columns=[
            "application",
            "les",
            "les_paper",
            "speed_ns",
            "speed_ns_paper",
            "code_kb",
            "code_kb_paper",
        ],
        rows=rows,
        notes=["LE counts from generic 4-LUT mapping formulas (see repro.synth)"],
    )
