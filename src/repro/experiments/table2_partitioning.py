"""Table 2: partitioning of applications between processor and pages.

Regenerated from the applications' own metadata — each application
declares its partitioning class and the division of labour, so this
table cannot drift from the implementations.
"""

from __future__ import annotations

from repro.apps.base import Partitioning
from repro.apps.registry import ALL_APPS
from repro.experiments.results import ExperimentResult

#: Registry name -> the paper's Table 2 row name.
PAPER_NAMES = {
    "array-insert": "Array",
    "database": "Database",
    "median-kernel": "Median",
    "dynamic-prog": "Dynamic Prog",
    "matrix-simplex": "Matrix",
    "mpeg-mmx": "MPEG-MMX",
}


def run() -> ExperimentResult:
    """Regenerate Table 2."""
    rows = []
    for part in (Partitioning.MEMORY_CENTRIC, Partitioning.PROCESSOR_CENTRIC):
        for reg_name, paper_name in PAPER_NAMES.items():
            app = ALL_APPS[reg_name]
            if app.partitioning is not part:
                continue
            rows.append(
                {
                    "name": paper_name,
                    "partitioning": part.value,
                    "processor_computation": app.processor_computation,
                    "active_page_computation": app.active_page_computation,
                }
            )
    return ExperimentResult(
        experiment_id="table-2",
        title="Partitioning of applications between processor and Active Pages",
        columns=[
            "name",
            "partitioning",
            "processor_computation",
            "active_page_computation",
        ],
        rows=rows,
    )
