"""Figure 1: expected computation scaling of Active Pages.

Figure 1 is the paper's conceptual plot: sub-page, scalable and
saturated regions of the speedup curve, plus the falling non-overlap
curve.  We regenerate it from the analytic model (Figure 7) with
representative constants, then verify (in the benchmarks) that the
*measured* Figure 3 curves classify into the same region sequence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.model import non_overlap_times, speedup_partitioned
from repro.core.regions import classify_regions
from repro.experiments.results import ExperimentResult

#: Representative model constants (database-like shape).
T_CONV_PER_PAGE_US = 150.0
T_A_US = 1.3
T_P_US = 0.8
T_C_US = 60.0

DEFAULT_SWEEP = [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def run(sweep: Optional[Sequence[float]] = None) -> ExperimentResult:
    """Regenerate the Figure 1 curves from the analytic model."""
    points = list(sweep) if sweep is not None else DEFAULT_SWEEP
    pages: List[float] = []
    speedups: List[float] = []
    nonoverlap: List[float] = []
    for k in points:
        whole = max(1, int(np.ceil(k)))
        s = speedup_partitioned(
            T_CONV_PER_PAGE_US, 1.0, T_A_US, T_P_US, T_C_US, whole
        )
        if k < 1:
            s *= k  # sub-page: activation cost without the parallelism
        no = float(np.sum(non_overlap_times(T_A_US, T_P_US, T_C_US, whole)))
        total = whole * (T_A_US + T_P_US) + no
        pages.append(k)
        speedups.append(s)
        nonoverlap.append(no / total)
    labels = classify_regions(pages, speedups)
    rows = [
        {
            "pages": k,
            "speedup": s,
            "nonoverlap_fraction": no,
            "region": label.region.value,
        }
        for k, s, no, label in zip(pages, speedups, nonoverlap, labels)
    ]
    return ExperimentResult(
        experiment_id="figure-1",
        title="Expected computation scaling of Active Pages (analytic)",
        columns=["pages", "speedup", "nonoverlap_fraction", "region"],
        rows=rows,
        notes=["model constants follow the database application's shape"],
    )
