"""Experiment harnesses regenerating every table and figure.

Each ``figN_*``/``tableN_*`` module exposes a ``run()`` returning rows
and a ``format_*`` renderer; ``repro.experiments.report`` drives them
all.  The shared machinery lives in :mod:`repro.experiments.runner`
(one simulation) and :mod:`repro.experiments.harness` (sweep fan-out
across a worker pool with on-disk result caching).
"""

from repro.experiments.harness import (
    HarnessSettings,
    SweepOutcome,
    SweepTask,
    configure,
    run_sweep,
)
from repro.experiments.runner import (
    RunResult,
    SpeedupPoint,
    measure_speedup,
    run_conventional,
    run_radram,
)

__all__ = [
    "HarnessSettings",
    "RunResult",
    "SpeedupPoint",
    "SweepOutcome",
    "SweepTask",
    "configure",
    "measure_speedup",
    "run_conventional",
    "run_radram",
    "run_sweep",
]
