"""Experiment harnesses regenerating every table and figure.

Each ``figN_*``/``tableN_*`` module exposes a ``run()`` returning rows
and a ``format_*`` renderer; ``repro.experiments.report`` drives them
all.  The shared machinery lives in :mod:`repro.experiments.runner`.
"""

from repro.experiments.runner import (
    RunResult,
    SpeedupPoint,
    measure_speedup,
    run_conventional,
    run_radram,
)

__all__ = [
    "RunResult",
    "SpeedupPoint",
    "measure_speedup",
    "run_conventional",
    "run_radram",
]
