"""Parallel sweep execution with content-addressed result caching.

Every figure/table of the evaluation is a *sweep*: the same
simulation, repeated over a grid of (application, problem size,
machine parameters).  Re-simulating each point serially and from
scratch on every invocation makes the report and the benchmark suite
the slowest path in the repository.  This module treats experiment
execution as a small batch system instead:

``SweepTask``
    One pure, hashable point of a sweep — application name, problem
    size, full :class:`~repro.sim.config.MachineConfig` /
    :class:`~repro.radram.config.RADramConfig` (``None`` = reference),
    seed, and a *mode* selecting what is measured.  A task captures
    everything the simulation depends on, so two equal tasks always
    produce bit-identical results.

``run_sweep``
    Executes a list of tasks, preserving input order.  Identical tasks
    are computed once; with ``jobs > 1`` the distinct tasks fan out
    across a process pool (each worker rebuilds the whole machine from
    the task, and per-task RNG seeding is derived from the task hash,
    so pooled and in-process execution are bit-identical).  Execution
    is *resilient*: a raising task records a per-task failure instead
    of aborting the sweep, crashed or hung workers are retried with
    exponential backoff (``retries`` / ``task_timeout_s`` settings),
    and a sweep with unrecoverable tasks still returns — partial, with
    the failures itemized in ``SweepOutcome.notes()``.  Completed
    tasks are memoized in an on-disk cache.

    The execution core (cache lookup, duplicate folding, pool fan-out,
    retry/timeout machinery) lives in
    :class:`repro.serve.scheduler.TaskScheduler`; ``run_sweep`` wraps
    it with the process-wide settings and counters.  The ``repro
    serve`` server drives the identical scheduler, so service and CLI
    share one execution policy.  Three context-local scopes let a
    caller (a server worker thread, a test) adjust one sweep without
    touching the process-global settings: :func:`settings_scope`,
    :func:`coalesce_scope` (install a
    :class:`~repro.serve.scheduler.SingleFlight` table) and
    :func:`progress_scope` (observe per-task completions).

``ResultCache``
    A content-addressed JSON store under ``.repro_cache/`` (or
    ``$REPRO_CACHE_DIR``).  Keys are SHA-256 hashes over the canonical
    task encoding, the cache schema version, and ``repro.__version__``;
    corrupt or truncated entries are dropped and recomputed.  The
    ``--no-cache`` CLI flag (→ :func:`configure`) bypasses it.

Experiment modules declare their sweeps as task lists and read results
back positionally; cache-hit counters and simulation wall-time are
surfaced in ``ExperimentResult.notes`` (prefixed ``harness:`` so
regression tooling can strip the volatile lines).
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import hashlib
import itertools
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._version import __version__
from repro.apps.base import PHASE_ACTIVATION, PHASE_POST
from repro.radram.config import RADramConfig
from repro.sim.config import MachineConfig
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: Bump when the meaning of cached values changes (invalidates entries).
CACHE_SCHEMA = 3  # bumped: workload params + generator tag join the key

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment override for the cache location (used by the test suite
#: to keep sweep caches isolated per session).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Task modes.
MODE_SPEEDUP = "speedup"  # conventional vs RADram at one size
MODE_CONSTANTS = "constants"  # Table 4 calibration (T_A/T_P/T_C)
MODE_FAULTS = "faults"  # speedup under fault injection + fault counters

_MODES = (MODE_SPEEDUP, MODE_CONSTANTS, MODE_FAULTS)


# ----------------------------------------------------------------------
# Tasks


#: Accepted forms of ``SweepTask.workload_params`` before normalization.
ParamsLike = Union[Mapping[str, float], Sequence[Tuple[str, float]], None]


@dataclass(frozen=True)
class SweepTask:
    """One pure, hashable sweep point.

    ``machine_config``/``radram_config`` of ``None`` mean the Table 1
    reference configuration (kept as ``None`` — not expanded — so the
    common case hashes compactly and reference-default drift is caught
    by the ``repro.__version__`` component of the key).

    ``workload_params`` carries the generator axis values of a
    parametric workload (:mod:`repro.workloads`) as a sorted tuple of
    ``(axis, value)`` pairs (mappings are normalized); ``generator``
    is the producing generator's version tag (``"database/v1"``).
    Both are part of :meth:`key`, so a cached result from the fixed
    datasets (``None``) can never be served for a generated workload,
    nor across generator versions.
    """

    app_name: str
    n_pages: float
    mode: str = MODE_SPEEDUP
    page_bytes: int = DEFAULT_PAGE_BYTES
    seed: int = 0
    cap_pages: Optional[float] = None
    machine_config: Optional[MachineConfig] = None
    radram_config: Optional[RADramConfig] = None
    workload_params: ParamsLike = None
    generator: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if self.n_pages <= 0:
            raise ValueError("n_pages must be positive")
        if self.workload_params is not None:
            items = (
                self.workload_params.items()
                if isinstance(self.workload_params, Mapping)
                else self.workload_params
            )
            normalized = tuple(
                sorted((str(k), float(v)) for k, v in items)
            )
            object.__setattr__(self, "workload_params", normalized)

    def params_dict(self) -> Optional[Dict[str, float]]:
        """The workload axis values as a mapping (None = fixed data)."""
        if self.workload_params is None:
            return None
        return dict(self.workload_params)

    def canonical(self) -> Dict[str, object]:
        """JSON-ready encoding; equal tasks encode identically."""
        encoded = dataclasses.asdict(self)
        return encoded

    def key(self) -> str:
        """Stable content hash identifying this task's result."""
        payload = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "task": self.canonical(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Sentinel: "use the runner's default extrapolation cap".
_DEFAULT_CAP = object()


def speedup_task(
    app_name: str,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
    cap_pages: object = _DEFAULT_CAP,
    machine_config: Optional[MachineConfig] = None,
    radram_config: Optional[RADramConfig] = None,
    params: ParamsLike = None,
    generator: Optional[str] = None,
) -> SweepTask:
    """A conventional-vs-RADram measurement at one problem size."""
    from repro.experiments.runner import DEFAULT_CAP_PAGES

    if cap_pages is _DEFAULT_CAP:
        cap_pages = DEFAULT_CAP_PAGES
    return SweepTask(
        app_name=app_name,
        n_pages=n_pages,
        mode=MODE_SPEEDUP,
        page_bytes=page_bytes,
        seed=seed,
        cap_pages=cap_pages,
        machine_config=machine_config,
        radram_config=radram_config,
        workload_params=params,
        generator=generator,
    )


def faults_task(
    app_name: str,
    n_pages: float,
    radram_config: RADramConfig,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
    cap_pages: object = _DEFAULT_CAP,
) -> SweepTask:
    """A speedup measurement under fault injection.

    ``radram_config`` must carry a :class:`repro.faults.models.FaultConfig`
    (``RADramConfig.with_faults``); the task's values gain the
    ``faults.*`` counters next to the usual speedup keys.
    """
    from repro.experiments.runner import DEFAULT_CAP_PAGES

    if radram_config.faults is None:
        raise ValueError("faults_task needs a radram_config with faults set")
    if cap_pages is _DEFAULT_CAP:
        cap_pages = DEFAULT_CAP_PAGES
    return SweepTask(
        app_name=app_name,
        n_pages=n_pages,
        mode=MODE_FAULTS,
        page_bytes=page_bytes,
        seed=seed,
        cap_pages=cap_pages,
        radram_config=radram_config,
    )


def constants_task(
    app_name: str,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
    params: ParamsLike = None,
    generator: Optional[str] = None,
) -> SweepTask:
    """A Table 4 calibration run (T_A/T_P/T_C; conventional un-capped)."""
    return SweepTask(
        app_name=app_name,
        n_pages=n_pages,
        mode=MODE_CONSTANTS,
        page_bytes=page_bytes,
        seed=seed,
        cap_pages=None,
        workload_params=params,
        generator=generator,
    )


# ----------------------------------------------------------------------
# Execution


def _seed_rngs(task: SweepTask) -> None:
    """Seed global RNGs deterministically from the task identity.

    Workloads take explicit seeds, but seeding the global generators
    too guarantees pooled workers and in-process execution see the same
    RNG state even if some code path consults ``random``/``numpy``.
    """
    derived = int(task.key()[:16], 16) ^ task.seed
    random.seed(derived)
    try:
        import numpy as np

        np.random.seed(derived % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass


#: Key prefix under which trace summaries land in task values.
TRACE_KEY_PREFIX = "trace."


def execute_task(task: SweepTask, trace_summary: bool = False) -> Dict[str, float]:
    """Run one task's simulations; returns a flat, JSON-able mapping.

    With ``trace_summary`` the simulations execute under
    :func:`repro.trace.events.tracing` and the flattened
    :func:`repro.trace.export.summarize` of the captured events is
    merged into the values under ``trace.``-prefixed keys — so cached
    sweep results carry a trace digest alongside the measurements.
    """
    if trace_summary:
        from repro.trace import events as trace_events
        from repro.trace import export as trace_export

        with trace_events.tracing() as tracer:
            values = execute_task(task, trace_summary=False)
        summary = trace_export.summarize(tracer.events())
        values.update(
            {f"{TRACE_KEY_PREFIX}{k}": float(v) for k, v in summary.items()}
        )
        return values

    from repro.apps.registry import get_app
    from repro.experiments.runner import (
        measure_speedup,
        run_conventional,
        run_radram,
    )
    from repro.faults import chaos

    chaos.maybe_injure(task.key(), task.app_name)
    _seed_rngs(task)
    app = get_app(task.app_name)
    params = task.params_dict()
    if task.mode == MODE_FAULTS:
        conv = run_conventional(
            app,
            task.n_pages,
            page_bytes=task.page_bytes,
            machine_config=task.machine_config,
            seed=task.seed,
            cap_pages=task.cap_pages,
            params=params,
        )
        rad = run_radram(
            app,
            task.n_pages,
            page_bytes=task.page_bytes,
            machine_config=task.machine_config,
            radram_config=task.radram_config,
            seed=task.seed,
            params=params,
        )
        values = {
            "conventional_ns": conv.total_ns,
            "radram_ns": rad.total_ns,
            "speedup": conv.total_ns / rad.total_ns,
            "stall_fraction": rad.stall_fraction,
        }
        values.update(
            {f"faults.{name}": v for name, v in rad.fault_counters.items()}
        )
        return values
    if task.mode == MODE_SPEEDUP:
        point = measure_speedup(
            app,
            task.n_pages,
            page_bytes=task.page_bytes,
            machine_config=task.machine_config,
            radram_config=task.radram_config,
            seed=task.seed,
            cap_pages=task.cap_pages,
            params=params,
        )
        return {
            "conventional_ns": point.conventional_ns,
            "radram_ns": point.radram_ns,
            "speedup": point.speedup,
            "stall_fraction": point.stall_fraction,
        }
    # MODE_CONSTANTS — Section 7.4.2 calibration at a medium size.
    rad = run_radram(
        app,
        task.n_pages,
        page_bytes=task.page_bytes,
        machine_config=task.machine_config,
        radram_config=task.radram_config,
        seed=task.seed,
        params=params,
    )
    conv = run_conventional(
        app,
        task.n_pages,
        page_bytes=task.page_bytes,
        machine_config=task.machine_config,
        seed=task.seed,
        cap_pages=task.cap_pages,
        params=params,
    )
    activations = max(1, rad.stats.activations)
    return {
        "t_a_us": rad.stats.phase_mean_ns(PHASE_ACTIVATION) / 1e3,
        "t_p_us": rad.stats.phase_mean_ns(PHASE_POST, exclude_wait=True) / 1e3,
        "t_c_us": rad.mean_page_busy_ns / 1e3,
        "t_conv_per_activation_us": conv.total_ns / activations / 1e3,
        "activations": float(rad.stats.activations),
    }


@dataclass
class TaskResult:
    """One completed (or failed) task: values plus execution metadata."""

    task: SweepTask
    values: Dict[str, float]
    wall_s: float
    cached: bool = False
    #: how many execution attempts this result took (1 = first try).
    attempts: int = 1
    #: set when the task failed every attempt; ``values`` is then empty.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __getitem__(self, name: str) -> float:
        if self.error is not None:
            raise KeyError(
                f"task {self.task.app_name}@{self.task.n_pages:g} failed: "
                f"{self.error}"
            )
        return self.values[name]


def _timed_execute(task: SweepTask, trace_summary: bool = False) -> TaskResult:
    t0 = time.perf_counter()
    values = execute_task(task, trace_summary=trace_summary)
    return TaskResult(task=task, values=values, wall_s=time.perf_counter() - t0)


def _pool_entry(
    task: SweepTask, trace_summary: bool = False
) -> Tuple[Dict[str, float], float]:
    """Top-level worker entry point (must be picklable).

    ``trace_summary`` is threaded explicitly (via ``functools.partial``)
    because pool workers do not inherit the parent's process-global
    harness settings.
    """
    t0 = time.perf_counter()
    values = execute_task(task, trace_summary=trace_summary)
    return values, time.perf_counter() - t0


# ----------------------------------------------------------------------
# On-disk cache


class ResultCache:
    """Content-addressed JSON store of completed task results."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.last_journal_prune = {"journals": 0, "tmp": 0, "leased": 0}

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, task: SweepTask) -> Optional[TaskResult]:
        """The memoized result, or None (corrupt entries are dropped)."""
        path = self.path_for(task.key())
        try:
            payload = json.loads(path.read_text())
            values = payload["values"]
            wall_s = float(payload["wall_s"])
            if not isinstance(values, dict) or not values:
                raise ValueError("empty or malformed values")
            values = {str(k): float(v) for k, v in values.items()}
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt-entry recovery: discard and let the caller re-run.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return TaskResult(task=task, values=values, wall_s=wall_s, cached=True)

    def _claim_tmp(self, path: Path) -> Tuple[int, Path]:
        """Open a tmp file next to ``path`` that no other writer holds.

        Names combine pid and a process-local counter and are opened
        ``O_EXCL``, so two stores of the *same key* — concurrent
        threads of one server, or independent CLI processes (even
        across pid reuse) — can never share a tmp file and truncate
        each other mid-write.  Tmp names keep the ``.tmp.*`` suffix
        form, invisible to :meth:`entries`' ``*.json`` glob.
        """
        flags = os.O_WRONLY | os.O_CREAT | os.O_EXCL
        while True:
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{next(self._tmp_counter)}"
            )
            try:
                return os.open(tmp, flags, 0o644), tmp
            except FileExistsError:
                continue  # stale leftover from a killed writer: pick another

    #: Process-local uniquifier for tmp names (shared by all instances;
    #: combined with the pid it makes every claimed tmp name unique).
    _tmp_counter = itertools.count()

    def store(self, result: TaskResult) -> None:
        """Persist one result atomically and durably.

        Crash safety: the payload is written to a sibling tmp file
        (never matched by :meth:`entries`' ``*.json`` glob), fsynced,
        then :func:`os.replace`\\ d over the final name — a reader
        either sees no entry or a complete one, never a torn write,
        even when the writer is killed mid-store.  Concurrency safety:
        every writer claims its *own* ``O_EXCL`` tmp name
        (:meth:`_claim_tmp`), so racing stores of one key each rename a
        complete payload — last writer wins, bit-identical content
        either way.  Failed tasks are never stored.
        """
        if result.error is not None:
            return
        key = result.task.key()
        path = self.path_for(key)
        payload = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "task": result.task.canonical(),
            "values": result.values,
            "wall_s": result.wall_s,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = self._claim_tmp(path)
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(payload, sort_keys=True, indent=1))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            # Make the rename itself durable (directory metadata).
            try:
                dir_fd = os.open(path.parent, os.O_RDONLY)
            except OSError:
                pass  # platform without directory fds
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        except OSError:
            # A read-only cache directory must not fail the sweep.
            pass

    def entries(self) -> List[Path]:
        """All cache entry files currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def journal_store(self):
        """The serve job-journal store sharing this cache root.

        Job journals (:mod:`repro.serve.journal`) live under
        ``<cache>/jobs/`` so the cache CLI and ``/cache/stats`` cover
        the serve layer's durable state too.
        """
        from repro.serve.journal import JournalStore

        return JournalStore(self.root / "jobs")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Cache introspection: entry count, bytes, schema mix, age.

        Shared by ``python -m repro cache stats`` and the server's
        ``GET /cache/stats`` endpoint.  Schemas are read from each
        entry's payload (``"corrupt"`` buckets unreadable files);
        timestamps are entry mtimes in epoch seconds.
        """
        entries = self.entries()
        total_bytes = 0
        by_schema: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path in entries:
            try:
                st = path.stat()
                payload = json.loads(path.read_text())
                schema = str(payload.get("schema", "unknown"))
            except (OSError, ValueError):
                schema = "corrupt"
                try:
                    st = path.stat()
                except OSError:
                    continue
            total_bytes += st.st_size
            by_schema[schema] = by_schema.get(schema, 0) + 1
            oldest = st.st_mtime if oldest is None else min(oldest, st.st_mtime)
            newest = st.st_mtime if newest is None else max(newest, st.st_mtime)
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "total_bytes": total_bytes,
            "by_schema": dict(sorted(by_schema.items())),
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "jobs": self.journal_store().stats(),
        }

    #: Journal counts removed by the most recent :meth:`prune` call
    #: (``{"journals": n, "tmp": n, "leased": skipped}``) — surfaced by
    #: the cache CLI.
    last_journal_prune: Dict[str, int]

    def prune(self, days: float) -> int:
        """Remove entries older than ``days`` (by mtime); returns count.

        Leftover ``*.tmp.*`` files from killed writers past the cutoff
        are swept as well (they never count toward the return value —
        they were never entries), and so are *completed* job journals
        and orphaned journal tmp litter under ``<cache>/jobs/``
        (counts in :attr:`last_journal_prune`; incomplete journals are
        recoverable work and are never pruned).
        """
        if days < 0:
            raise ValueError("days cannot be negative")
        cutoff = time.time() - days * 86400.0
        removed = 0
        for path in self.entries():
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for tmp in self.root.glob("*/*.tmp.*"):
                try:
                    if tmp.stat().st_mtime <= cutoff:
                        tmp.unlink()
                except OSError:
                    pass
        self.last_journal_prune = self.journal_store().prune(days)
        return removed


# ----------------------------------------------------------------------
# Settings (process-wide defaults, set from the CLI)


@dataclass
class HarnessSettings:
    """Execution policy for :func:`run_sweep`."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: Optional[str] = None  # None -> $REPRO_CACHE_DIR or default
    trace_summary: bool = False  # attach trace.* digests to task values
    #: per-task wall-clock deadline; None = wait forever.  Only pooled
    #: execution (jobs > 1) can preempt a hung simulation.
    task_timeout_s: Optional[float] = None
    #: extra attempts after a crashed/hung/raising task (0 = one try).
    retries: int = 2
    #: base delay between retry rounds; doubles each round.
    retry_backoff_s: float = 0.25

    def resolve_cache_dir(self) -> Path:
        if self.cache_dir is not None:
            return Path(self.cache_dir)
        return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


_settings = HarnessSettings()


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    trace_summary: Optional[bool] = None,
    task_timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    retry_backoff_s: Optional[float] = None,
) -> HarnessSettings:
    """Update the process-wide sweep settings (CLI entry point)."""
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _settings.jobs = jobs
    if use_cache is not None:
        _settings.use_cache = use_cache
    if cache_dir is not None:
        _settings.cache_dir = cache_dir
    if trace_summary is not None:
        _settings.trace_summary = trace_summary
    if task_timeout_s is not None:
        if task_timeout_s <= 0:
            raise ValueError("task timeout must be positive")
        _settings.task_timeout_s = task_timeout_s
    if retries is not None:
        if retries < 0:
            raise ValueError("retries cannot be negative")
        _settings.retries = retries
    if retry_backoff_s is not None:
        if retry_backoff_s < 0:
            raise ValueError("retry backoff cannot be negative")
        _settings.retry_backoff_s = retry_backoff_s
    return _settings


#: Context-local override of the process-wide settings.  Each thread
#: (and asyncio task) starts from an empty context, so a server worker
#: scoping its own settings never races another worker or the CLI.
_settings_override: "contextvars.ContextVar[Optional[HarnessSettings]]" = (
    contextvars.ContextVar("repro_harness_settings", default=None)
)

#: Context-local coalescing executor for distinct uncached tasks
#: (``(tasks, scheduler) -> List[TaskResult]``; see
#: :class:`repro.serve.scheduler.SingleFlight`).
_unique_executor: "contextvars.ContextVar[Optional[Callable]]" = (
    contextvars.ContextVar("repro_harness_unique_executor", default=None)
)

#: Context-local per-task progress observer (``(TaskResult) -> None``).
_progress_callback: "contextvars.ContextVar[Optional[Callable]]" = (
    contextvars.ContextVar("repro_harness_progress", default=None)
)


def current_settings() -> HarnessSettings:
    """A copy of the effective settings (context override or globals)."""
    override = _settings_override.get()
    return dataclasses.replace(override if override is not None else _settings)


@contextlib.contextmanager
def settings_scope(settings: HarnessSettings):
    """Pin :func:`current_settings` to ``settings`` within this context.

    Context-local (per thread / asyncio task): the server uses it to
    give each job its own execution policy without mutating the
    process-wide CLI settings.
    """
    token = _settings_override.set(settings)
    try:
        yield settings
    finally:
        _settings_override.reset(token)


@contextlib.contextmanager
def coalesce_scope(executor: Callable):
    """Route this context's sweeps through a coalescing executor.

    ``executor`` receives ``(distinct_uncached_tasks, scheduler)`` and
    returns their results in order — typically a shared
    :class:`repro.serve.scheduler.SingleFlight` so identical in-flight
    work across concurrent sweeps executes exactly once.
    """
    token = _unique_executor.set(executor)
    try:
        yield executor
    finally:
        _unique_executor.reset(token)


@contextlib.contextmanager
def progress_scope(callback: Callable):
    """Observe every finished task of this context's sweeps.

    ``callback(result: TaskResult)`` fires once per task position
    resolved (cache hits included).  Exceptions it raises are swallowed
    — observers must never fail a sweep.
    """
    token = _progress_callback.set(callback)
    try:
        yield callback
    finally:
        _progress_callback.reset(token)


def reset_settings() -> None:
    """Restore the default settings (test isolation)."""
    global _settings
    _settings = HarnessSettings()


# ----------------------------------------------------------------------
# Sweep execution


@dataclass
class SweepStats:
    """Cache-hit counters and wall-time for one sweep."""

    tasks: int = 0
    unique: int = 0
    hits: int = 0
    misses: int = 0
    sim_wall_s: float = 0.0
    #: tasks that failed every attempt (their results carry ``error``).
    failed: int = 0
    #: extra attempts spent on crashed/hung/raising tasks.
    retried: int = 0


@dataclass
class SweepOutcome:
    """Ordered results of one :func:`run_sweep` call."""

    results: List[TaskResult]
    stats: SweepStats
    settings: HarnessSettings = field(default_factory=HarnessSettings)

    def __iter__(self) -> Iterator[TaskResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> TaskResult:
        return self.results[index]

    def notes(self) -> List[str]:
        """Human-readable sweep accounting for ``ExperimentResult.notes``.

        Prefixed ``harness:`` — the wall-time line is volatile, so
        golden-output comparisons strip lines with this prefix.
        """
        s = self.stats
        lines = [
            f"harness: {s.tasks} tasks ({s.misses} simulated, {s.hits} cached), "
            f"jobs={self.settings.jobs}",
            f"harness: simulation wall time {s.sim_wall_s:.2f}s",
        ]
        if s.retried:
            lines.append(f"harness: {s.retried} attempt(s) retried")
        if s.failed:
            lines.append(f"harness: {s.failed} task(s) FAILED (partial sweep)")
            # Duplicate tasks share one TaskResult: report each failure once.
            unique_failures = {id(r): r for r in self.results if r.error is not None}
            for r in unique_failures.values():
                lines.append(
                    f"harness: failed {r.task.app_name}@{r.task.n_pages:g} "
                    f"[{r.task.mode}] after {r.attempts} attempt(s): {r.error}"
                )
        return lines

    @property
    def complete(self) -> bool:
        """Whether every task produced values (no failures)."""
        return self.stats.failed == 0

    def failed_results(self) -> List[TaskResult]:
        return [r for r in self.results if r.error is not None]


#: Stats of the most recent sweep (introspection for tests/CLI).
last_sweep_stats: Optional[SweepStats] = None

#: Failed tasks accumulated across *all* sweeps since the last
#: :func:`reset_failed_tasks` — a report runs many sweeps and
#: ``last_sweep_stats`` only remembers the final one, so the CLI exit
#: code reads this cumulative counter instead.
total_failed_tasks: int = 0


def reset_failed_tasks() -> None:
    """Zero the cumulative failed-task counter (start of a report)."""
    global total_failed_tasks
    total_failed_tasks = 0


def run_sweep(
    tasks: Sequence[SweepTask],
    settings: Optional[HarnessSettings] = None,
) -> SweepOutcome:
    """Execute ``tasks`` (cache → pool → in-process), preserving order.

    Results are returned positionally: ``outcome[i]`` corresponds to
    ``tasks[i]``.  Duplicate tasks are simulated once and fanned back
    out to every position that requested them.

    This is a thin wrapper over
    :class:`repro.serve.scheduler.TaskScheduler` — it resolves the
    effective settings/cache and the context-local coalescing and
    progress hooks, delegates, and maintains the process-wide
    ``last_sweep_stats`` / ``total_failed_tasks`` counters.
    """
    from repro.serve.scheduler import TaskScheduler

    global last_sweep_stats, total_failed_tasks
    settings = settings if settings is not None else current_settings()
    cache = ResultCache(settings.resolve_cache_dir()) if settings.use_cache else None
    scheduler = TaskScheduler(
        settings,
        cache=cache,
        unique_executor=_unique_executor.get(),
        on_task_done=_progress_callback.get(),
    )
    outcome = scheduler.run_sweep(tasks)
    last_sweep_stats = outcome.stats
    total_failed_tasks += outcome.stats.failed
    return outcome
