"""Parallel sweep execution with content-addressed result caching.

Every figure/table of the evaluation is a *sweep*: the same
simulation, repeated over a grid of (application, problem size,
machine parameters).  Re-simulating each point serially and from
scratch on every invocation makes the report and the benchmark suite
the slowest path in the repository.  This module treats experiment
execution as a small batch system instead:

``SweepTask``
    One pure, hashable point of a sweep — application name, problem
    size, full :class:`~repro.sim.config.MachineConfig` /
    :class:`~repro.radram.config.RADramConfig` (``None`` = reference),
    seed, and a *mode* selecting what is measured.  A task captures
    everything the simulation depends on, so two equal tasks always
    produce bit-identical results.

``run_sweep``
    Executes a list of tasks, preserving input order.  Identical tasks
    are computed once; with ``jobs > 1`` the distinct tasks fan out
    across a process pool (each worker rebuilds the whole machine from
    the task, and per-task RNG seeding is derived from the task hash,
    so pooled and in-process execution are bit-identical).  Execution
    is *resilient*: a raising task records a per-task failure instead
    of aborting the sweep, crashed or hung workers are retried with
    exponential backoff (``retries`` / ``task_timeout_s`` settings),
    and a sweep with unrecoverable tasks still returns — partial, with
    the failures itemized in ``SweepOutcome.notes()``.  Completed
    tasks are memoized in an on-disk cache.

``ResultCache``
    A content-addressed JSON store under ``.repro_cache/`` (or
    ``$REPRO_CACHE_DIR``).  Keys are SHA-256 hashes over the canonical
    task encoding, the cache schema version, and ``repro.__version__``;
    corrupt or truncated entries are dropped and recomputed.  The
    ``--no-cache`` CLI flag (→ :func:`configure`) bypasses it.

Experiment modules declare their sweeps as task lists and read results
back positionally; cache-hit counters and simulation wall-time are
surfaced in ``ExperimentResult.notes`` (prefixed ``harness:`` so
regression tooling can strip the volatile lines).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro._version import __version__
from repro.apps.base import PHASE_ACTIVATION, PHASE_POST
from repro.radram.config import RADramConfig
from repro.sim.config import MachineConfig
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: Bump when the meaning of cached values changes (invalidates entries).
CACHE_SCHEMA = 3  # bumped: workload params + generator tag join the key

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment override for the cache location (used by the test suite
#: to keep sweep caches isolated per session).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Task modes.
MODE_SPEEDUP = "speedup"  # conventional vs RADram at one size
MODE_CONSTANTS = "constants"  # Table 4 calibration (T_A/T_P/T_C)
MODE_FAULTS = "faults"  # speedup under fault injection + fault counters

_MODES = (MODE_SPEEDUP, MODE_CONSTANTS, MODE_FAULTS)


# ----------------------------------------------------------------------
# Tasks


#: Accepted forms of ``SweepTask.workload_params`` before normalization.
ParamsLike = Union[Mapping[str, float], Sequence[Tuple[str, float]], None]


@dataclass(frozen=True)
class SweepTask:
    """One pure, hashable sweep point.

    ``machine_config``/``radram_config`` of ``None`` mean the Table 1
    reference configuration (kept as ``None`` — not expanded — so the
    common case hashes compactly and reference-default drift is caught
    by the ``repro.__version__`` component of the key).

    ``workload_params`` carries the generator axis values of a
    parametric workload (:mod:`repro.workloads`) as a sorted tuple of
    ``(axis, value)`` pairs (mappings are normalized); ``generator``
    is the producing generator's version tag (``"database/v1"``).
    Both are part of :meth:`key`, so a cached result from the fixed
    datasets (``None``) can never be served for a generated workload,
    nor across generator versions.
    """

    app_name: str
    n_pages: float
    mode: str = MODE_SPEEDUP
    page_bytes: int = DEFAULT_PAGE_BYTES
    seed: int = 0
    cap_pages: Optional[float] = None
    machine_config: Optional[MachineConfig] = None
    radram_config: Optional[RADramConfig] = None
    workload_params: ParamsLike = None
    generator: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if self.n_pages <= 0:
            raise ValueError("n_pages must be positive")
        if self.workload_params is not None:
            items = (
                self.workload_params.items()
                if isinstance(self.workload_params, Mapping)
                else self.workload_params
            )
            normalized = tuple(
                sorted((str(k), float(v)) for k, v in items)
            )
            object.__setattr__(self, "workload_params", normalized)

    def params_dict(self) -> Optional[Dict[str, float]]:
        """The workload axis values as a mapping (None = fixed data)."""
        if self.workload_params is None:
            return None
        return dict(self.workload_params)

    def canonical(self) -> Dict[str, object]:
        """JSON-ready encoding; equal tasks encode identically."""
        encoded = dataclasses.asdict(self)
        return encoded

    def key(self) -> str:
        """Stable content hash identifying this task's result."""
        payload = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "task": self.canonical(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Sentinel: "use the runner's default extrapolation cap".
_DEFAULT_CAP = object()


def speedup_task(
    app_name: str,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
    cap_pages: object = _DEFAULT_CAP,
    machine_config: Optional[MachineConfig] = None,
    radram_config: Optional[RADramConfig] = None,
    params: ParamsLike = None,
    generator: Optional[str] = None,
) -> SweepTask:
    """A conventional-vs-RADram measurement at one problem size."""
    from repro.experiments.runner import DEFAULT_CAP_PAGES

    if cap_pages is _DEFAULT_CAP:
        cap_pages = DEFAULT_CAP_PAGES
    return SweepTask(
        app_name=app_name,
        n_pages=n_pages,
        mode=MODE_SPEEDUP,
        page_bytes=page_bytes,
        seed=seed,
        cap_pages=cap_pages,
        machine_config=machine_config,
        radram_config=radram_config,
        workload_params=params,
        generator=generator,
    )


def faults_task(
    app_name: str,
    n_pages: float,
    radram_config: RADramConfig,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
    cap_pages: object = _DEFAULT_CAP,
) -> SweepTask:
    """A speedup measurement under fault injection.

    ``radram_config`` must carry a :class:`repro.faults.models.FaultConfig`
    (``RADramConfig.with_faults``); the task's values gain the
    ``faults.*`` counters next to the usual speedup keys.
    """
    from repro.experiments.runner import DEFAULT_CAP_PAGES

    if radram_config.faults is None:
        raise ValueError("faults_task needs a radram_config with faults set")
    if cap_pages is _DEFAULT_CAP:
        cap_pages = DEFAULT_CAP_PAGES
    return SweepTask(
        app_name=app_name,
        n_pages=n_pages,
        mode=MODE_FAULTS,
        page_bytes=page_bytes,
        seed=seed,
        cap_pages=cap_pages,
        radram_config=radram_config,
    )


def constants_task(
    app_name: str,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
    params: ParamsLike = None,
    generator: Optional[str] = None,
) -> SweepTask:
    """A Table 4 calibration run (T_A/T_P/T_C; conventional un-capped)."""
    return SweepTask(
        app_name=app_name,
        n_pages=n_pages,
        mode=MODE_CONSTANTS,
        page_bytes=page_bytes,
        seed=seed,
        cap_pages=None,
        workload_params=params,
        generator=generator,
    )


# ----------------------------------------------------------------------
# Execution


def _seed_rngs(task: SweepTask) -> None:
    """Seed global RNGs deterministically from the task identity.

    Workloads take explicit seeds, but seeding the global generators
    too guarantees pooled workers and in-process execution see the same
    RNG state even if some code path consults ``random``/``numpy``.
    """
    derived = int(task.key()[:16], 16) ^ task.seed
    random.seed(derived)
    try:
        import numpy as np

        np.random.seed(derived % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass


#: Key prefix under which trace summaries land in task values.
TRACE_KEY_PREFIX = "trace."


def execute_task(task: SweepTask, trace_summary: bool = False) -> Dict[str, float]:
    """Run one task's simulations; returns a flat, JSON-able mapping.

    With ``trace_summary`` the simulations execute under
    :func:`repro.trace.events.tracing` and the flattened
    :func:`repro.trace.export.summarize` of the captured events is
    merged into the values under ``trace.``-prefixed keys — so cached
    sweep results carry a trace digest alongside the measurements.
    """
    if trace_summary:
        from repro.trace import events as trace_events
        from repro.trace import export as trace_export

        with trace_events.tracing() as tracer:
            values = execute_task(task, trace_summary=False)
        summary = trace_export.summarize(tracer.events())
        values.update(
            {f"{TRACE_KEY_PREFIX}{k}": float(v) for k, v in summary.items()}
        )
        return values

    from repro.apps.registry import get_app
    from repro.experiments.runner import (
        measure_speedup,
        run_conventional,
        run_radram,
    )
    from repro.faults import chaos

    chaos.maybe_injure(task.key(), task.app_name)
    _seed_rngs(task)
    app = get_app(task.app_name)
    params = task.params_dict()
    if task.mode == MODE_FAULTS:
        conv = run_conventional(
            app,
            task.n_pages,
            page_bytes=task.page_bytes,
            machine_config=task.machine_config,
            seed=task.seed,
            cap_pages=task.cap_pages,
            params=params,
        )
        rad = run_radram(
            app,
            task.n_pages,
            page_bytes=task.page_bytes,
            machine_config=task.machine_config,
            radram_config=task.radram_config,
            seed=task.seed,
            params=params,
        )
        values = {
            "conventional_ns": conv.total_ns,
            "radram_ns": rad.total_ns,
            "speedup": conv.total_ns / rad.total_ns,
            "stall_fraction": rad.stall_fraction,
        }
        values.update(
            {f"faults.{name}": v for name, v in rad.fault_counters.items()}
        )
        return values
    if task.mode == MODE_SPEEDUP:
        point = measure_speedup(
            app,
            task.n_pages,
            page_bytes=task.page_bytes,
            machine_config=task.machine_config,
            radram_config=task.radram_config,
            seed=task.seed,
            cap_pages=task.cap_pages,
            params=params,
        )
        return {
            "conventional_ns": point.conventional_ns,
            "radram_ns": point.radram_ns,
            "speedup": point.speedup,
            "stall_fraction": point.stall_fraction,
        }
    # MODE_CONSTANTS — Section 7.4.2 calibration at a medium size.
    rad = run_radram(
        app,
        task.n_pages,
        page_bytes=task.page_bytes,
        machine_config=task.machine_config,
        radram_config=task.radram_config,
        seed=task.seed,
        params=params,
    )
    conv = run_conventional(
        app,
        task.n_pages,
        page_bytes=task.page_bytes,
        machine_config=task.machine_config,
        seed=task.seed,
        cap_pages=task.cap_pages,
        params=params,
    )
    activations = max(1, rad.stats.activations)
    return {
        "t_a_us": rad.stats.phase_mean_ns(PHASE_ACTIVATION) / 1e3,
        "t_p_us": rad.stats.phase_mean_ns(PHASE_POST, exclude_wait=True) / 1e3,
        "t_c_us": rad.mean_page_busy_ns / 1e3,
        "t_conv_per_activation_us": conv.total_ns / activations / 1e3,
        "activations": float(rad.stats.activations),
    }


@dataclass
class TaskResult:
    """One completed (or failed) task: values plus execution metadata."""

    task: SweepTask
    values: Dict[str, float]
    wall_s: float
    cached: bool = False
    #: how many execution attempts this result took (1 = first try).
    attempts: int = 1
    #: set when the task failed every attempt; ``values`` is then empty.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __getitem__(self, name: str) -> float:
        if self.error is not None:
            raise KeyError(
                f"task {self.task.app_name}@{self.task.n_pages:g} failed: "
                f"{self.error}"
            )
        return self.values[name]


def _timed_execute(task: SweepTask, trace_summary: bool = False) -> TaskResult:
    t0 = time.perf_counter()
    values = execute_task(task, trace_summary=trace_summary)
    return TaskResult(task=task, values=values, wall_s=time.perf_counter() - t0)


def _pool_entry(
    task: SweepTask, trace_summary: bool = False
) -> Tuple[Dict[str, float], float]:
    """Top-level worker entry point (must be picklable).

    ``trace_summary`` is threaded explicitly (via ``functools.partial``)
    because pool workers do not inherit the parent's process-global
    harness settings.
    """
    t0 = time.perf_counter()
    values = execute_task(task, trace_summary=trace_summary)
    return values, time.perf_counter() - t0


# ----------------------------------------------------------------------
# On-disk cache


class ResultCache:
    """Content-addressed JSON store of completed task results."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, task: SweepTask) -> Optional[TaskResult]:
        """The memoized result, or None (corrupt entries are dropped)."""
        path = self.path_for(task.key())
        try:
            payload = json.loads(path.read_text())
            values = payload["values"]
            wall_s = float(payload["wall_s"])
            if not isinstance(values, dict) or not values:
                raise ValueError("empty or malformed values")
            values = {str(k): float(v) for k, v in values.items()}
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt-entry recovery: discard and let the caller re-run.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return TaskResult(task=task, values=values, wall_s=wall_s, cached=True)

    def store(self, result: TaskResult) -> None:
        """Persist one result atomically and durably.

        Crash safety: the payload is written to a sibling tmp file
        (never matched by :meth:`entries`' ``*.json`` glob), fsynced,
        then :func:`os.replace`\\ d over the final name — a reader
        either sees no entry or a complete one, never a torn write,
        even when the writer is killed mid-store.  Failed tasks are
        never stored.
        """
        if result.error is not None:
            return
        key = result.task.key()
        path = self.path_for(key)
        payload = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "task": result.task.canonical(),
            "values": result.values,
            "wall_s": result.wall_s,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "w") as fh:
                fh.write(json.dumps(payload, sort_keys=True, indent=1))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            # Make the rename itself durable (directory metadata).
            try:
                dir_fd = os.open(path.parent, os.O_RDONLY)
            except OSError:
                pass  # platform without directory fds
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        except OSError:
            # A read-only cache directory must not fail the sweep.
            pass

    def entries(self) -> List[Path]:
        """All cache entry files currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------
# Settings (process-wide defaults, set from the CLI)


@dataclass
class HarnessSettings:
    """Execution policy for :func:`run_sweep`."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: Optional[str] = None  # None -> $REPRO_CACHE_DIR or default
    trace_summary: bool = False  # attach trace.* digests to task values
    #: per-task wall-clock deadline; None = wait forever.  Only pooled
    #: execution (jobs > 1) can preempt a hung simulation.
    task_timeout_s: Optional[float] = None
    #: extra attempts after a crashed/hung/raising task (0 = one try).
    retries: int = 2
    #: base delay between retry rounds; doubles each round.
    retry_backoff_s: float = 0.25

    def resolve_cache_dir(self) -> Path:
        if self.cache_dir is not None:
            return Path(self.cache_dir)
        return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


_settings = HarnessSettings()


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    trace_summary: Optional[bool] = None,
    task_timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    retry_backoff_s: Optional[float] = None,
) -> HarnessSettings:
    """Update the process-wide sweep settings (CLI entry point)."""
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _settings.jobs = jobs
    if use_cache is not None:
        _settings.use_cache = use_cache
    if cache_dir is not None:
        _settings.cache_dir = cache_dir
    if trace_summary is not None:
        _settings.trace_summary = trace_summary
    if task_timeout_s is not None:
        if task_timeout_s <= 0:
            raise ValueError("task timeout must be positive")
        _settings.task_timeout_s = task_timeout_s
    if retries is not None:
        if retries < 0:
            raise ValueError("retries cannot be negative")
        _settings.retries = retries
    if retry_backoff_s is not None:
        if retry_backoff_s < 0:
            raise ValueError("retry backoff cannot be negative")
        _settings.retry_backoff_s = retry_backoff_s
    return _settings


def current_settings() -> HarnessSettings:
    """A copy of the process-wide settings."""
    return dataclasses.replace(_settings)


def reset_settings() -> None:
    """Restore the default settings (test isolation)."""
    global _settings
    _settings = HarnessSettings()


# ----------------------------------------------------------------------
# Sweep execution


@dataclass
class SweepStats:
    """Cache-hit counters and wall-time for one sweep."""

    tasks: int = 0
    unique: int = 0
    hits: int = 0
    misses: int = 0
    sim_wall_s: float = 0.0
    #: tasks that failed every attempt (their results carry ``error``).
    failed: int = 0
    #: extra attempts spent on crashed/hung/raising tasks.
    retried: int = 0


@dataclass
class SweepOutcome:
    """Ordered results of one :func:`run_sweep` call."""

    results: List[TaskResult]
    stats: SweepStats
    settings: HarnessSettings = field(default_factory=HarnessSettings)

    def __iter__(self) -> Iterator[TaskResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> TaskResult:
        return self.results[index]

    def notes(self) -> List[str]:
        """Human-readable sweep accounting for ``ExperimentResult.notes``.

        Prefixed ``harness:`` — the wall-time line is volatile, so
        golden-output comparisons strip lines with this prefix.
        """
        s = self.stats
        lines = [
            f"harness: {s.tasks} tasks ({s.misses} simulated, {s.hits} cached), "
            f"jobs={self.settings.jobs}",
            f"harness: simulation wall time {s.sim_wall_s:.2f}s",
        ]
        if s.retried:
            lines.append(f"harness: {s.retried} attempt(s) retried")
        if s.failed:
            lines.append(f"harness: {s.failed} task(s) FAILED (partial sweep)")
            # Duplicate tasks share one TaskResult: report each failure once.
            unique_failures = {id(r): r for r in self.results if r.error is not None}
            for r in unique_failures.values():
                lines.append(
                    f"harness: failed {r.task.app_name}@{r.task.n_pages:g} "
                    f"[{r.task.mode}] after {r.attempts} attempt(s): {r.error}"
                )
        return lines

    @property
    def complete(self) -> bool:
        """Whether every task produced values (no failures)."""
        return self.stats.failed == 0

    def failed_results(self) -> List[TaskResult]:
        return [r for r in self.results if r.error is not None]


#: Stats of the most recent sweep (introspection for tests/CLI).
last_sweep_stats: Optional[SweepStats] = None

#: Failed tasks accumulated across *all* sweeps since the last
#: :func:`reset_failed_tasks` — a report runs many sweeps and
#: ``last_sweep_stats`` only remembers the final one, so the CLI exit
#: code reads this cumulative counter instead.
total_failed_tasks: int = 0


def reset_failed_tasks() -> None:
    """Zero the cumulative failed-task counter (start of a report)."""
    global total_failed_tasks
    total_failed_tasks = 0


def run_sweep(
    tasks: Sequence[SweepTask],
    settings: Optional[HarnessSettings] = None,
) -> SweepOutcome:
    """Execute ``tasks`` (cache → pool → in-process), preserving order.

    Results are returned positionally: ``outcome[i]`` corresponds to
    ``tasks[i]``.  Duplicate tasks are simulated once and fanned back
    out to every position that requested them.
    """
    global last_sweep_stats, total_failed_tasks
    settings = settings if settings is not None else current_settings()
    cache = ResultCache(settings.resolve_cache_dir()) if settings.use_cache else None
    stats = SweepStats(tasks=len(tasks))

    results: List[Optional[TaskResult]] = [None] * len(tasks)
    pending: Dict[SweepTask, List[int]] = {}
    for i, task in enumerate(tasks):
        if task in pending:  # duplicate of an already-pending task
            pending[task].append(i)
            continue
        hit = cache.load(task) if cache is not None else None
        if hit is not None and settings.trace_summary and not any(
            k.startswith(TRACE_KEY_PREFIX) for k in hit.values
        ):
            # Cached before trace summaries were requested: recompute so
            # the entry gains its trace.* digest.
            hit = None
        if hit is not None:
            stats.hits += 1
            results[i] = hit
        else:
            pending[task] = [i]

    unique = list(pending)
    stats.unique = len(unique) + stats.hits
    stats.misses = len(unique)
    if unique:
        if settings.jobs > 1 and len(unique) > 1:
            computed = _run_pooled(unique, settings)
        else:
            computed = [_execute_with_retry(task, settings) for task in unique]
        for task, result in zip(unique, computed):
            stats.sim_wall_s += result.wall_s
            stats.retried += result.attempts - 1
            if result.error is not None:
                stats.failed += 1
            if cache is not None:
                cache.store(result)  # no-op for failed results
            for i in pending[task]:
                results[i] = result

    assert all(r is not None for r in results)
    last_sweep_stats = stats
    total_failed_tasks += stats.failed
    return SweepOutcome(results=results, stats=stats, settings=settings)  # type: ignore[arg-type]


def _backoff_sleep(settings: HarnessSettings, round_index: int) -> None:
    """Exponential backoff between retry rounds (base * 2^round)."""
    delay = settings.retry_backoff_s * (2**round_index)
    if delay > 0:
        time.sleep(min(delay, 30.0))


def _execute_with_retry(task: SweepTask, settings: HarnessSettings) -> TaskResult:
    """In-process execution with bounded retry on raising tasks.

    Serial execution cannot preempt a hung or crashed *process* (the
    task runs in this one); those failure modes are covered by the
    pooled path.  What it can survive is a task that raises.
    """
    last_error = "unknown"
    for attempt in range(settings.retries + 1):
        if attempt:
            _backoff_sleep(settings, attempt - 1)
        try:
            result = _timed_execute(task, trace_summary=settings.trace_summary)
            result.attempts = attempt + 1
            return result
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - captured per task
            last_error = f"{type(exc).__name__}: {exc}"
    return TaskResult(
        task=task,
        values={},
        wall_s=0.0,
        attempts=settings.retries + 1,
        error=last_error,
    )


def _terminate_workers(executor) -> None:
    """Forcefully end a pool's worker processes (hung-worker cleanup).

    ``ProcessPoolExecutor`` has no public kill switch; terminating the
    worker ``Process`` objects directly is the only way to reclaim a
    worker stuck in an unbounded simulation without blocking interpreter
    shutdown on its (non-daemon) process join.
    """
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass


def _run_pooled(tasks: List[SweepTask], settings: HarnessSettings) -> List[TaskResult]:
    """Fan distinct tasks out across worker processes, in input order.

    Resilience contract (exercised by the chaos tests):

    * a task that **raises** is captured as that task's failure, not a
      sweep abort;
    * a **killed** worker (OOM, segfault, chaos ``crash``) breaks the
      pool — every task still in flight is retried; because which task
      killed the pool is unknowable from the outside, later rounds run
      each task in its *own* single-worker pool, so a persistent
      crasher exhausts only its own attempt budget and innocent
      bystanders complete;
    * a **hung** worker trips ``task_timeout_s``; the stuck process is
      terminated and the task retried;
    * retry rounds back off exponentially and give up after
      ``settings.retries`` extra attempts, recording the last error.
    """
    import functools
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeoutError
    from concurrent.futures.process import BrokenProcessPool

    entry = functools.partial(_pool_entry, trace_summary=settings.trace_summary)
    results: Dict[int, TaskResult] = {}
    attempts: Dict[int, int] = {i: 0 for i in range(len(tasks))}
    last_error: Dict[int, str] = {}
    remaining = list(range(len(tasks)))
    isolate = False  # after a pool break: one single-worker pool per task

    round_index = 0
    while remaining:
        if round_index:
            _backoff_sleep(settings, round_index - 1)
        retry: List[int] = []
        broke = False
        if isolate:
            # Crash attribution: each task gets a private pool (still at
            # most ``jobs`` worker processes alive at once).
            batches = [
                remaining[k : k + settings.jobs]
                for k in range(0, len(remaining), settings.jobs)
            ]
        else:
            batches = [remaining]
        for batch in batches:
            if isolate:
                executors = {
                    i: ProcessPoolExecutor(max_workers=1) for i in batch
                }
            else:
                shared = ProcessPoolExecutor(
                    max_workers=min(settings.jobs, len(batch))
                )
                executors = {i: shared for i in batch}
            futures = {i: executors[i].submit(entry, tasks[i]) for i in batch}
            hung = set()
            for i in batch:
                attempts[i] += 1
                try:
                    values, wall_s = futures[i].result(
                        timeout=settings.task_timeout_s
                    )
                except FutureTimeoutError:
                    futures[i].cancel()
                    hung.add(executors[i])
                    last_error[i] = (
                        f"timed out after {settings.task_timeout_s:g}s"
                    )
                    retry.append(i)
                except BrokenProcessPool:
                    # A worker died (crash/kill/OOM); every future on
                    # its pool is lost and must be retried.
                    broke = True
                    last_error[i] = "worker process died (broken pool)"
                    retry.append(i)
                except KeyboardInterrupt:
                    for ex in set(executors.values()):
                        _terminate_workers(ex)
                        ex.shutdown(wait=False, cancel_futures=True)
                    raise
                except Exception as exc:  # noqa: BLE001 - captured per task
                    last_error[i] = f"{type(exc).__name__}: {exc}"
                    retry.append(i)
                else:
                    results[i] = TaskResult(
                        task=tasks[i],
                        values=values,
                        wall_s=wall_s,
                        attempts=attempts[i],
                    )
            for ex in set(executors.values()):
                if ex in hung:
                    # A hung worker never returns; joining it would hang
                    # the sweep (and interpreter exit) right behind it.
                    _terminate_workers(ex)
                    ex.shutdown(wait=False, cancel_futures=True)
                else:
                    ex.shutdown(wait=True, cancel_futures=True)
        if broke:
            isolate = True

        remaining = []
        for i in retry:
            if attempts[i] > settings.retries:
                results[i] = TaskResult(
                    task=tasks[i],
                    values={},
                    wall_s=0.0,
                    attempts=attempts[i],
                    error=last_error.get(i, "unknown"),
                )
            else:
                remaining.append(i)
        round_index += 1

    return [results[i] for i in range(len(tasks))]
