"""Extension studies beyond the paper's tables and figures.

Quantitative evaluations of directions the paper raises qualitatively
(Sections 2, 3, 8, 10).  Each ``*_study`` returns an
:class:`repro.experiments.results.ExperimentResult`; the benchmark
suite asserts each study's conclusion and ``report --extensions``
prints them all.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.apps.registry import get_app
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import measure_speedup, run_radram
from repro.radram.config import RADramConfig
from repro.sim.config import CPUConfig, MachineConfig


def comm_mechanism_study(
    pages: Sequence[float] = (16, 64, 128),
) -> ExperimentResult:
    """Processor-mediated vs hardware inter-page comm on dynamic-prog."""
    app = get_app("dynamic-prog")
    rows = []
    for n_pages in pages:
        base = measure_speedup(app, n_pages)
        hw = measure_speedup(
            app, n_pages, radram_config=RADramConfig.reference().with_hardware_comm()
        )
        rows.append(
            {
                "pages": n_pages,
                "processor_mediated": base.speedup,
                "hardware_comm": hw.speedup,
                "gain": hw.speedup / base.speedup,
            }
        )
    return ExperimentResult(
        experiment_id="ext-comm-mechanism",
        title="Inter-page communication mechanism (Section 10)",
        columns=["pages", "processor_mediated", "hardware_comm", "gain"],
        rows=rows,
        notes=["hardware comm removes dynamic programming's decline"],
    )


def reconfiguration_study(
    reconfig_us: Sequence[float] = (0.0, 1.0, 100.0, 1000.0),
    pages: int = 64,
) -> ExperimentResult:
    """ap_bind reconfiguration cost on an array kernel (Section 6/10)."""
    app = get_app("array-insert")
    rows = []
    for us in reconfig_us:
        cfg = replace(RADramConfig.reference(), reconfig_ns_per_page=us * 1e3)
        result = run_radram(app, pages, radram_config=cfg)
        bind_ns = cfg.reconfig_ns_per_page * pages
        rows.append(
            {
                "reconfig_us_per_page": us,
                "kernel_ms": result.total_ns / 1e6,
                "with_bind_ms": (result.total_ns + bind_ns) / 1e6,
            }
        )
    return ExperimentResult(
        experiment_id="ext-reconfiguration",
        title="Reconfiguration cost per ap_bind (Section 6/10)",
        columns=["reconfig_us_per_page", "kernel_ms", "with_bind_ms"],
        rows=rows,
        notes=["DPGA-class (<=1 us) binds are in the noise; FPGA-era dominates"],
    )


def technology_study_result(app_name: str = "array-insert") -> ExperimentResult:
    """The Section 8 technology catalog on a scalable application."""
    from repro.radram.technologies import technology_study

    rows = technology_study(get_app(app_name))
    return ExperimentResult(
        experiment_id="ext-technologies",
        title="Active-Page technologies (Section 8)",
        columns=[
            "technology",
            "max_pages",
            "effective_logic_mhz",
            "miss_latency_ns",
            "speedup",
        ],
        rows=rows,
        notes=["capacity, not logic speed, separates the technologies"],
    )


def reduction_study(
    page_counts: Sequence[int] = (16, 64, 256),
) -> ExperimentResult:
    """Hierarchical reduction vs processor folding (Section 10)."""
    from repro.radram.reduction import processor_fold_stream, tree_reduce_stream
    from repro.radram.system import RADramMemorySystem
    from repro.sim.machine import Machine
    from repro.sim.memory import PagedMemory

    def run(n_pages, strategy, hardware):
        cfg = RADramConfig.reference().with_page_bytes(4096)
        if hardware:
            cfg = cfg.with_hardware_comm()
        memsys = RADramMemorySystem(cfg)
        machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
        region = machine.memory.alloc_pages(n_pages)
        page_nos = list(machine.memory.pages_of(region))
        addrs = [region.base + i * 4096 for i in range(n_pages)]
        return machine.run(iter(strategy(page_nos, addrs))).total_ns

    rows = []
    for n_pages in page_counts:
        rows.append(
            {
                "pages": n_pages,
                "processor_fold_us": run(n_pages, processor_fold_stream, False) / 1e3,
                "tree_mediated_us": run(n_pages, tree_reduce_stream, False) / 1e3,
                "tree_hardware_us": run(n_pages, tree_reduce_stream, True) / 1e3,
            }
        )
    return ExperimentResult(
        experiment_id="ext-reduction",
        title="Hierarchical reduction (Section 10)",
        columns=["pages", "processor_fold_us", "tree_mediated_us", "tree_hardware_us"],
        rows=rows,
        notes=["combining trees need the hardware network to pay off"],
    )


def smp_study(cpu_counts: Sequence[int] = (1, 2, 4)) -> ExperimentResult:
    """SMP scaling of a saturated database query (Section 2)."""
    from examples.smp_database import query_makespan

    rows = []
    base = None
    for n_cpus in cpu_counts:
        t = query_makespan(n_cpus)
        base = base or t
        rows.append(
            {"cpus": n_cpus, "makespan_ms": t / 1e6, "scaling": base / t}
        )
    return ExperimentResult(
        experiment_id="ext-smp",
        title="SMP scaling of a saturated query (Section 2)",
        columns=["cpus", "makespan_ms", "scaling"],
        rows=rows,
        notes=["the saturated ceiling is activation/post-processing throughput"],
    )


def partition_study() -> ExperimentResult:
    """The partitioning compiler vs Table 2 (Section 10)."""
    from repro.partition.estimator import PartitionEstimator
    from repro.partition.library import TABLE2_EXPECTATIONS
    from repro.partition.partitioner import exhaustive_partition

    rows = []
    for name, (factory, expected) in TABLE2_EXPECTATIONS.items():
        kernel = factory()
        est = PartitionEstimator(kernel)
        partition = exhaustive_partition(kernel, est)
        rows.append(
            {
                "kernel": name,
                "page_stages": ", ".join(sorted(partition.page_stages)),
                "matches_table2": partition.page_stages == expected,
                "estimated_speedup": partition.speedup_over_all_processor(est),
            }
        )
    return ExperimentResult(
        experiment_id="ext-partitioning",
        title="Automatic partitioning vs Table 2 (Section 10)",
        columns=["kernel", "page_stages", "matches_table2", "estimated_speedup"],
        rows=rows,
    )


def processor_speed_study() -> ExperimentResult:
    """What bounds the saturated region: CPU work or bus traffic."""
    rows = []
    for name, pages in (("database", 256), ("matrix-simplex", 32)):
        app = get_app(name)
        base = None
        for ghz in (0.5, 1.0, 2.0, 4.0):
            cfg = replace(
                MachineConfig.reference(), cpu=CPUConfig(clock_hz=ghz * 1e9)
            )
            result = run_radram(app, pages, machine_config=cfg)
            base = base or result.total_ns
            rows.append(
                {
                    "application": name,
                    "cpu_ghz": ghz,
                    "saturated_kernel_us": result.total_ns / 1e3,
                    "vs_half_ghz": base / result.total_ns,
                }
            )
    return ExperimentResult(
        experiment_id="ext-processor-speed",
        title="Saturation cause: CPU work vs bus traffic (Section 7.1)",
        columns=["application", "cpu_ghz", "saturated_kernel_us", "vs_half_ghz"],
        rows=rows,
        notes=[
            "database shrinks with clock (work-bound); matrix does not (traffic-bound)"
        ],
    )


ALL_EXTENSION_STUDIES = {
    "ext-comm-mechanism": comm_mechanism_study,
    "ext-reconfiguration": reconfiguration_study,
    "ext-technologies": technology_study_result,
    "ext-reduction": reduction_study,
    "ext-smp": smp_study,
    "ext-partitioning": partition_study,
    "ext-processor-speed": processor_speed_study,
}


def run_all_extensions() -> List[ExperimentResult]:
    """Run every extension study."""
    return [fn() for fn in ALL_EXTENSION_STUDIES.values()]
