"""Figure 8: RADram speedup as cache-to-memory latency varies.

The cache-miss penalty sweeps 0-600 ns.  In-DRAM computation is
unaffected by miss penalty, so the performance advantage persists; the
*slope* of each curve depends on the ratio of instruction cycles to
memory-stall cycles in the conventional vs the partitioned version
(Section 8) — some applications' speedups rise with latency, others
fall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import harness
from repro.experiments.results import ExperimentResult
from repro.sim.config import MachineConfig
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: The paper's 0-600 ns cache-miss range (50 ns is the reference).
LATENCY_SWEEP_NS = [0, 25, 50, 100, 200, 300, 450, 600]

#: Representative problem sizes (pages) per application: saturated
#: apps at saturation, scalable apps mid-curve.
DEFAULT_SIZES: Dict[str, float] = {
    "array-insert": 64,
    "array-find": 64,
    "database": 128,
    "median-kernel": 64,
    "dynamic-prog": 32,
    "matrix-simplex": 16,
    "matrix-boeing": 16,
    "mpeg-mmx": 64,
}


def run(
    apps: Optional[Sequence[str]] = None,
    latencies_ns: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> ExperimentResult:
    """Regenerate Figure 8's speedup-vs-latency series."""
    apps = list(apps) if apps is not None else list(DEFAULT_SIZES)
    sweep = list(latencies_ns) if latencies_ns is not None else LATENCY_SWEEP_NS
    grid = [
        (name, latency)
        for name in apps
        for latency in sweep
    ]
    tasks = [
        harness.speedup_task(
            name,
            DEFAULT_SIZES.get(name, 32),
            page_bytes=page_bytes,
            machine_config=MachineConfig.reference().with_miss_latency(latency),
        )
        for name, latency in grid
    ]
    outcome = harness.run_sweep(tasks)
    rows: List[dict] = [
        {
            "application": name,
            "miss_latency_ns": latency,
            "speedup": result["speedup"],
        }
        for (name, latency), result in zip(grid, outcome)
    ]
    return ExperimentResult(
        experiment_id="figure-8",
        title="RADram speedup as cache-to-memory latency varies",
        columns=["application", "miss_latency_ns", "speedup"],
        rows=rows,
        notes=["reference latency is 50 ns"] + outcome.notes(),
    )
