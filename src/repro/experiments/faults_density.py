"""Defect density vs speedup: the Section 3 yield argument, dynamic.

The paper argues RADram is economically viable because its uniform
LE fabric and spared DRAM arrays *tolerate* fabrication defects rather
than discarding the die.  :mod:`repro.radram.yieldmodel` shows that
statically (chips survive); this experiment shows it dynamically
(performance degrades gracefully): each page draws Poisson-distributed
LE defects at the sweep's defect density, repairs what its spare
columns can, and *degrades to processor-only execution* past that —
so speedup falls smoothly with density instead of cliffing to zero.

Alongside the measured degraded fraction the table prints the
analytic survival probability from the same Poisson model
(:func:`repro.faults.models.expected_page_survival`), tying the
dynamic injector back to the static yield table.

A transient-fault column stresses the ECC path at a fixed soft-error
rate: scrub time appears in ``MachineStats.scrub_ns`` but barely moves
the speedup — which is the point of SEC-DED.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments import harness
from repro.experiments.results import ExperimentResult
from repro.faults.models import FaultConfig, expected_page_survival
from repro.radram.config import RADramConfig
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: Defect densities (defects/cm^2) spanning survival ~1.0 down to ~0.05
#: over the reference page fabric — the yield table's regime.
DENSITY_SWEEP = [0.0, 50.0, 100.0, 200.0, 400.0, 800.0]

#: Transient single-bit upset rate per activation for the ECC column
#: (a stress rate, far above physical soft-error rates, so the scrub
#: column is visibly non-zero at these small sweep sizes).
BIT_FLIP_RATE = 0.25

#: Applications measured (one per partitioning style, modest sizes so
#: the full report stays fast).
DEFAULT_APPS = {
    "array-insert": 16.0,
    "database": 16.0,
    "matrix-simplex": 8.0,
}


def fault_config(density: float, seed: int = 0) -> FaultConfig:
    """The sweep's fault model at one defect density."""
    return FaultConfig(
        seed=seed,
        le_defect_density=density,
        bit_flip_rate=BIT_FLIP_RATE,
    )


def run(
    apps: Optional[Sequence[str]] = None,
    densities: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep defect density; report speedup + degraded/expected survival."""
    app_sizes = (
        {name: DEFAULT_APPS.get(name, 16.0) for name in apps}
        if apps is not None
        else dict(DEFAULT_APPS)
    )
    sweep = list(densities) if densities is not None else list(DENSITY_SWEEP)
    grid = [
        (name, n_pages, density)
        for name, n_pages in app_sizes.items()
        for density in sweep
    ]
    tasks = [
        harness.faults_task(
            name,
            n_pages,
            radram_config=RADramConfig.reference().with_faults(
                fault_config(density, seed=seed)
            ),
            page_bytes=page_bytes,
        )
        for name, n_pages, density in grid
    ]
    outcome = harness.run_sweep(tasks)
    rows: List[dict] = []
    for (name, n_pages, density), result in zip(grid, outcome):
        if not result.ok:
            continue  # itemized in outcome.notes(); keep the table partial
        degraded = result.values.get("faults.degraded_pages", 0.0)
        touched = max(1.0, result.values.get("faults.pages_touched", n_pages))
        rows.append(
            {
                "application": name,
                "pages": n_pages,
                "density_cm2": density,
                "speedup": result["speedup"],
                "degraded_pages": degraded,
                "surviving_frac": 1.0 - degraded / touched,
                "expected_frac": expected_page_survival(density),
                "scrubs": result.values.get("faults.scrubs", 0.0),
                "migrations": result.values.get("faults.migrations", 0.0),
            }
        )
    return ExperimentResult(
        experiment_id="faults-density",
        title="RADram speedup vs LE defect density (graceful degradation)",
        columns=[
            "application",
            "pages",
            "density_cm2",
            "speedup",
            "degraded_pages",
            "surviving_frac",
            "expected_frac",
            "scrubs",
            "migrations",
        ],
        rows=rows,
        notes=[
            f"fault seed {seed}; transient bit-flip rate {BIT_FLIP_RATE:g}"
            " per activation (SEC-DED corrects, scrub charged to the CPU)",
            "expected_frac is the analytic Poisson survival of the same"
            " defect model (repro.faults.models.expected_page_survival)",
        ]
        + outcome.notes(),
    )
