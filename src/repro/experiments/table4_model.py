"""Table 4: measured model parameters and model-vs-simulator correlation.

For every Table 4 application:

* **T_A** — mean activation phase time, measured at a medium problem
  size (Section 7.4.2: "an average activation time ... can be measured
  using a small to medium data-set").
* **T_P** — mean post-processing phase time, stall excluded.
* **T_C** — mean per-activation page computation time.
* **pages for overlap** — the smallest K at which the NO recursion is
  zero everywhere, from the measured constants.
* **speedup correlation** — Pearson correlation between the constant-
  parameter model's predicted speedups and the simulated speedups over
  the Figure 3 sweep.  matrix-boeing violates the constant-time
  assumption (data-dependent densities) and correlates visibly worse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.registry import TABLE4_APPS, get_app
from repro.core.model import (
    pages_for_complete_overlap,
    predict_speedup,
    speedup_correlation,
)
from repro.experiments import harness
from repro.experiments.results import ExperimentResult
from repro.sim.memory import DEFAULT_PAGE_BYTES

#: Problem size (pages) at which the constants are measured.
MEASURE_PAGES = 16
#: Figure 3 problem sizes used for the correlation column.
CORRELATION_SWEEP = [1, 2, 4, 8, 16, 32, 64]


def measure_constants(name: str, page_bytes: int = DEFAULT_PAGE_BYTES) -> dict:
    """Measure T_A/T_P/T_C (microseconds) for one application."""
    outcome = harness.run_sweep(
        [harness.constants_task(name, MEASURE_PAGES, page_bytes=page_bytes)]
    )
    values = dict(outcome[0].values)
    values.pop("activations", None)
    return values


def run(
    apps: Optional[Sequence[str]] = None,
    sweep: Optional[Sequence[float]] = None,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> ExperimentResult:
    """Regenerate Table 4."""
    apps = list(apps) if apps is not None else TABLE4_APPS
    sweep = list(sweep) if sweep is not None else CORRELATION_SWEEP
    # One batch for everything Table 4 needs: per-app calibration runs
    # plus the correlation sweep, fanned out / memoized together.
    tasks: List[harness.SweepTask] = [
        harness.constants_task(name, MEASURE_PAGES, page_bytes=page_bytes)
        for name in apps
    ] + [
        harness.speedup_task(name, k, page_bytes=page_bytes)
        for name in apps
        for k in sweep
    ]
    outcome = harness.run_sweep(tasks)
    constants_of: Dict[str, Dict[str, float]] = {
        name: outcome[i].values for i, name in enumerate(apps)
    }
    measured_of: Dict[str, List[float]] = {}
    for j, name in enumerate(apps):
        base = len(apps) + j * len(sweep)
        measured_of[name] = [
            outcome[base + i]["speedup"] for i in range(len(sweep))
        ]
    rows: List[dict] = []
    for name in apps:
        app = get_app(name)
        constants = constants_of[name]
        predicted = [
            predict_speedup(
                constants["t_conv_per_activation_us"],
                constants["t_a_us"],
                constants["t_p_us"],
                constants["t_c_us"],
                max(1, int(k)),
            )
            for k in sweep
        ]
        measured = measured_of[name]
        correlation = speedup_correlation(predicted, measured)
        overlap = pages_for_complete_overlap(
            constants["t_a_us"], constants["t_p_us"], constants["t_c_us"]
        )
        paper = app.paper_table4
        rows.append(
            {
                "application": name,
                "t_a_us": constants["t_a_us"],
                "t_a_paper": paper.t_a_us if paper else "-",
                "t_p_us": constants["t_p_us"],
                "t_p_paper": paper.t_p_us if paper else "-",
                "t_c_us": constants["t_c_us"],
                "t_c_paper": paper.t_c_us if paper else "-",
                "pages_overlap": overlap,
                "overlap_paper": paper.pages_for_overlap if paper else "-",
                "correlation": correlation,
                "corr_paper": paper.speedup_correlation if paper else "-",
            }
        )
    return ExperimentResult(
        experiment_id="table-4",
        title="Activation, computation, post-processing times; model correlation",
        columns=[
            "application",
            "t_a_us",
            "t_a_paper",
            "t_p_us",
            "t_p_paper",
            "t_c_us",
            "t_c_paper",
            "pages_overlap",
            "overlap_paper",
            "correlation",
            "corr_paper",
        ],
        rows=rows,
        notes=[
            "paper T_C column for database/matrix rows read as microseconds "
            "(consistent with its own pages-for-overlap; see EXPERIMENTS.md)",
            "pages-for-overlap computed from the NO(i) recursion, not a closed form",
        ]
        + outcome.notes(),
    )
