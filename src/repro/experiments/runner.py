"""Shared experiment machinery: run one application on one system.

Large conventional runs use a *measure-and-extrapolate* strategy: the
baseline kernels are streaming computations whose cost is linear in
pages once the working set exceeds the caches, so the harness simulates
``cap_pages`` pages and scales (validated by
``tests/experiments/test_runner.py::test_extrapolation_matches_direct``).
RADram runs are always simulated directly — the partitioned kernels'
processor cost is small per page, and overlap effects (the whole point)
are not linear.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.apps.base import Application, Workload
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import DEFAULT_PAGE_BYTES, PagedMemory
from repro.sim.stats import MachineStats

#: Default conventional-simulation cap (pages) before extrapolating.
DEFAULT_CAP_PAGES = 8.0


@dataclass
class RunResult:
    """One simulated (or extrapolated) kernel execution."""

    app_name: str
    system: str  # "conventional" | "radram"
    n_pages: float
    total_ns: float
    stats: MachineStats
    workload: Workload
    scaled_from_pages: Optional[float] = None  # set when extrapolated
    mean_page_busy_ns: float = 0.0  # RADram only: measured T_C
    #: RADram only: per-subarray busy times in page order — the
    #: data-dependent T_C vector the Figure 7 model accepts directly
    #: (the fuzzer's model oracle uses it when one activation maps to
    #: one page).
    page_busy_ns: Tuple[float, ...] = ()
    #: fault/repair counters (empty unless fault injection was on).
    fault_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def stall_fraction(self) -> float:
        return self.stats.wait_ns / self.total_ns if self.total_ns else 0.0


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a Figure 3 / Figure 4 style sweep."""

    app_name: str
    n_pages: float
    conventional_ns: float
    radram_ns: float
    stall_fraction: float

    @property
    def speedup(self) -> float:
        return self.conventional_ns / self.radram_ns

    @classmethod
    def from_values(
        cls, app_name: str, n_pages: float, values: "dict"
    ) -> "SpeedupPoint":
        """Rebuild a point from a sweep-harness value mapping."""
        return cls(
            app_name=app_name,
            n_pages=n_pages,
            conventional_ns=values["conventional_ns"],
            radram_ns=values["radram_ns"],
            stall_fraction=values["stall_fraction"],
        )


def run_conventional(
    app: Application,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    machine_config: Optional[MachineConfig] = None,
    functional: bool = False,
    seed: int = 0,
    cap_pages: Optional[float] = DEFAULT_CAP_PAGES,
    params: Optional[Mapping[str, float]] = None,
) -> RunResult:
    """Run the baseline version of ``app`` at ``n_pages``."""
    simulate_pages = n_pages
    scaled_from = None
    if (
        cap_pages is not None
        and app.linear_conventional
        and not functional
        and n_pages > cap_pages
    ):
        simulate_pages = cap_pages
        scaled_from = cap_pages

    machine = Machine(config=machine_config, memory=PagedMemory(page_bytes=page_bytes))
    if functional:
        w = getattr(app, "conventional_workload", app.workload)(
            simulate_pages,
            page_bytes,
            functional=True,
            memory=machine.memory,
            seed=seed,
            params=params,
        )
    else:
        w = getattr(app, "conventional_workload", app.workload)(
            simulate_pages, page_bytes, functional=False, seed=seed, params=params
        )
    stats = machine.run(app.conventional_stream(w))
    total = stats.total_ns
    if scaled_from is not None:
        total *= n_pages / simulate_pages
    return RunResult(
        app_name=app.name,
        system="conventional",
        n_pages=n_pages,
        total_ns=total,
        stats=stats,
        workload=w,
        scaled_from_pages=scaled_from,
    )


def run_radram(
    app: Application,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    machine_config: Optional[MachineConfig] = None,
    radram_config: Optional[RADramConfig] = None,
    functional: bool = False,
    seed: int = 0,
    params: Optional[Mapping[str, float]] = None,
) -> RunResult:
    """Run the Active-Page version of ``app`` at ``n_pages``."""
    rconfig = radram_config or RADramConfig.reference()
    if rconfig.page_bytes != page_bytes:
        rconfig = rconfig.with_page_bytes(page_bytes)
    memsys = RADramMemorySystem(rconfig)
    machine = Machine(
        config=machine_config,
        memory=PagedMemory(page_bytes=page_bytes),
        memsys=memsys,
    )
    if functional:
        w = app.workload(
            n_pages,
            page_bytes,
            functional=True,
            memory=machine.memory,
            seed=seed,
            params=params,
        )
    else:
        w = app.workload(n_pages, page_bytes, functional=False, seed=seed, params=params)
    # Applications may adapt their partitioning to the technology
    # (e.g. LCS uses in-page references when hardware comm exists).
    w.data["radram_config"] = rconfig
    stats = machine.run(app.radram_stream(w))
    activations = memsys.total_activations
    per_page = tuple(
        memsys.page_busy_ns(p) for p in sorted(memsys.subarrays)
    )
    busy = sum(per_page)
    return RunResult(
        app_name=app.name,
        system="radram",
        n_pages=n_pages,
        total_ns=stats.total_ns,
        stats=stats,
        workload=w,
        mean_page_busy_ns=busy / activations if activations else 0.0,
        page_busy_ns=per_page,
        fault_counters=memsys.fault_counters(),
    )


def measure_speedup(
    app: Application,
    n_pages: float,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    machine_config: Optional[MachineConfig] = None,
    radram_config: Optional[RADramConfig] = None,
    seed: int = 0,
    cap_pages: Optional[float] = DEFAULT_CAP_PAGES,
    params: Optional[Mapping[str, float]] = None,
) -> SpeedupPoint:
    """Conventional vs RADram at one problem size (timing mode)."""
    conv = run_conventional(
        app,
        n_pages,
        page_bytes=page_bytes,
        machine_config=machine_config,
        seed=seed,
        cap_pages=cap_pages,
        params=params,
    )
    rad = run_radram(
        app,
        n_pages,
        page_bytes=page_bytes,
        machine_config=machine_config,
        radram_config=radram_config,
        seed=seed,
        params=params,
    )
    return SpeedupPoint(
        app_name=app.name,
        n_pages=n_pages,
        conventional_ns=conv.total_ns,
        radram_ns=rad.total_ns,
        stall_fraction=rad.stall_fraction,
    )
