"""Chaos injection for the sweep harness itself.

The fault models in :mod:`repro.faults.models` break the *simulated*
machine; this module breaks the *harness*: it makes sweep workers
crash, hang, or raise on demand, so the retry/timeout machinery in
:func:`repro.experiments.harness.run_sweep` can be exercised — in CI
and in tests — against real process death rather than mocks.

Activation is environmental so injected failures reach pool workers
(which share nothing with the parent but the environment):

* ``REPRO_CHAOS`` names a JSON spec file::

      {
        "state_dir": "/tmp/chaos-state",
        "rules": [
          {"match": "array-insert", "mode": "crash", "times": 1},
          {"match": "<task-key-prefix>", "mode": "hang", "times": 1,
           "hang_s": 120.0}
        ]
      }

* A rule fires when ``match`` is a substring of the task's app name or
  a prefix of its content key.  ``mode`` is ``crash`` (``os._exit``,
  simulating a killed/OOMed worker), ``hang`` (sleep far past any
  sane timeout), or ``raise`` (an in-task exception).
* ``times`` bounds how often the rule fires *across all processes*:
  each firing claims a marker file in ``state_dir`` with
  ``O_CREAT | O_EXCL``, which is atomic on POSIX — so a task killed
  once succeeds on retry, which is exactly the scenario the harness
  must survive.

Two further modes target the **serve layer** rather than pool workers
(:func:`maybe_injure_serve`, called by the server at its event publish
and stream-emit sites; ``match`` is checked against the site label —
``serve.publish:<event>`` / ``serve.emit:<event>`` — and the job id):

* ``kill`` — ``SIGKILL`` the server process itself, *between* stream
  events (after the event was journaled, before subscribers saw it):
  the crash the job journal and startup recovery must survive.
* ``drop`` — abruptly sever one streaming response
  (``ConnectionResetError`` at the emit site) while the job keeps
  running: the disconnect the client's reconnect-and-resume machinery
  must survive.

Nothing here runs unless ``REPRO_CHAOS`` is set: the import is cheap
and :func:`maybe_injure` is a single ``os.environ.get`` when idle.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Dict, List, Optional, Tuple

#: Environment variable naming the chaos spec file.
CHAOS_ENV = "REPRO_CHAOS"

#: Worker-injury modes (fired by :func:`maybe_injure` inside tasks).
TASK_CHAOS_MODES = ("crash", "hang", "raise")

#: Serve-layer modes (fired by :func:`maybe_injure_serve` in the server).
SERVE_CHAOS_MODES = ("kill", "drop")

CHAOS_MODES = TASK_CHAOS_MODES + SERVE_CHAOS_MODES

#: Exit code used by crash-mode injuries (recognizable in waitpid).
CRASH_EXIT_CODE = 113


class ChaosError(RuntimeError):
    """Raised inside a worker by a ``raise``-mode chaos rule."""


def write_spec(path: str, state_dir: str, rules: List[Dict[str, object]]) -> None:
    """Write a chaos spec file (validating rules) and its state dir."""
    for rule in rules:
        if rule.get("mode") not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {rule.get('mode')!r}")
        if "match" not in rule:
            raise ValueError("chaos rule needs a 'match' pattern")
        if "shard" in rule and not isinstance(rule["shard"], int):
            raise ValueError("chaos rule 'shard' must be an integer index")
    os.makedirs(state_dir, exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"state_dir": state_dir, "rules": rules}, fh, indent=1)


def _load_spec() -> Optional[Dict[str, object]]:
    spec_path = os.environ.get(CHAOS_ENV)
    if not spec_path:
        return None
    try:
        with open(spec_path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None  # a vanished/corrupt spec disables chaos


def _claim(state_dir: str, rule_index: int, times: int) -> bool:
    """Atomically claim one firing of a rule; False when spent.

    Claims are marker files created with ``O_CREAT | O_EXCL`` so
    concurrent workers (separate processes) never double-claim one
    firing.
    """
    for attempt in range(times):
        marker = os.path.join(state_dir, f"rule{rule_index}.fired{attempt}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return True
    return False


def maybe_injure(task_key: str, app_name: str) -> None:
    """Injure the current process if an active chaos rule matches.

    Called by the harness at the top of task execution.  No-op (one
    env lookup) unless ``REPRO_CHAOS`` is set.
    """
    spec = _load_spec()
    if spec is None:
        return
    state_dir = str(spec.get("state_dir", ""))
    if not state_dir:
        return
    for index, rule in enumerate(spec.get("rules", [])):
        mode = rule.get("mode")
        if mode not in TASK_CHAOS_MODES:
            continue  # serve-layer rules never fire inside tasks
        match = str(rule.get("match", ""))
        if not match:
            continue
        if match not in app_name and not task_key.startswith(match):
            continue
        times = int(rule.get("times", 1))
        if not _claim(state_dir, index, times):
            continue
        if mode == "crash":
            # Simulate a killed/OOMed worker: no exception, no cleanup.
            os._exit(CRASH_EXIT_CODE)
        elif mode == "hang":
            time.sleep(float(rule.get("hang_s", 120.0)))
        elif mode == "raise":
            raise ChaosError(
                f"chaos rule {index} ({match!r}) injured task {task_key[:12]}"
            )


def maybe_injure_serve(
    site: str,
    detail: str = "",
    modes: Tuple[str, ...] = SERVE_CHAOS_MODES,
    shard: Optional[int] = None,
) -> None:
    """Injure the serve process at an event publish/emit site.

    ``site`` is a label like ``serve.publish:progress`` or
    ``serve.emit:result``; a rule fires when its ``match`` is a
    substring of ``site`` or of ``detail`` (the job id).  ``modes``
    restricts which rule kinds may fire at this call site — the
    publish path only allows ``kill`` (a ``drop`` there would be a job
    failure, not a severed connection).

    A rule may also carry ``"shard": N`` — **shard-kill mode** for the
    serve cluster: it then fires only in the server process whose
    ``--shard-index`` matches (the server threads its index through
    ``shard``), so a failover smoke can SIGKILL exactly the shard that
    owns a job while its peers stay healthy.

    No-op (one env lookup) unless ``REPRO_CHAOS`` is set.
    """
    spec = _load_spec()
    if spec is None:
        return
    state_dir = str(spec.get("state_dir", ""))
    if not state_dir:
        return
    for index, rule in enumerate(spec.get("rules", [])):
        mode = rule.get("mode")
        if mode not in SERVE_CHAOS_MODES or mode not in modes:
            continue
        rule_shard = rule.get("shard")
        if rule_shard is not None and (
            shard is None or int(rule_shard) != int(shard)
        ):
            continue
        match = str(rule.get("match", ""))
        if not match:
            continue
        if match not in site and (not detail or match not in detail):
            continue
        if not _claim(state_dir, index, int(rule.get("times", 1))):
            continue
        if mode == "kill":
            # The real thing: no drain, no cleanup, no atexit — the
            # journal on disk is all that survives.
            os.kill(os.getpid(), signal.SIGKILL)
        raise ConnectionResetError(
            f"chaos rule {index} ({match!r}) dropped the stream at {site}"
        )
