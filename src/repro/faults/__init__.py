"""Fault injection and resilience for the Active Pages simulator.

:mod:`repro.faults.models` defines the deterministic, seedable fault
models (what goes wrong, and when); :mod:`repro.faults.controller`
applies them to a live RADram machine and implements the tolerance
mechanisms — ECC scrubbing, spare-row and spare-LE-column remapping,
page migration with activation replay, and graceful degradation to
processor-only execution.  :mod:`repro.faults.chaos` injects failures
into the *sweep harness itself* (crashed, hung or raising pool
workers) for resilience testing.
"""

from repro.faults.models import (
    BIT_FLIP,
    BUS_ERROR,
    DOUBLE_BIT,
    FAULT_KINDS,
    HARD_FAULT,
    LE_DEFECT,
    FaultConfig,
    FaultInjector,
    ScheduledFault,
    expected_page_survival,
)

__all__ = [
    "BIT_FLIP",
    "BUS_ERROR",
    "DOUBLE_BIT",
    "FAULT_KINDS",
    "HARD_FAULT",
    "LE_DEFECT",
    "FaultConfig",
    "FaultInjector",
    "ScheduledFault",
    "expected_page_survival",
]
