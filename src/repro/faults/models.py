"""Deterministic, seedable fault models (paper Section 3, made dynamic).

The paper's economic argument for RADram is *defect tolerance*: the
uniform LE fabric and spared DRAM arrays survive defects that would
kill a processor or IRAM die.  :mod:`repro.radram.yieldmodel` captures
that statically (a Poisson formula); this module makes defects and
faults *injectable events* the simulator experiences at run time:

* **Transient DRAM bit flips** — soft errors in a page's data arrays,
  raised at activation granularity.  Single-bit flips are correctable
  by SEC-DED ECC (at a scrub cost); multi-bit flips are not.
* **Hard subarray/row failures** — a row of the page's DRAM slice dies
  permanently.  Spare rows absorb the first few; beyond that the page
  must *migrate* to a healthy frame.
* **Defective LE blocks** — fabrication defects in the reconfigurable
  fabric, drawn from the same Poisson defect model the yield table
  uses, repaired by spare LE columns until those run out.
* **Bus transfer errors** — a corrupted descriptor or service transfer
  that must be retransmitted.

Determinism
-----------
Every draw is a pure function of ``(seed, fault kind, coordinates)``
via SHA-256 — not of call order, process layout, or global RNG state.
Two runs with the same seed see byte-identical fault histories, no
matter how the sweep harness schedules them (``--jobs 1`` vs ``-j 8``).

Faults are configured by *rate* (per activation / per transfer
probabilities, defect density in defects/cm^2) or by explicit
``(activation cycle, target page)`` schedules, or both.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.errors import ConfigError

# Fault kinds (also the trace instant names on the "faults" track).
BIT_FLIP = "bit-flip"  # transient single-bit DRAM upset (ECC-correctable)
DOUBLE_BIT = "double-bit"  # multi-bit upset (uncorrectable, even with ECC)
HARD_FAULT = "hard"  # permanent subarray/row failure
LE_DEFECT = "le-defect"  # fabrication defect in the LE fabric
BUS_ERROR = "bus"  # corrupted bus transfer (retransmitted)

FAULT_KINDS = (BIT_FLIP, DOUBLE_BIT, HARD_FAULT, LE_DEFECT, BUS_ERROR)

#: LE-fabric area of one page, in cm^2 — the RADram chip class of the
#: yield model, divided across its pages.  Feeding the same defect
#: density through :func:`expected_page_survival` and the dynamic
#: injector keeps the static and dynamic views of Section 3 consistent.
def _page_fabric_area_cm2(pages_per_chip: int) -> float:
    from repro.radram.yieldmodel import CHIP_CLASSES

    chip = CHIP_CLASSES["radram"]
    return chip.area_cm2 / max(1, pages_per_chip)


@dataclass(frozen=True)
class ScheduledFault:
    """One explicitly scheduled fault: (activation cycle, target page).

    ``activation`` counts the target page's activations (its dispatch
    "cycle"), starting at 1.  ``in_flight`` schedules the fault to
    strike *while* that activation is executing (detected when the
    processor waits on the page) instead of at dispatch — this is the
    path that forces the dispatcher to replay an in-flight activation
    after migration.
    """

    activation: int
    page_no: int
    kind: str
    in_flight: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (BIT_FLIP, DOUBLE_BIT, HARD_FAULT, BUS_ERROR):
            raise ConfigError(f"unschedulable fault kind {self.kind!r}")
        if self.activation < 1:
            raise ConfigError("scheduled activation cycles start at 1")


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection rates, schedules, and tolerance budgets.

    All rates are probabilities in ``[0, 1]`` per opportunity (per
    activation for page faults, per transfer for bus errors) except
    ``le_defect_density``, which is in defects/cm^2 over the page's LE
    fabric — the same unit the Section 3 yield model uses.
    """

    seed: int = 0
    #: transient single-bit DRAM upset per activation.
    bit_flip_rate: float = 0.0
    #: multi-bit (ECC-uncorrectable) upset per activation.
    double_bit_rate: float = 0.0
    #: permanent row/subarray failure per activation.
    hard_fault_rate: float = 0.0
    #: corrupted bus transfer per descriptor/service transfer.
    bus_error_rate: float = 0.0
    #: fabrication defect density over the LE fabric (defects/cm^2).
    le_defect_density: float = 0.0
    #: explicit (cycle, target) fault schedule, applied on top of rates.
    schedule: Tuple[ScheduledFault, ...] = ()
    #: SEC-DED ECC on the DRAM arrays; off, any bit flip is fatal.
    ecc: bool = True
    #: processor time to scrub one corrected word back to memory.
    scrub_ns: float = 2_000.0
    #: hard faults a page absorbs via spare-row remapping.
    spare_rows: int = 2
    #: defective LE columns a page's fabric can remap onto spares.
    spare_le_columns: int = 2
    #: page migrations allowed before the page degrades for good.
    migration_limit: int = 1
    #: chips backing the frame allocator used for migration targets.
    n_chips: int = 4

    def __post_init__(self) -> None:
        for name in ("bit_flip_rate", "double_bit_rate", "hard_fault_rate", "bus_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {rate}")
        if self.le_defect_density < 0:
            raise ConfigError("defect density cannot be negative")
        if self.scrub_ns < 0:
            raise ConfigError("scrub latency cannot be negative")
        for name in ("spare_rows", "spare_le_columns", "migration_limit", "n_chips"):
            if getattr(self, name) < 0 or (name == "n_chips" and self.n_chips < 1):
                raise ConfigError(f"{name} must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether any injector can ever fire."""
        return bool(
            self.bit_flip_rate
            or self.double_bit_rate
            or self.hard_fault_rate
            or self.bus_error_rate
            or self.le_defect_density
            or self.schedule
        )


class FaultInjector:
    """Order-independent fault draws for one :class:`FaultConfig`.

    Each decision hashes ``(seed, kind, coordinates)``; the coordinates
    identify the opportunity (page number and activation index, or bus
    transfer index), so the same seed always yields the same fault
    history regardless of execution interleaving.
    """

    def __init__(self, config: FaultConfig, pages_per_chip: int = 128) -> None:
        self.config = config
        self._fabric_area = _page_fabric_area_cm2(pages_per_chip)
        # (page_no, activation) -> scheduled faults, split by phase.
        self._at_dispatch: Dict[Tuple[int, int], Tuple[ScheduledFault, ...]] = {}
        self._in_flight: Dict[Tuple[int, int], Tuple[ScheduledFault, ...]] = {}
        for entry in config.schedule:
            key = (entry.page_no, entry.activation)
            book = self._in_flight if entry.in_flight else self._at_dispatch
            book[key] = book.get(key, ()) + (entry,)

    # ------------------------------------------------------------------
    # The deterministic uniform source

    def _uniform(self, kind: str, *coords: int) -> float:
        """A U[0,1) value fully determined by (seed, kind, coords)."""
        label = f"{self.config.seed}|{kind}|" + "|".join(str(c) for c in coords)
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    # ------------------------------------------------------------------
    # Rate-driven draws

    def bit_flip(self, page_no: int, activation: int) -> Optional[str]:
        """``None``, :data:`BIT_FLIP` or :data:`DOUBLE_BIT` for one activation."""
        cfg = self.config
        if not (cfg.bit_flip_rate or cfg.double_bit_rate):
            return None
        u = self._uniform(BIT_FLIP, page_no, activation)
        if u < cfg.double_bit_rate:
            return DOUBLE_BIT
        if u < cfg.double_bit_rate + cfg.bit_flip_rate:
            return BIT_FLIP
        return None

    def hard_fault(self, page_no: int, activation: int) -> bool:
        """Whether a permanent row failure strikes this activation."""
        cfg = self.config
        return bool(
            cfg.hard_fault_rate
            and self._uniform(HARD_FAULT, page_no, activation) < cfg.hard_fault_rate
        )

    def bus_error(self, transfer_index: int) -> bool:
        """Whether bus transfer number ``transfer_index`` is corrupted."""
        cfg = self.config
        return bool(
            cfg.bus_error_rate
            and self._uniform(BUS_ERROR, transfer_index) < cfg.bus_error_rate
        )

    def le_defects(self, page_no: int) -> int:
        """Fabrication defects in this page's LE fabric (Poisson draw).

        The mean is ``le_defect_density * fabric_area`` — the same
        Poisson model :func:`repro.radram.yieldmodel.chip_yield` uses,
        sampled per page by inverting the CDF at a deterministic
        uniform.
        """
        mean = self.config.le_defect_density * self._fabric_area
        if mean <= 0:
            return 0
        u = self._uniform(LE_DEFECT, page_no)
        # Invert the Poisson CDF: smallest k with P[X <= k] > u.
        term = math.exp(-mean)
        cumulative = term
        k = 0
        while u >= cumulative and k < 1_000:
            k += 1
            term *= mean / k
            cumulative += term
        return k

    # ------------------------------------------------------------------
    # Scheduled faults

    def scheduled(self, page_no: int, activation: int) -> Tuple[ScheduledFault, ...]:
        """Explicitly scheduled dispatch-time faults for this activation."""
        return self._at_dispatch.get((page_no, activation), ())

    def scheduled_in_flight(self, page_no: int, activation: int) -> Tuple[ScheduledFault, ...]:
        """Scheduled faults striking while this activation executes."""
        return self._in_flight.get((page_no, activation), ())

    def take_in_flight(self, page_no: int, activation: int) -> Tuple[ScheduledFault, ...]:
        """Consume the in-flight faults for this activation (fire once).

        The wait handler may be entered repeatedly for one activation
        (e.g. after a replay); popping the entry guarantees each
        scheduled in-flight fault strikes exactly once.
        """
        return self._in_flight.pop((page_no, activation), ())


def expected_page_survival(
    density: float,
    spare_le_columns: int = 2,
    pages_per_chip: int = 128,
) -> float:
    """Analytic fraction of pages whose fabric survives fabrication.

    The static yield-model counterpart of the dynamic injector: a page
    survives when its Poisson-distributed LE defects do not exceed its
    spare columns.  ``python -m repro faults`` prints this next to the
    measured degraded fraction so the two Section 3 views can be
    compared directly.
    """
    from repro.radram.yieldmodel import _poisson_cdf

    mean = density * _page_fabric_area_cm2(pages_per_chip)
    if mean <= 0:
        return 1.0
    return _poisson_cdf(spare_le_columns, mean)
