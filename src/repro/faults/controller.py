"""Run-time fault tolerance for RADram pages.

The :class:`FaultController` sits beside
:class:`repro.radram.system.RADramMemorySystem` and applies one
:class:`~repro.faults.models.FaultConfig` to a live machine:

* On a page's **first touch** it draws the page's fabrication defect
  map (the dynamic counterpart of the Section 3 yield model), remaps
  defective LE columns onto spares via
  :meth:`repro.radram.logic.LogicBlock.remap_defects`, and allocates
  the page a physical frame from an OS
  :class:`~repro.os.frames.FrameAllocator`.
* On every **activation** it draws transient bit flips (corrected by
  SEC-DED ECC at ``scrub_ns`` each, charged to ``MachineStats``) and
  hard row failures (absorbed by spare rows, then by *migration* to a
  healthy frame — the OS remap path through
  :meth:`FrameAllocator.migrate` and
  :meth:`repro.os.paging.Pager.migrate`).
* Faults **in flight** (scheduled with ``in_flight=True``) strike
  while an activation is executing; the page migrates and the
  dispatcher replays the activation on the new frame.
* When a page's repair budget is exhausted — uncorrectable flips, ECC
  off, spares and migrations spent, or no healthy frame left — the
  controller raises :class:`~repro.sim.errors.FaultError`; the memory
  system catches it and *degrades* that page to processor-only
  execution for the rest of the run.

Every fault, scrub, remap and migration is emitted as a
:mod:`repro.trace` instant on the ``faults`` track (with running
counters), and totalled in :meth:`counters_dict` for the ``faults.*``
metrics namespace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.models import (
    BIT_FLIP,
    BUS_ERROR,
    DOUBLE_BIT,
    HARD_FAULT,
    FaultConfig,
    FaultInjector,
)
from repro.os.frames import Frame, FrameAllocator, OutOfFramesError
from repro.os.paging import Pager, SwapCosts
from repro.sim.errors import FaultError, UncorrectableFaultError
from repro.trace import events as _trace

#: Counter names exported under the ``faults.`` metrics namespace.
COUNTER_NAMES = (
    "bit_flips",
    "corrected",
    "scrubs",
    "uncorrectable",
    "hard_faults",
    "row_remaps",
    "le_defects",
    "le_columns_remapped",
    "migrations",
    "replays",
    "degraded_pages",
    "degraded_activations",
    "bus_errors",
    "bus_retries",
)


class PageHealth:
    """Per-page defect budget and disposition."""

    __slots__ = (
        "spare_rows_left",
        "migrations",
        "activations",
        "degraded",
        "degrade_reason",
        "frame",
    )

    def __init__(self, spare_rows: int) -> None:
        self.spare_rows_left = spare_rows
        self.migrations = 0
        self.activations = 0
        self.degraded = False
        self.degrade_reason: Optional[str] = None
        self.frame: Optional[Frame] = None


class FaultController:
    """Applies a :class:`FaultConfig` to one simulated RADram machine."""

    def __init__(self, config: FaultConfig, radram) -> None:
        self.config = config
        self.radram = radram
        self.injector = FaultInjector(config, pages_per_chip=radram.pages_per_chip)
        self.frames = FrameAllocator(
            n_chips=config.n_chips, frames_per_chip=radram.pages_per_chip
        )
        # Migration pays a memory-to-memory move plus (for configured
        # pages) whatever reconfiguration the technology charges; no
        # disk is involved, so disk latency plays no part.
        self.pager = Pager(
            n_frames=config.n_chips * radram.pages_per_chip,
            costs=SwapCosts(
                page_bytes=radram.page_bytes,
                reconfig_ns=radram.reconfig_ns_per_page,
            ),
        )
        self._pages: Dict[int, PageHealth] = {}
        self._transfers = 0
        self._force_bus_error = False
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    # ------------------------------------------------------------------
    # Observability helpers

    def _instant(self, name: str, ts: float, **args) -> None:
        tr = _trace.TRACER
        if tr is not None:
            tr.instant("faults", name, ts, **args)

    def _count(self, name: str, ts: float, by: int = 1) -> None:
        self.counters[name] += by
        tr = _trace.TRACER
        if tr is not None:
            tr.counter("faults", name, ts, self.counters[name])

    def counters_dict(self) -> Dict[str, float]:
        """All fault counters, as floats (metrics/sweep-value ready)."""
        out = {name: float(self.counters[name]) for name in COUNTER_NAMES}
        out["pages_touched"] = float(len(self._pages))
        return out

    # ------------------------------------------------------------------
    # Page health

    def is_degraded(self, page_no: int) -> bool:
        health = self._pages.get(page_no)
        return health is not None and health.degraded

    def degraded_pages(self):
        """Page numbers currently degraded to processor-only execution."""
        return sorted(p for p, h in self._pages.items() if h.degraded)

    def _degrade(self, page_no: int, health: PageHealth, reason: str, ts: float) -> None:
        health.degraded = True
        health.degrade_reason = reason
        self._count("degraded_pages", ts)
        self._instant("degrade", ts, page=page_no, reason=reason)
        raise FaultError(f"page {page_no} degraded to processor-only: {reason}")

    def _health(self, page_no: int, logic, proc) -> PageHealth:
        """The page's health record; first touch draws its defect map."""
        health = self._pages.get(page_no)
        if health is not None:
            return health
        health = PageHealth(self.config.spare_rows)
        self._pages[page_no] = health
        try:
            health.frame = self.frames.allocate(f"page/{page_no}", 1)[0]
        except OutOfFramesError:
            health.frame = None  # more pages than frames: untracked
        # Residency bookkeeping only — swap costs are the separate
        # repro.os paging study, not part of this machine's timeline.
        self.pager.bind(page_no)
        self.pager.touch(page_no)
        defects = self.injector.le_defects(page_no)
        if defects:
            self._count("le_defects", proc.now, by=defects)
            try:
                consumed = logic.remap_defects(defects, self.config.spare_le_columns)
            except FaultError:
                self._degrade(
                    page_no,
                    health,
                    f"{defects} fabrication defects exceed "
                    f"{self.config.spare_le_columns} spare LE column(s)",
                    proc.now,
                )
            else:
                if consumed:
                    self._count("le_columns_remapped", proc.now, by=consumed)
                    self._instant("remap", proc.now, page=page_no, kind="le-column", n=consumed)
        return health

    # ------------------------------------------------------------------
    # Fault application

    def on_activate(self, page_no: int, logic, proc) -> bool:
        """Apply dispatch-time faults for one activation.

        Returns ``True`` when the page may run the activation on its
        logic; ``False`` when the page is already degraded.  Raises
        :class:`FaultError` when a fault degrades the page *now* (the
        memory system catches it and falls back to the processor).
        """
        health = self._health(page_no, logic, proc)
        if health.degraded:
            return False
        health.activations += 1
        cycle = health.activations
        kinds = [entry.kind for entry in self.injector.scheduled(page_no, cycle)]
        flip = self.injector.bit_flip(page_no, cycle)
        if flip is not None:
            kinds.append(flip)
        if self.injector.hard_fault(page_no, cycle):
            kinds.append(HARD_FAULT)
        for kind in kinds:
            if kind == BIT_FLIP:
                self._apply_bit_flip(page_no, health, proc)
            elif kind == DOUBLE_BIT:
                self._apply_uncorrectable(page_no, health, proc)
            elif kind == HARD_FAULT:
                self._apply_hard_fault(page_no, health, proc)
            elif kind == BUS_ERROR:
                self._force_bus_error = True
        self.pager.begin_computation(page_no)
        return True

    def on_wait(self, page_no: int, proc) -> bool:
        """Apply scheduled in-flight faults while the processor waits.

        Returns ``True`` when the page migrated and the in-flight
        activation must be *replayed* on the new frame.  Raises
        :class:`FaultError` when the fault degrades the page instead.
        """
        health = self._pages.get(page_no)
        if health is None or health.degraded:
            return False
        entries = self.injector.take_in_flight(page_no, health.activations)
        replay = False
        for entry in entries:
            if entry.kind == HARD_FAULT:
                # The row died under an active computation: spare-row
                # remapping cannot recover the lost state — migrate and
                # replay, or degrade when the budget is spent.
                self._count("hard_faults", proc.now)
                self._instant("hard", proc.now, page=page_no, in_flight=True)
                self._migrate_or_degrade(page_no, health, proc, in_flight=True)
                replay = True
            elif entry.kind == BIT_FLIP:
                self._apply_bit_flip(page_no, health, proc)
            elif entry.kind == DOUBLE_BIT:
                self._apply_uncorrectable(page_no, health, proc)
        if replay:
            self._count("replays", proc.now)
        return replay

    def on_complete(self, page_no: int) -> None:
        """The page's activation finished (pager bookkeeping)."""
        if page_no in self._pages:
            self.pager.end_computation(page_no)

    def transfer_retry_ns(self, nbytes: int, bus, ts: float) -> float:
        """Extra bus time when this transfer draws a corruption.

        The corrupted transfer is detected (checksum) and retransmitted
        once; the retry occupies the bus again and its duration is
        returned for the caller to charge.
        """
        self._transfers += 1
        hit = self._force_bus_error or self.injector.bus_error(self._transfers)
        self._force_bus_error = False
        if not hit:
            return 0.0
        self._count("bus_errors", ts)
        self._count("bus_retries", ts)
        self._instant("bus-retry", ts, bytes=nbytes)
        return bus.transfer(nbytes)

    # ------------------------------------------------------------------
    # Tolerance mechanisms

    def _apply_bit_flip(self, page_no: int, health: PageHealth, proc) -> None:
        self._count("bit_flips", proc.now)
        self._instant("bitflip", proc.now, page=page_no)
        if not self.config.ecc:
            self._count("uncorrectable", proc.now)
            self._degrade(page_no, health, "bit flip with ECC disabled", proc.now)
        # SEC-DED corrects the single-bit flip; the scrub writes the
        # corrected word back and costs processor time.
        self._count("corrected", proc.now)
        self._count("scrubs", proc.now)
        proc.charge("scrub_ns", self.config.scrub_ns)
        self._instant("scrub", proc.now, page=page_no)

    def _apply_uncorrectable(self, page_no: int, health: PageHealth, proc) -> None:
        self._count("bit_flips", proc.now)
        self._count("uncorrectable", proc.now)
        self._instant("bitflip", proc.now, page=page_no, bits=2)
        try:
            self._degrade(page_no, health, "multi-bit upset beyond SEC-DED", proc.now)
        except FaultError as exc:
            raise UncorrectableFaultError(str(exc)) from None

    def _apply_hard_fault(self, page_no: int, health: PageHealth, proc) -> None:
        self._count("hard_faults", proc.now)
        self._instant("hard", proc.now, page=page_no)
        if health.spare_rows_left > 0:
            health.spare_rows_left -= 1
            self._count("row_remaps", proc.now)
            self._instant("remap", proc.now, page=page_no, kind="spare-row")
            return
        self._migrate_or_degrade(page_no, health, proc, in_flight=False)

    def _migrate_or_degrade(
        self, page_no: int, health: PageHealth, proc, in_flight: bool
    ) -> None:
        if health.migrations >= self.config.migration_limit:
            self._degrade(
                page_no, health, "spare rows and migration budget exhausted", proc.now
            )
        if health.frame is not None:
            try:
                health.frame = self.frames.migrate(health.frame, f"page/{page_no}")
            except OutOfFramesError:
                self._degrade(page_no, health, "no healthy frame left", proc.now)
        cost = self.pager.migrate(page_no)
        health.migrations += 1
        # A fresh subarray brings fresh spare rows.
        health.spare_rows_left = self.config.spare_rows
        proc.charge("migration_ns", cost)
        self._count("migrations", proc.now)
        self._instant(
            "migrate",
            proc.now,
            page=page_no,
            cost_ns=cost,
            in_flight=in_flight,
            chip=None if health.frame is None else health.frame.chip,
        )
