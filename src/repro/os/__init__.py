"""Operating-system integration for Active Pages (paper Section 10).

"Active Pages are similar to both memory pages and parallel
processors.  Several open operating system issues exist such as
allocation policies, paging mechanisms, scheduling, and security.  Of
particular concern is the high cost of swapping Active Pages to and
from disk."

* :mod:`repro.os.frames` — physical frame allocation with group
  co-location policies.
* :mod:`repro.os.paging` — demand paging and replacement; Active-Page
  swaps pay reconfiguration on top of the disk transfer, and an
  activity-aware replacement policy avoids evicting configured or
  computing pages.
* :mod:`repro.os.scheduler` — multi-process scheduling of Active-Page
  computations with per-process isolation (a process may only
  activate pages of its own groups).
"""

from repro.os.frames import FrameAllocator, OutOfFramesError
from repro.os.paging import PagingPolicy, Pager, SwapCosts
from repro.os.scheduler import IsolationError, Process, Scheduler

__all__ = [
    "FrameAllocator",
    "IsolationError",
    "OutOfFramesError",
    "Pager",
    "PagingPolicy",
    "Process",
    "Scheduler",
    "SwapCosts",
]
