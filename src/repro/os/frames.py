"""Physical frame allocation for Active Pages.

Physical memory is a set of RADram chips, each contributing a fixed
number of 512 KB page frames.  Allocation policy matters more than for
conventional memory: pages of one group coordinate (and may one day
communicate in-chip, Section 10), so the allocator prefers placing a
group's pages on as few chips as possible — the ``co-locate`` policy —
while ``first-fit`` models a conventional allocator for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class OutOfFramesError(Exception):
    """No free physical frames remain (the pager must evict)."""


@dataclass(frozen=True)
class Frame:
    """One physical Active-Page frame."""

    chip: int
    index: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Frame(chip={self.chip}, index={self.index})"


class FrameAllocator:
    """Tracks frame ownership across chips."""

    def __init__(self, n_chips: int, frames_per_chip: int, policy: str = "co-locate") -> None:
        if n_chips <= 0 or frames_per_chip <= 0:
            raise ValueError("need at least one chip and one frame per chip")
        if policy not in ("co-locate", "first-fit"):
            raise ValueError(f"unknown allocation policy {policy!r}")
        self.policy = policy
        self._free: Dict[int, List[int]] = {
            chip: list(range(frames_per_chip)) for chip in range(n_chips)
        }
        self._owner: Dict[Frame, str] = {}
        #: frames permanently removed from service by hard defects.
        self._retired: Set[Frame] = set()
        self.n_chips = n_chips
        self.frames_per_chip = frames_per_chip

    @property
    def free_frames(self) -> int:
        return sum(len(v) for v in self._free.values())

    @property
    def used_frames(self) -> int:
        return len(self._owner)

    def owner_of(self, frame: Frame) -> Optional[str]:
        return self._owner.get(frame)

    def frames_of(self, group_id: str) -> List[Frame]:
        return sorted(
            (f for f, owner in self._owner.items() if owner == group_id),
            key=lambda f: (f.chip, f.index),
        )

    # ------------------------------------------------------------------

    def allocate(self, group_id: str, n_frames: int) -> List[Frame]:
        """Allocate frames for a group, honouring the policy."""
        if n_frames <= 0:
            raise ValueError("must allocate at least one frame")
        if n_frames > self.free_frames:
            raise OutOfFramesError(
                f"{n_frames} frames requested, {self.free_frames} free"
            )
        chosen: List[Frame] = []
        if self.policy == "co-locate":
            # Fill the emptiest-fitting chips first: fewest chips per
            # group.  Prefer chips that can take the largest share.
            remaining = n_frames
            chips = sorted(
                self._free, key=lambda c: len(self._free[c]), reverse=True
            )
            for chip in chips:
                take = min(remaining, len(self._free[chip]))
                for _ in range(take):
                    chosen.append(Frame(chip, self._free[chip].pop(0)))
                remaining -= take
                if remaining == 0:
                    break
        else:  # first-fit
            remaining = n_frames
            for chip in sorted(self._free):
                while remaining and self._free[chip]:
                    chosen.append(Frame(chip, self._free[chip].pop(0)))
                    remaining -= 1
                if remaining == 0:
                    break
        for frame in chosen:
            self._owner[frame] = group_id
        return chosen

    def release(self, frame: Frame) -> None:
        """Return one frame to the free pool."""
        owner = self._owner.pop(frame, None)
        if owner is None:
            raise KeyError(f"{frame} is not allocated")
        self._free[frame.chip].append(frame.index)

    def release_group(self, group_id: str) -> int:
        """Free all of a group's frames; returns how many."""
        frames = self.frames_of(group_id)
        for frame in frames:
            self.release(frame)
        return len(frames)

    def chips_spanned(self, group_id: str) -> int:
        """How many chips a group's frames touch (locality metric)."""
        return len({f.chip for f in self.frames_of(group_id)})

    # ------------------------------------------------------------------
    # Defect handling (fault tolerance)

    @property
    def retired_frames(self) -> Set[Frame]:
        """Frames permanently taken out of service (a copy)."""
        return set(self._retired)

    def retire(self, frame: Frame) -> None:
        """Permanently remove a defective frame from service.

        The frame leaves its owner (if any) and never returns to the
        free pool — a hard subarray failure is not repairable by
        releasing.  Retiring a free frame removes it from the pool.
        """
        if frame in self._retired:
            return
        self._owner.pop(frame, None)
        try:
            self._free[frame.chip].remove(frame.index)
        except (KeyError, ValueError):
            pass  # was allocated, not free
        self._retired.add(frame)

    def migrate(self, frame: Frame, group_id: Optional[str] = None) -> Frame:
        """Replace a defective frame: retire it, allocate a healthy one.

        The replacement prefers the same chip (keeping the group's
        co-location intact); when that chip has no free frames the
        normal allocation policy picks another.  Raises
        :class:`OutOfFramesError` when no healthy frame remains.
        """
        owner = self._owner.get(frame) if group_id is None else group_id
        self.retire(frame)
        if owner is None:
            owner = f"migrated:{frame.chip}:{frame.index}"
        if self._free.get(frame.chip):
            replacement = Frame(frame.chip, self._free[frame.chip].pop(0))
            self._owner[replacement] = owner
            return replacement
        if self.free_frames == 0:
            raise OutOfFramesError("no healthy frames left to migrate onto")
        return self.allocate(owner, 1)[0]
