"""Multi-process scheduling and isolation for Active-Page systems.

Active Pages make the memory system a compute resource the OS must
multiplex.  The scheduler here models the essentials:

* **Isolation** — a process may only activate pages of groups it owns;
  cross-process activation raises :class:`IsolationError` (the paper's
  "security" open issue).
* **Dispatch accounting** — activations from runnable processes are
  issued round-robin (optionally priority-weighted); the processor is
  the serializing resource, pages of different processes compute
  concurrently.
* **Fairness metrics** — per-process dispatched activations and
  aggregate page-parallelism, so policies can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.engine import Engine


class IsolationError(Exception):
    """A process touched another process's Active Pages."""


@dataclass
class Process:
    """One process and the page groups it owns."""

    pid: int
    priority: int = 1
    groups: Set[str] = field(default_factory=set)
    dispatched: int = 0
    completed: int = 0

    def owns(self, group_id: str) -> bool:
        return group_id in self.groups


@dataclass(frozen=True)
class _Request:
    pid: int
    group_id: str
    page_index: int
    duration_ns: float


class Scheduler:
    """Round-robin (priority-weighted) activation dispatcher."""

    #: processor time to dispatch one activation.
    DISPATCH_NS = 800.0

    def __init__(self) -> None:
        self._processes: Dict[int, Process] = {}
        self._queues: Dict[int, List[_Request]] = {}
        self.now_ns = 0.0
        #: discrete-event queue of in-flight page completions.
        self._engine = Engine()
        self._in_flight = 0
        self.max_parallelism = 0

    # ------------------------------------------------------------------
    # Setup

    def register(self, process: Process) -> None:
        if process.pid in self._processes:
            raise ValueError(f"pid {process.pid} already registered")
        self._processes[process.pid] = process
        self._queues[process.pid] = []

    def grant(self, pid: int, group_id: str) -> None:
        """Give a process ownership of a page group."""
        self._processes[pid].groups.add(group_id)

    # ------------------------------------------------------------------
    # Request submission (isolation enforced here)

    def submit(
        self, pid: int, group_id: str, page_index: int, duration_ns: float
    ) -> None:
        process = self._processes.get(pid)
        if process is None:
            raise KeyError(f"unknown pid {pid}")
        if not process.owns(group_id):
            raise IsolationError(
                f"pid {pid} tried to activate group {group_id!r} it does not own"
            )
        self._queues[pid].append(_Request(pid, group_id, page_index, duration_ns))

    # ------------------------------------------------------------------
    # Dispatch

    def run(self) -> float:
        """Dispatch everything; returns the makespan in ns.

        The processor issues one activation at a time (DISPATCH_NS
        each), cycling over runnable processes; each process gets
        ``priority`` consecutive dispatches per cycle.  Page
        computations overlap freely.
        """
        pids = sorted(self._queues)
        while any(self._queues[pid] for pid in pids):
            for pid in pids:
                budget = self._processes[pid].priority
                while budget and self._queues[pid]:
                    request = self._queues[pid].pop(0)
                    self.now_ns += self.DISPATCH_NS
                    self._in_flight += 1
                    self._engine.schedule_at(
                        self.now_ns + request.duration_ns,
                        self._completion_of(pid),
                    )
                    self._processes[pid].dispatched += 1
                    self._engine.run_until(self.now_ns)
                    self.max_parallelism = max(
                        self.max_parallelism, self._in_flight
                    )
                    budget -= 1
        # Wait for the last pages.
        last = self._engine.peek_time()
        if last is not None:
            self._engine.run_until_idle()
            self.now_ns = max(self.now_ns, self._engine.now)
        return self.now_ns

    def _completion_of(self, pid: int):
        def complete() -> None:
            self._processes[pid].completed += 1
            self._in_flight -= 1

        return complete

    # ------------------------------------------------------------------

    def process(self, pid: int) -> Process:
        return self._processes[pid]

    def fairness(self) -> Dict[int, float]:
        """Dispatched share per process (fractions summing to 1)."""
        total = sum(p.dispatched for p in self._processes.values())
        if total == 0:
            return {pid: 0.0 for pid in self._processes}
        return {
            pid: p.dispatched / total for pid, p in self._processes.items()
        }
