"""Demand paging for Active Pages.

The paper's Section 10 concern: "the high cost of swapping Active
Pages to and from disk.  Current FPGA technologies take 100s of
milliseconds to reconfigure" — an Active Page brought back from disk
must reload its data *and* its logic configuration, making its fault
"2-4 times larger than for conventional pages" (Section 6).  Pages
that never bound functions pay only the conventional cost.

The pager tracks residency over a reference string and compares
replacement policies:

* ``lru`` — classic least-recently-used, configuration-blind.
* ``active-aware`` — LRU that prefers evicting *passive* pages
  (no bound functions) over configured ones, and never evicts a page
  whose computation is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.check import runtime as _check


@dataclass(frozen=True)
class SwapCosts:
    """Time to fault a page in, by kind (ns)."""

    disk_latency_ns: float = 5e6  # 5 ms seek+rotate
    transfer_ns_per_byte: float = 0.1  # ~10 MB/ms late-90s disk
    page_bytes: int = 512 * 1024
    #: reconfiguration on top of the data transfer for active pages.
    reconfig_ns: float = 100e6  # "100s of milliseconds" era default

    def conventional_fault_ns(self) -> float:
        return self.disk_latency_ns + self.transfer_ns_per_byte * self.page_bytes

    def active_fault_ns(self) -> float:
        return self.conventional_fault_ns() + self.reconfig_ns

    @property
    def active_multiplier(self) -> float:
        """How much worse an active fault is (the paper's 2-4x is the
        projected fast-reconfiguration regime; FPGA-era is worse)."""
        return self.active_fault_ns() / self.conventional_fault_ns()

    def migration_ns(self, configured: bool = True) -> float:
        """Memory-to-memory move of a page onto a healthy frame.

        No disk is involved — the data crosses the memory system once —
        but a *configured* Active Page must also reload its logic, the
        same reconfiguration surcharge an active disk fault pays.
        """
        cost = self.transfer_ns_per_byte * self.page_bytes
        if configured:
            cost += self.reconfig_ns
        return cost


@dataclass
class PageState:
    page_id: int
    configured: bool = False  # has bound functions
    computing: bool = False  # activation in flight


class PagingPolicy:
    LRU = "lru"
    ACTIVE_AWARE = "active-aware"


class Pager:
    """Residency manager over a fixed number of physical frames."""

    def __init__(
        self,
        n_frames: int,
        policy: str = PagingPolicy.ACTIVE_AWARE,
        costs: Optional[SwapCosts] = None,
    ) -> None:
        if n_frames <= 0:
            raise ValueError("need at least one frame")
        if policy not in (PagingPolicy.LRU, PagingPolicy.ACTIVE_AWARE):
            raise ValueError(f"unknown policy {policy!r}")
        self.n_frames = n_frames
        self.policy = policy
        self.costs = costs or SwapCosts()
        self._resident: List[int] = []  # LRU order: front = most recent
        self._pages: Dict[int, PageState] = {}
        self.faults = 0
        self.accesses = 0
        self.evictions = 0
        self.fault_ns = 0.0
        self.migrations = 0
        self.migration_ns = 0.0

    def _state(self, page_id: int) -> PageState:
        if page_id not in self._pages:
            self._pages[page_id] = PageState(page_id)
        return self._pages[page_id]

    # ------------------------------------------------------------------
    # Page attributes

    def bind(self, page_id: int) -> None:
        """Mark a page configured (functions bound)."""
        self._state(page_id).configured = True

    def begin_computation(self, page_id: int) -> None:
        self.touch(page_id)
        state = self._state(page_id)
        ck = _check.CHECKER
        if ck is not None:
            ck.on_begin_computation(page_id, state.computing)
        state.computing = True

    def end_computation(self, page_id: int) -> None:
        state = self._state(page_id)
        ck = _check.CHECKER
        if ck is not None:
            ck.on_end_computation(page_id, state.computing)
        state.computing = False

    # ------------------------------------------------------------------
    # The reference string

    def touch(self, page_id: int) -> float:
        """Access a page; returns the fault cost paid (0 on a hit)."""
        self.accesses += 1
        state = self._state(page_id)
        if page_id in self._resident:
            self._resident.remove(page_id)
            self._resident.insert(0, page_id)
            return 0.0
        # Fault: evict if full, then bring in.
        cost = (
            self.costs.active_fault_ns()
            if state.configured
            else self.costs.conventional_fault_ns()
        )
        self.faults += 1
        self.fault_ns += cost
        if len(self._resident) >= self.n_frames:
            self._evict()
        self._resident.insert(0, page_id)
        return cost

    def migrate(self, page_id: int) -> float:
        """Move a page to a healthy frame; returns the cost paid (ns).

        Migration is the fault-tolerance remap path: the page's frame
        went bad, so its data (and, for configured pages, its logic
        configuration) moves memory-to-memory onto a spare frame.
        Residency is preserved — the page was not evicted, it was
        relocated — and it becomes most-recently-used: the migration
        itself touched every byte.
        """
        state = self._state(page_id)
        cost = self.costs.migration_ns(configured=state.configured)
        self.migrations += 1
        self.migration_ns += cost
        if page_id in self._resident:
            self._resident.remove(page_id)
            self._resident.insert(0, page_id)
        return cost

    def _evict(self) -> None:
        victim = self._pick_victim()
        self._resident.remove(victim)
        self.evictions += 1

    def _pick_victim(self) -> int:
        candidates = list(reversed(self._resident))  # LRU end first
        if self.policy == PagingPolicy.LRU:
            # Configuration-blind, but never a computing page (that
            # would corrupt an in-flight activation on any policy).
            for page_id in candidates:
                if not self._pages[page_id].computing:
                    return page_id
            raise self._victim_exhaustion()
        # Active-aware: passive pages first (cheap to refault), then
        # configured ones; computing pages never.
        for page_id in candidates:
            state = self._pages[page_id]
            if not state.computing and not state.configured:
                return page_id
        for page_id in candidates:
            if not self._pages[page_id].computing:
                return page_id
        raise self._victim_exhaustion()

    def _victim_exhaustion(self) -> RuntimeError:
        """No evictable frame: every resident page is mid-computation."""
        computing = sorted(p for p in self._resident if self._pages[p].computing)
        ck = _check.CHECKER
        if ck is not None:
            ck.on_victim_exhaustion(self.n_frames, computing)
        return RuntimeError(
            f"cannot evict: all {self.n_frames} resident frames hold "
            f"computing pages (policy={self.policy!r}, "
            f"computing={computing[:8]}"
            + ("...)" if len(computing) > 8 else ")")
        )

    # ------------------------------------------------------------------

    @property
    def resident(self) -> Set[int]:
        return set(self._resident)

    @property
    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0
