"""Text visualization of simulation runs.

``render_gantt`` draws the processor/pages overlap picture of the
paper's Figure 6 — activation ramps, parallel page computation,
post-processing — for any simulated run, as plain text.
"""

from repro.viz.gantt import (
    page_intervals,
    page_intervals_from_events,
    render_gantt,
    render_gantt_events,
)

__all__ = [
    "page_intervals",
    "page_intervals_from_events",
    "render_gantt",
    "render_gantt_events",
]
