"""ASCII Gantt rendering of Active-Page executions.

Reconstructs the paper's Figure 6 ("abstract view of processor and
Active-Page memory activity") from a real simulation: one row per
page showing when its logic computed, plus a processor row showing
busy vs stalled time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.radram.system import RADramMemorySystem
from repro.sim.stats import MachineStats

Interval = Tuple[float, float]


def page_intervals(memsys: RADramMemorySystem) -> Dict[int, List[Interval]]:
    """(start, end) activation intervals per page number."""
    out: Dict[int, List[Interval]] = {}
    for page_no, sub in sorted(memsys.subarrays.items()):
        intervals = sub.intervals()
        if intervals:
            out[page_no] = intervals
    return out


def _paint(row: List[str], start: float, end: float, total: float, char: str) -> None:
    width = len(row)
    lo = int(width * start / total)
    hi = max(lo + 1, int(width * end / total))
    for i in range(lo, min(hi, width)):
        row[i] = char


def render_gantt(
    memsys: RADramMemorySystem,
    stats: MachineStats,
    width: int = 72,
    max_pages: int = 16,
) -> str:
    """Render the run as text.

    ``#`` marks page-logic computation, ``=`` processor busy time and
    ``.`` processor stall (non-overlap).  Pages beyond ``max_pages``
    are summarized.
    """
    intervals = page_intervals(memsys)
    total = stats.total_ns
    if total <= 0 or not intervals:
        return "(no page activity recorded)"
    lines = [f"time: 0 .. {total / 1e3:.1f} us   (# page busy, = CPU busy, . CPU stall)"]
    shown = 0
    for page_no, spans in intervals.items():
        if shown >= max_pages:
            lines.append(f"... {len(intervals) - shown} more pages")
            break
        row = [" "] * width
        for start, end in spans:
            _paint(row, start, min(end, total), total, "#")
        lines.append(f"page {page_no % 100_000:>6} |{''.join(row)}|")
        shown += 1
    # Processor row: approximate busy-vs-stall split along the run
    # (exact interval bookkeeping lives in the stats categories).
    cpu = [" "] * width
    busy_frac = min(1.0, stats.busy_ns / total)
    _paint(cpu, 0.0, busy_frac * total, total, "=")
    if stats.wait_ns > 0:
        _paint(cpu, busy_frac * total, total, total, ".")
    lines.append(f"{'processor':>11} |{''.join(cpu)}|")
    lines.append(
        f"{'':>11}  busy {100 * stats.busy_ns / total:.0f}%  "
        f"stalled {100 * stats.wait_ns / total:.0f}%  "
        f"({stats.activations} activations, {stats.interrupts} interrupts)"
    )
    return "\n".join(lines)
