"""ASCII Gantt rendering of Active-Page executions, from trace events.

Reconstructs the paper's Figure 6 ("abstract view of processor and
Active-Page memory activity") from the structured events of
:mod:`repro.trace`: one row per page showing when its logic computed
(``"X"`` spans named ``compute`` on ``page/<n>`` tracks), plus a
processor row showing busy vs stalled time.

The renderer is trace-native — any event source works: a live
:class:`~repro.trace.events.Tracer` from a traced run, a list of
events re-loaded from an export, or the synthesized event form of a
finished memory system (:meth:`RADramMemorySystem.page_trace_events`),
which is what the ``render_gantt(memsys, ...)`` compatibility entry
point uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.radram.system import RADramMemorySystem
from repro.sim.stats import MachineStats
from repro.trace.events import Event

Interval = Tuple[float, float]

#: Track prefix carrying page-logic computation spans.
PAGE_TRACK_PREFIX = "page/"


def page_intervals_from_events(
    events: Iterable[Event],
) -> Dict[int, List[Interval]]:
    """(start, end) activation intervals per page, from ``"X"`` events.

    Per-page interval order follows event order (chronological for any
    tracer-produced stream); pages are sorted by page number.
    """
    raw: Dict[int, List[Interval]] = {}
    for event in events:
        if (
            event.ph == "X"
            and event.name == "compute"
            and event.track.startswith(PAGE_TRACK_PREFIX)
        ):
            page_no = int(event.track[len(PAGE_TRACK_PREFIX):])
            raw.setdefault(page_no, []).append((event.ts, event.ts + event.dur))
    return {page_no: raw[page_no] for page_no in sorted(raw)}


def page_intervals(memsys: RADramMemorySystem) -> Dict[int, List[Interval]]:
    """(start, end) activation intervals per page number."""
    return page_intervals_from_events(memsys.page_trace_events())


def _paint(row: List[str], start: float, end: float, total: float, char: str) -> None:
    width = len(row)
    lo = int(width * start / total)
    hi = max(lo + 1, int(width * end / total))
    for i in range(lo, min(hi, width)):
        row[i] = char


def render_gantt_events(
    events: Iterable[Event],
    stats: MachineStats,
    width: int = 72,
    max_pages: int = 16,
) -> str:
    """Render a traced run as text.

    ``#`` marks page-logic computation, ``=`` processor busy time and
    ``.`` processor stall (non-overlap).  Pages beyond ``max_pages``
    are summarized.
    """
    intervals = page_intervals_from_events(events)
    total = stats.total_ns
    if total <= 0 or not intervals:
        return "(no page activity recorded)"
    lines = [f"time: 0 .. {total / 1e3:.1f} us   (# page busy, = CPU busy, . CPU stall)"]
    shown = 0
    for page_no, spans in intervals.items():
        if shown >= max_pages:
            lines.append(f"... {len(intervals) - shown} more pages")
            break
        row = [" "] * width
        for start, end in spans:
            _paint(row, start, min(end, total), total, "#")
        lines.append(f"page {page_no % 100_000:>6} |{''.join(row)}|")
        shown += 1
    # Processor row: approximate busy-vs-stall split along the run
    # (exact interval bookkeeping lives in the stats categories).
    cpu = [" "] * width
    busy_frac = min(1.0, stats.busy_ns / total)
    _paint(cpu, 0.0, busy_frac * total, total, "=")
    if stats.wait_ns > 0:
        _paint(cpu, busy_frac * total, total, total, ".")
    lines.append(f"{'processor':>11} |{''.join(cpu)}|")
    lines.append(
        f"{'':>11}  busy {100 * stats.busy_ns / total:.0f}%  "
        f"stalled {100 * stats.wait_ns / total:.0f}%  "
        f"({stats.activations} activations, {stats.interrupts} interrupts)"
    )
    return "\n".join(lines)


def render_gantt(
    memsys: RADramMemorySystem,
    stats: MachineStats,
    width: int = 72,
    max_pages: int = 16,
) -> str:
    """Render a finished run directly from its memory system.

    Compatibility wrapper: synthesizes the page trace events from the
    subarray interval history and delegates to
    :func:`render_gantt_events`.
    """
    return render_gantt_events(
        memsys.page_trace_events(), stats, width=width, max_pages=max_pages
    )
