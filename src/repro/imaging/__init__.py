"""Image-processing filters on Active Pages (paper Section 5.1).

"Image processing and signal processing have been traditional
strengths of FPGA's and custom processor technologies" — the paper
measures median filtering; this package generalizes the same
row-banded partitioning to the rest of the 3x3 neighbourhood family:
convolution (sharpen/blur/Sobel), and morphological erosion/dilation.
Every filter has a functional implementation, a circuit netlist that
fits the 256-LE budget, and a timed run on both systems.
"""

from repro.imaging.filters import (
    FILTERS,
    Filter,
    convolve3x3,
    dilate3x3,
    erode3x3,
    filter_timed,
    sobel_magnitude,
)

__all__ = [
    "FILTERS",
    "Filter",
    "convolve3x3",
    "dilate3x3",
    "erode3x3",
    "filter_timed",
    "sobel_magnitude",
]
