"""3x3 neighbourhood filters: functional, circuit, and timed forms.

All filters follow the median application's layout: the image splits
into row bands (one Active Page each, with halo rows), the page logic
streams pixels through a small neighbourhood datapath, and borders are
copied unchanged.  Functional implementations are pure numpy and are
the oracles for both systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.sim.stats import MachineStats
from repro.synth.lut import le_count
from repro.synth.netlist import Netlist, OpKind

# ----------------------------------------------------------------------
# Functional implementations


def _neighbourhood(image: np.ndarray) -> np.ndarray:
    """Stack of the nine 3x3 neighbours for interior pixels."""
    h, w = image.shape
    return np.stack(
        [image[i : i + h - 2, j : j + w - 2] for i in range(3) for j in range(3)]
    )


def _apply_interior(image: np.ndarray, interior: np.ndarray) -> np.ndarray:
    out = image.copy()
    out[1:-1, 1:-1] = interior
    return out


def convolve3x3(image: np.ndarray, kernel: np.ndarray, shift: int = 0) -> np.ndarray:
    """Integer 3x3 convolution with a power-of-two normalizing shift.

    Fixed-point semantics a page circuit implements: multiply-accumulate
    in wide precision, arithmetic shift right, clamp to the pixel type.
    Borders are copied.
    """
    kernel = np.asarray(kernel, dtype=np.int32)
    if kernel.shape != (3, 3):
        raise ValueError("kernel must be 3x3")
    stack = _neighbourhood(image.astype(np.int64))
    acc = np.tensordot(kernel.ravel(), stack, axes=(0, 0))
    acc >>= shift
    info = np.iinfo(image.dtype)
    return _apply_interior(image, np.clip(acc, info.min, info.max).astype(image.dtype))


def erode3x3(image: np.ndarray) -> np.ndarray:
    """Morphological erosion: each pixel becomes its 3x3 minimum."""
    return _apply_interior(image, np.min(_neighbourhood(image), axis=0))


def dilate3x3(image: np.ndarray) -> np.ndarray:
    """Morphological dilation: each pixel becomes its 3x3 maximum."""
    return _apply_interior(image, np.max(_neighbourhood(image), axis=0))


SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])
SOBEL_Y = SOBEL_X.T


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Edge strength: |Gx| + |Gy| (the hardware-friendly L1 form)."""
    stack = _neighbourhood(image.astype(np.int64))
    gx = np.tensordot(SOBEL_X.ravel(), stack, axes=(0, 0))
    gy = np.tensordot(SOBEL_Y.ravel(), stack, axes=(0, 0))
    mag = np.abs(gx) + np.abs(gy)
    info = np.iinfo(image.dtype)
    return _apply_interior(image, np.clip(mag, 0, info.max).astype(image.dtype))


# ----------------------------------------------------------------------
# Circuits


def _filter_circuit(name: str, datapath_adds: int, comparators: int) -> Netlist:
    """Shared 3x3 filter skeleton: line buffers + datapath + walk."""
    n = Netlist(name)
    n.add(OpKind.COUNTER, 19, stage=0, name="addr")
    n.add(OpKind.LT, 19, stage=0, name="addr<end")
    # Two line buffers' worth of shift registers (window formation).
    n.add(OpKind.REG, 48, stage=1, name="window registers")
    for i in range(datapath_adds):
        n.add(OpKind.ADD, 16, stage=2, name=f"acc{i}")
    for i in range(comparators):
        n.add(OpKind.LT, 16, stage=2, name=f"cmp{i}")
        n.add(OpKind.MUX2, 16, stage=2, name=f"sel{i}")
    n.add(OpKind.FSM, 3, stage=1, name="control")
    return n


def convolve_circuit() -> Netlist:
    # Shift-add MACs for small integer kernels: 4 adders + clamp.
    n = _filter_circuit("Imaging-convolve", datapath_adds=4, comparators=0)
    n.add(OpKind.SATCLAMP, 16, stage=2, name="clamp")
    return n


def morphology_circuit() -> Netlist:
    # Min/max over 9 values: a 4-deep comparator tree, time-shared.
    return _filter_circuit("Imaging-morphology", datapath_adds=0, comparators=3)


def sobel_circuit() -> Netlist:
    n = _filter_circuit("Imaging-sobel", datapath_adds=5, comparators=1)
    n.add(OpKind.SATCLAMP, 16, stage=2, name="clamp")
    return n


# ----------------------------------------------------------------------
# The filter registry


@dataclass(frozen=True)
class Filter:
    """One neighbourhood filter: semantics plus cost models."""

    name: str
    apply: Callable[[np.ndarray], np.ndarray]
    circuit: Callable[[], Netlist]
    #: page-logic cycles per pixel.
    logic_cycles_per_pixel: float
    #: conventional instructions per pixel.
    conv_ops_per_pixel: float

    @property
    def le_count(self) -> int:
        return le_count(self.circuit())


FILTERS: Dict[str, Filter] = {
    f.name: f
    for f in [
        Filter(
            "sharpen",
            lambda img: convolve3x3(
                img, [[0, -1, 0], [-1, 8, -1], [0, -1, 0]], shift=2
            ),
            convolve_circuit,
            logic_cycles_per_pixel=1.5,
            conv_ops_per_pixel=22.0,
        ),
        Filter(
            "blur",
            lambda img: convolve3x3(
                img, [[1, 2, 1], [2, 4, 2], [1, 2, 1]], shift=4
            ),
            convolve_circuit,
            logic_cycles_per_pixel=1.5,
            conv_ops_per_pixel=22.0,
        ),
        Filter(
            "erode", erode3x3, morphology_circuit,
            logic_cycles_per_pixel=1.25, conv_ops_per_pixel=18.0,
        ),
        Filter(
            "dilate", dilate3x3, morphology_circuit,
            logic_cycles_per_pixel=1.25, conv_ops_per_pixel=18.0,
        ),
        Filter(
            "sobel", sobel_magnitude, sobel_circuit,
            logic_cycles_per_pixel=2.0, conv_ops_per_pixel=30.0,
        ),
    ]
}


# ----------------------------------------------------------------------
# Timed execution


def filter_timed(
    image: np.ndarray,
    filter_name: str,
    system: str = "radram",
    bands: Optional[int] = None,
    machine_config: Optional[MachineConfig] = None,
    radram_config: Optional[RADramConfig] = None,
) -> Tuple[np.ndarray, MachineStats]:
    """Apply a filter functionally and account the execution time."""
    try:
        filt = FILTERS[filter_name]
    except KeyError:
        raise KeyError(
            f"unknown filter {filter_name!r}; available: {sorted(FILTERS)}"
        ) from None
    result = filt.apply(image)
    h, w = image.shape
    pixels = h * w
    row_bytes = w * image.dtype.itemsize
    if system == "conventional":
        machine = Machine(config=machine_config)
        base = 0x7000_0000
        stream = []
        for r in range(h):
            stream.append(O.MemRead(base + r * row_bytes, row_bytes))
            stream.append(O.Compute(filt.conv_ops_per_pixel * w))
            stream.append(O.MemWrite(base + pixels * 2 + r * row_bytes, row_bytes))
        stats = machine.run(iter(stream))
    elif system == "radram":
        rconfig = radram_config or RADramConfig.reference()
        n_bands = bands or max(1, (pixels * image.dtype.itemsize) // (rconfig.page_bytes // 2))
        memsys = RADramMemorySystem(rconfig)
        machine = Machine(
            config=machine_config,
            memory=PagedMemory(page_bytes=rconfig.page_bytes),
            memsys=memsys,
        )
        base_page = 0x7000_0000 // rconfig.page_bytes
        per_band = pixels / n_bands
        stream = []
        for band in range(n_bands):
            task = PageTask.simple(per_band * filt.logic_cycles_per_pixel)
            stream.append(O.Activate(base_page + band, 3, task))
        for band in range(n_bands):
            stream.append(O.WaitPage(base_page + band))
            stream.append(O.Compute(400))
        stats = machine.run(iter(stream))
    else:
        raise ValueError(f"unknown system {system!r}")
    return result, stats
