"""8x8 Discrete Cosine Transform and quantization.

The DCT stays on the processor in the paper's partitioning — it is
floating-point-heavy, exactly what Active Pages hand back to the CPU.
The implementation is the standard type-II DCT as a separable pair of
8x8 matrix multiplies, vectorized over whole block arrays.
"""

from __future__ import annotations

import numpy as np

BLOCK = 8

#: MPEG-1-style intra quantization matrix (lower frequencies finer).
DEFAULT_QUANT = np.array(
    [
        [8, 16, 19, 22, 26, 27, 29, 34],
        [16, 16, 22, 24, 27, 29, 34, 37],
        [19, 22, 26, 27, 29, 34, 34, 38],
        [22, 22, 26, 27, 29, 34, 37, 40],
        [22, 26, 27, 29, 32, 35, 40, 48],
        [26, 27, 29, 32, 35, 40, 48, 58],
        [26, 27, 29, 34, 38, 46, 56, 69],
        [27, 29, 35, 38, 46, 56, 69, 83],
    ],
    dtype=np.float64,
)


def _dct_matrix() -> np.ndarray:
    """The orthonormal 8x8 DCT-II basis matrix."""
    k = np.arange(BLOCK)
    n = np.arange(BLOCK)
    basis = np.cos(np.pi * (2 * n[None, :] + 1) * k[:, None] / (2 * BLOCK))
    basis *= np.sqrt(2.0 / BLOCK)
    basis[0] *= np.sqrt(0.5)
    return basis


_C = _dct_matrix()
_CT = _C.T


def dct2(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of ``(..., 8, 8)`` blocks."""
    return _C @ blocks @ _CT


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of ``(..., 8, 8)`` coefficient blocks."""
    return _CT @ coeffs @ _C


def quantize(coeffs: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Quantize DCT coefficients to integer levels.

    Levels are int32: fine quantization scales produce level
    magnitudes well beyond int16.
    """
    q = DEFAULT_QUANT * scale
    return np.round(coeffs / q).astype(np.int32)


def dequantize(levels: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Reconstruct coefficients from quantized levels."""
    return levels.astype(np.float64) * (DEFAULT_QUANT * scale)


def blockize(image: np.ndarray) -> np.ndarray:
    """Split an (H, W) image into (H/8 * W/8, 8, 8) blocks."""
    h, w = image.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"image {h}x{w} is not a multiple of {BLOCK}")
    return (
        image.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .swapaxes(1, 2)
        .reshape(-1, BLOCK, BLOCK)
    )


def unblockize(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`blockize`."""
    hb, wb = height // BLOCK, width // BLOCK
    return (
        blocks.reshape(hb, wb, BLOCK, BLOCK).swapaxes(1, 2).reshape(height, width)
    )


def dct_flops(n_blocks: int) -> int:
    """Floating-point operations for ``n_blocks`` 8x8 DCTs.

    Two 8x8 matrix multiplies per block: 2 * (8*8*8 mul + 8*8*7 add).
    """
    return n_blocks * 2 * (512 + 448)
