"""The P-frame encoder/decoder, conventional and Active-Page forms.

Functional path (both systems compute exactly this):

    encode:  motion estimation -> prediction -> saturating residual
             -> 8x8 DCT -> quantize -> zigzag/RLE -> Huffman
    decode:  Huffman -> RLE -> dequantize -> IDCT -> saturating add
             to the motion-compensated prediction

Timed path: the paper's partitioning.  Conventional does everything on
the processor.  Active Pages run motion search, residual/reconstruction
(the wide MMX adds), RLE and Huffman in page logic; the processor keeps
the DCT/IDCT and quantization (floating point) and ships only DCT
blocks and coded bits across the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.functions import PageTask
from repro.mpeg import dct as D
from repro.mpeg import huffman as H
from repro.mpeg import motion as M
from repro.mpeg import rle as R
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.sim.stats import MachineStats

#: abs-diff/accumulate pairs the page's SAD adder tree retires per
#: logic cycle (a 16-wide tree fits ~150 LEs).
SAD_OPS_PER_CYCLE = 16.0
#: residual/reconstruction bytes per logic cycle (the MMX datapath).
MMX_BYTES_PER_CYCLE = 18.4
#: RLE symbols produced/consumed per logic cycle.
RLE_CYCLES_PER_COEFF = 0.25
#: Huffman bits emitted per logic cycle (serial shifter).
HUFFMAN_BITS_PER_CYCLE = 2.0

#: conventional instruction counts.
CONV_SAD_OPS = 1.5  # per abs-diff pair
CONV_MMX_OPS_PER_WORD = 3.0
CONV_RLE_OPS_PER_COEFF = 2.0
CONV_HUFFMAN_OPS_PER_BIT = 4.0
CONV_FLOPS_PER_OP = 1.0


@dataclass
class EncodedFrame:
    """A coded P-frame: motion vectors plus entropy-coded residual."""

    height: int
    width: int
    quant_scale: float
    vectors: List[List[M.MotionVector]]
    table: H.HuffmanTable
    payload: bytes
    n_bits: int
    n_symbols: int
    symbols_per_block: List[int]

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload)

    def compression_ratio(self) -> float:
        raw = self.height * self.width * 2
        return raw / max(1, self.compressed_bytes)


class MpegPipeline:
    """P-frame codec with functional and timed execution."""

    def __init__(self, quant_scale: float = 1.0, search: int = 4) -> None:
        self.quant_scale = quant_scale
        self.search = search

    # ------------------------------------------------------------------
    # Functional path

    def encode(self, current: np.ndarray, reference: np.ndarray) -> EncodedFrame:
        """Encode ``current`` against ``reference`` (both int16 (H, W))."""
        h, w = current.shape
        vectors = M.estimate_motion(current, reference, search=self.search)
        prediction = M.compensate(reference, vectors)
        resid = M.residual(current, prediction)
        coeffs = D.dct2(D.blockize(resid.astype(np.float64)))
        levels = D.quantize(coeffs, self.quant_scale)
        encoded = R.rle_encode(levels)
        symbols = [s for block in encoded for s in block]
        table = H.HuffmanTable.from_symbols(symbols)
        payload, n_bits = H.encode_symbols(symbols, table)
        return EncodedFrame(
            height=h,
            width=w,
            quant_scale=self.quant_scale,
            vectors=vectors,
            table=table,
            payload=payload,
            n_bits=n_bits,
            n_symbols=len(symbols),
            symbols_per_block=[len(block) for block in encoded],
        )

    def decode(self, frame: EncodedFrame, reference: np.ndarray) -> np.ndarray:
        """Reconstruct the frame from its coded form and the reference."""
        symbols = H.decode_symbols(
            frame.payload, frame.n_bits, frame.n_symbols, frame.table
        )
        blocks: List[List[Tuple[int, int]]] = []
        pos = 0
        for count in frame.symbols_per_block:
            blocks.append(symbols[pos : pos + count])
            pos += count
        levels = R.rle_decode(blocks)
        coeffs = D.dequantize(levels, frame.quant_scale)
        resid = np.round(D.idct2(coeffs))
        resid = np.clip(resid, -32768, 32767).astype(np.int16)
        resid_image = D.unblockize(resid, frame.height, frame.width)
        prediction = M.compensate(reference, frame.vectors)
        return M.reconstruct(prediction, resid_image)

    # ------------------------------------------------------------------
    # Timed path

    def _stage_costs(self, height: int, width: int, frame: EncodedFrame) -> dict:
        pixels = height * width
        coeffs = pixels  # one coefficient per pixel
        sad_pairs = M.sad_operations(height, width, self.search) // 2
        return {
            "sad_pairs": sad_pairs,
            "mmx_bytes": pixels * 2,
            "dct_flops": D.dct_flops(pixels // 64),
            "coeffs": coeffs,
            "bits": frame.n_bits,
            "symbols": frame.n_symbols,
        }

    def encode_timed(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        system: str = "radram",
        machine_config: Optional[MachineConfig] = None,
        radram_config: Optional[RADramConfig] = None,
    ) -> Tuple[EncodedFrame, MachineStats]:
        """Encode functionally and account the execution time."""
        frame = self.encode(current, reference)
        costs = self._stage_costs(*current.shape, frame)
        if system == "conventional":
            stats = self._run_conventional(current.shape, costs)
        elif system == "radram":
            stats = self._run_radram(current.shape, costs, radram_config, machine_config)
        else:
            raise ValueError(f"unknown system {system!r}")
        return frame, stats

    def _run_conventional(self, shape, costs) -> MachineStats:
        machine = Machine()
        h, w = shape
        base = 0x3000_0000
        frame_bytes = h * w * 2
        stream: List[O.Op] = [
            # Motion search streams current + window of reference.
            O.MemRead(base, frame_bytes),
            O.MemRead(base + frame_bytes, frame_bytes),
            O.Compute(CONV_SAD_OPS * costs["sad_pairs"]),
            # Residual.
            O.MemWrite(base + 2 * frame_bytes, frame_bytes),
            O.Compute(CONV_MMX_OPS_PER_WORD * (frame_bytes // 4)),
            # DCT + quantization.
            O.Compute(CONV_FLOPS_PER_OP * costs["dct_flops"]),
            O.Compute(2.0 * costs["coeffs"]),
            # Zigzag/RLE + Huffman.
            O.Compute(CONV_RLE_OPS_PER_COEFF * costs["coeffs"]),
            O.Compute(CONV_HUFFMAN_OPS_PER_BIT * costs["bits"]),
            O.MemWrite(base + 3 * frame_bytes, costs["bits"] // 8 + 1),
        ]
        return machine.run(iter(stream))

    def _run_radram(self, shape, costs, radram_config, machine_config) -> MachineStats:
        rconfig = radram_config or RADramConfig.reference()
        memsys = RADramMemorySystem(rconfig)
        machine = Machine(
            config=machine_config,
            memory=PagedMemory(page_bytes=rconfig.page_bytes),
            memsys=memsys,
        )
        h, w = shape
        frame_bytes = h * w * 2
        n_pages = max(1, frame_bytes // (rconfig.page_bytes // 2))
        per_page = 1.0 / n_pages
        base_page = 0x3000_0000 // rconfig.page_bytes

        def activate_all(cycles_per_page: float, words: int) -> List[O.Op]:
            ops: List[O.Op] = []
            for j in range(n_pages):
                ops.append(
                    O.Activate(base_page + j, words, PageTask.simple(cycles_per_page))
                )
            for j in range(n_pages):
                ops.append(O.WaitPage(base_page + j))
            return ops

        stream: List[O.Op] = []
        # Stage 1: motion search in page logic.
        stream += activate_all(
            costs["sad_pairs"] * per_page / SAD_OPS_PER_CYCLE, words=8
        )
        # Stage 2: residual via the wide MMX datapath.
        stream += activate_all(
            costs["mmx_bytes"] * per_page / MMX_BYTES_PER_CYCLE, words=136
        )
        # Stage 3: processor reads residual blocks, does DCT + quant,
        # writes levels back (only DCT data crosses the bus).
        stream.append(O.MemRead(0x3000_0000, frame_bytes))
        stream.append(O.Compute(CONV_FLOPS_PER_OP * costs["dct_flops"]))
        stream.append(O.Compute(2.0 * costs["coeffs"]))
        stream.append(O.MemWrite(0x3000_0000, frame_bytes))
        # Stage 4: RLE + Huffman in page logic; processor collects the
        # bitstream.
        stream += activate_all(
            (costs["coeffs"] * RLE_CYCLES_PER_COEFF + costs["bits"] / HUFFMAN_BITS_PER_CYCLE)
            * per_page,
            words=8,
        )
        stream.append(O.MemRead(0x3000_0000, costs["bits"] // 8 + 1))
        return machine.run(iter(stream))
