"""Zigzag scan and run-length coding of quantized DCT blocks.

Quantized residual blocks are mostly zero at high frequencies; the
zigzag scan orders coefficients by frequency so runs of zeros cluster,
and the run-length coder emits ``(run, level)`` symbols plus an
end-of-block marker — the representation the Huffman stage codes.

In the Active-Page pipeline this is page-side work: a small FSM with a
counter (run accumulation) and comparators — well within the LE budget.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

BLOCK = 8

#: End-of-block marker symbol.
EOB: Tuple[int, int] = (0, 0)


def _zigzag_order() -> np.ndarray:
    """Index order of the classic 8x8 zigzag scan."""
    order = sorted(
        ((i, j) for i in range(BLOCK) for j in range(BLOCK)),
        key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 else ij[0]),
    )
    flat = [i * BLOCK + j for i, j in order]
    return np.asarray(flat, dtype=np.int64)


ZIGZAG = _zigzag_order()
UNZIGZAG = np.argsort(ZIGZAG)


def zigzag(block: np.ndarray) -> np.ndarray:
    """Scan one (or many) 8x8 blocks into zigzag order."""
    flat = block.reshape(*block.shape[:-2], 64)
    return flat[..., ZIGZAG]


def unzigzag(scan: np.ndarray) -> np.ndarray:
    """Inverse zigzag back to 8x8 blocks."""
    return scan[..., UNZIGZAG].reshape(*scan.shape[:-1], BLOCK, BLOCK)


def rle_encode_block(block: np.ndarray) -> List[Tuple[int, int]]:
    """(run, level) symbols for one quantized 8x8 block, EOB-terminated."""
    symbols: List[Tuple[int, int]] = []
    run = 0
    for value in zigzag(block):
        v = int(value)
        if v == 0:
            run += 1
        else:
            symbols.append((run, v))
            run = 0
    symbols.append(EOB)
    return symbols


def rle_decode_block(symbols: List[Tuple[int, int]]) -> np.ndarray:
    """Rebuild one 8x8 int32 block from its (run, level) symbols."""
    scan = np.zeros(64, dtype=np.int32)
    pos = 0
    for run, level in symbols:
        if (run, level) == EOB:
            break
        pos += run
        if pos >= 64:
            raise ValueError("run-length data overruns the block")
        scan[pos] = level
        pos += 1
    return unzigzag(scan)


def rle_encode(blocks: np.ndarray) -> List[List[Tuple[int, int]]]:
    """Encode an array of blocks; one symbol list per block."""
    return [rle_encode_block(b) for b in blocks]


def rle_decode(encoded: List[List[Tuple[int, int]]]) -> np.ndarray:
    """Decode symbol lists back to an (N, 8, 8) int32 block array."""
    return np.stack([rle_decode_block(symbols) for symbols in encoded])


def rle_symbol_count(encoded: List[List[Tuple[int, int]]]) -> int:
    """Total symbols including EOBs (drives coding-stage cost models)."""
    return sum(len(symbols) for symbols in encoded)
