"""MPEG encode/decode pipeline (paper Section 5.2, future work).

The paper's measured MPEG kernel applies motion-correction matrices
with MMX primitives; its stated plan partitions the rest of the codec:
"The processor will be responsible for the Discrete Cosine Transform
(DCT), while the RADram system will handle motion detection,
application of motion correction matrices, run length encoding and
decoding (RLE), and Huffman encoding and decoding."

This package implements that full pipeline:

* :mod:`repro.mpeg.dct` — 8x8 forward/inverse DCT and quantization
  (the processor's floating-point share).
* :mod:`repro.mpeg.motion` — SAD block-motion estimation and
  compensation (page-side integer work).
* :mod:`repro.mpeg.rle` — zigzag scan and run-length coding.
* :mod:`repro.mpeg.huffman` — canonical Huffman coding of RLE symbols.
* :mod:`repro.mpeg.pipeline` — the P-frame encoder/decoder in both
  conventional and Active-Page partitioned forms, with timing models
  for each stage.
"""

from repro.mpeg.pipeline import MpegPipeline, EncodedFrame

__all__ = ["EncodedFrame", "MpegPipeline"]
