"""Canonical Huffman coding of RLE symbols.

The last pipeline stage: ``(run, level)`` symbols become a compact
bitstream.  We build a canonical Huffman code from symbol frequencies
(package-merge is unnecessary at these alphabet sizes; plain Huffman
with a canonical reassignment keeps tables tiny and decode simple),
serialize the code table alongside the payload, and decode with a
canonical first-code table — the structure a page-side decoder circuit
would implement with a handful of comparators.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

Symbol = Tuple[int, int]


def _code_lengths(frequencies: Dict[Symbol, int]) -> Dict[Symbol, int]:
    """Huffman code lengths per symbol."""
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    heap: List[Tuple[int, int, List[Symbol]]] = []
    for i, (symbol, freq) in enumerate(sorted(frequencies.items())):
        heapq.heappush(heap, (freq, i, [symbol]))
    lengths = {symbol: 0 for symbol in frequencies}
    counter = len(frequencies)
    while len(heap) > 1:
        fa, _, sa = heapq.heappop(heap)
        fb, _, sb = heapq.heappop(heap)
        for symbol in sa + sb:
            lengths[symbol] += 1
        heapq.heappush(heap, (fa + fb, counter, sa + sb))
        counter += 1
    return lengths


def canonical_codes(frequencies: Dict[Symbol, int]) -> Dict[Symbol, Tuple[int, int]]:
    """Symbol -> (code value, code length), canonical ordering."""
    lengths = _code_lengths(frequencies)
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[Symbol, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical code table, serializable with the bitstream."""

    codes: Dict[Symbol, Tuple[int, int]]

    @classmethod
    def from_symbols(cls, symbols: Iterable[Symbol]) -> "HuffmanTable":
        freqs: Dict[Symbol, int] = {}
        for s in symbols:
            freqs[s] = freqs.get(s, 0) + 1
        return cls(canonical_codes(freqs))

    def decoder(self) -> "HuffmanDecoder":
        return HuffmanDecoder(self.codes)

    @property
    def max_length(self) -> int:
        return max((l for _, l in self.codes.values()), default=0)


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, length: int) -> None:
        for shift in range(length - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def getvalue(self) -> bytes:
        padded = self._bits + [0] * (-len(self._bits) % 8)
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bits)


class BitReader:
    """MSB-first bit consumer."""

    def __init__(self, data: bytes, n_bits: int) -> None:
        self._data = data
        self._n_bits = n_bits
        self._pos = 0

    def read_bit(self) -> int:
        if self._pos >= self._n_bits:
            raise EOFError("bitstream exhausted")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._n_bits


class HuffmanDecoder:
    """Canonical decode via (length -> first code/first index) tables."""

    def __init__(self, codes: Dict[Symbol, Tuple[int, int]]) -> None:
        by_code = sorted(codes.items(), key=lambda kv: (kv[1][1], kv[1][0]))
        self._symbols = [symbol for symbol, _ in by_code]
        self._first_code: Dict[int, int] = {}
        self._first_index: Dict[int, int] = {}
        self._count: Dict[int, int] = {}
        for index, (symbol, (code, length)) in enumerate(by_code):
            if length not in self._first_code:
                self._first_code[length] = code
                self._first_index[length] = index
                self._count[length] = 0
            self._count[length] += 1

    def decode_one(self, reader: BitReader) -> Symbol:
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            first = self._first_code.get(length)
            if first is not None and first <= code < first + self._count[length]:
                return self._symbols[self._first_index[length] + code - first]
            if length > 64:
                raise ValueError("invalid Huffman bitstream")


def encode_symbols(
    symbols: Sequence[Symbol], table: HuffmanTable
) -> Tuple[bytes, int]:
    """Encode symbols; returns (payload bytes, bit count)."""
    writer = BitWriter()
    for symbol in symbols:
        code, length = table.codes[symbol]
        writer.write(code, length)
    return writer.getvalue(), len(writer)


def decode_symbols(
    payload: bytes, n_bits: int, n_symbols: int, table: HuffmanTable
) -> List[Symbol]:
    """Decode exactly ``n_symbols`` symbols from the payload."""
    reader = BitReader(payload, n_bits)
    decoder = table.decoder()
    return [decoder.decode_one(reader) for _ in range(n_symbols)]
