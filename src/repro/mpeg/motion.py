"""Block motion estimation and compensation.

"The RADram system will handle motion detection" — per 16x16
macroblock, find the displacement within a search window of the
reference frame minimizing the sum of absolute differences (SAD).
This is dense integer work over page-resident frame data: ideal for
the page logic (an absolute-difference adder tree), hopeless for the
bus if done remotely.

Motion compensation (building the prediction, and adding the decoded
residual back with saturation) reuses the MMX saturating-add
semantics of :mod:`repro.radram.mmx`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.radram.mmx import mmx_op

MACROBLOCK = 16
_PADDSW = mmx_op("paddsw")
_PSUBSW = mmx_op("psubsw")


@dataclass(frozen=True)
class MotionVector:
    dy: int
    dx: int


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences of two equal-shape int blocks."""
    return int(np.sum(np.abs(a.astype(np.int32) - b.astype(np.int32))))


def estimate_motion(
    current: np.ndarray,
    reference: np.ndarray,
    search: int = 7,
) -> List[List[MotionVector]]:
    """Full-search SAD motion estimation per 16x16 macroblock.

    Ties break toward the smaller displacement (then smaller dy/dx),
    so results are deterministic.
    """
    h, w = current.shape
    if h % MACROBLOCK or w % MACROBLOCK:
        raise ValueError(f"frame {h}x{w} not a multiple of {MACROBLOCK}")
    vectors: List[List[MotionVector]] = []
    for by in range(0, h, MACROBLOCK):
        row: List[MotionVector] = []
        for bx in range(0, w, MACROBLOCK):
            block = current[by : by + MACROBLOCK, bx : bx + MACROBLOCK]
            best = (1 << 62, 0, 0, 0)
            for dy in range(-search, search + 1):
                sy = by + dy
                if sy < 0 or sy + MACROBLOCK > h:
                    continue
                for dx in range(-search, search + 1):
                    sx = bx + dx
                    if sx < 0 or sx + MACROBLOCK > w:
                        continue
                    candidate = reference[sy : sy + MACROBLOCK, sx : sx + MACROBLOCK]
                    score = sad(block, candidate)
                    key = (score, abs(dy) + abs(dx), dy, dx)
                    if key < best:
                        best = key
            row.append(MotionVector(best[2], best[3]))
        vectors.append(row)
    return vectors


def compensate(
    reference: np.ndarray, vectors: List[List[MotionVector]]
) -> np.ndarray:
    """Build the motion-compensated prediction frame."""
    h, w = reference.shape
    prediction = np.empty_like(reference)
    for i, row in enumerate(vectors):
        for j, mv in enumerate(row):
            by, bx = i * MACROBLOCK, j * MACROBLOCK
            sy, sx = by + mv.dy, bx + mv.dx
            prediction[by : by + MACROBLOCK, bx : bx + MACROBLOCK] = reference[
                sy : sy + MACROBLOCK, sx : sx + MACROBLOCK
            ]
    return prediction


def residual(current: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """Saturating int16 residual (the correction matrix)."""
    return _PSUBSW.apply(current.astype(np.int16), prediction.astype(np.int16))


def reconstruct(prediction: np.ndarray, decoded_residual: np.ndarray) -> np.ndarray:
    """Saturating add of the decoded residual — the measured kernel."""
    return _PADDSW.apply(
        prediction.astype(np.int16), decoded_residual.astype(np.int16)
    )


def sad_operations(height: int, width: int, search: int = 7) -> int:
    """Integer ops of a full search (drives the cost models).

    Per macroblock: (2*search+1)^2 candidate positions (interior), 256
    absolute-difference+accumulate pairs each.
    """
    blocks = (height // MACROBLOCK) * (width // MACROBLOCK)
    candidates = (2 * search + 1) ** 2
    return blocks * candidates * MACROBLOCK * MACROBLOCK * 2
