"""The STL array template: one interface, two memory systems.

:class:`APArray` is the paper's array class: a dense, fixed-capacity
array of 32-bit words whose bulk operations run either entirely on the
processor (``backend="conventional"``) or partitioned onto Active
Pages (``backend="radram"``).  Both backends operate on real data —
results are identical by construction and checked in the test suite —
while a simulated machine accounts for execution time, so a library
user can compare the two systems on their own workload:

    >>> a = APArray(capacity_pages=4, backend="radram")
    >>> a.extend(range(1000))
    >>> a.insert(10, 42)
    >>> a.count(42)
    1
    >>> a.elapsed_ns  # doctest: +SKIP

The Active-Page backend binds only the circuits the current operation
needs: the full operation set does not fit one page's 256 LEs, so the
library re-binds on demand — the paper's Section 2 re-binding rule —
charging reconfiguration time when configured to.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.apps.array import FIND_CYCLES_PER_WORD, SHIFT_CYCLES_PER_WORD
from repro.core.functions import APFunction, PageTask
from repro.core.page import SYNC_BYTES
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.stl.operations import OPERATION_CIRCUITS

_WORD = 4


class ArrayBackend(abc.ABC):
    """Common backend contract: real data plus simulated time."""

    def __init__(self, capacity_words: int) -> None:
        self.capacity = capacity_words
        self.size = 0

    @property
    @abc.abstractmethod
    def elapsed_ns(self) -> float:
        """Simulated time consumed so far."""

    @abc.abstractmethod
    def values(self) -> np.ndarray:
        """The logical array contents (length ``size``)."""

    @abc.abstractmethod
    def _write_all(self, values: np.ndarray) -> None:
        """Replace the contents (untimed; used by extend/setup)."""

    # Bulk operations -------------------------------------------------

    @abc.abstractmethod
    def insert(self, pos: int, value: int) -> None:
        """Shift ``[pos, size)`` up one slot and place ``value``."""

    @abc.abstractmethod
    def delete(self, pos: int) -> None:
        """Shift ``(pos, size)`` down one slot."""

    @abc.abstractmethod
    def count(self, value: int) -> int:
        """Occurrences of ``value``."""

    @abc.abstractmethod
    def accumulate(self) -> int:
        """Sum of all elements, modulo 2**32."""

    @abc.abstractmethod
    def partial_sum(self) -> None:
        """In-place prefix sum (modulo 2**32)."""

    @abc.abstractmethod
    def rotate(self, k: int) -> None:
        """Rotate left by ``k``: element k becomes element 0."""

    @abc.abstractmethod
    def adjacent_difference(self) -> None:
        """In-place a[i] = a[i] - a[i-1] (modulo 2**32); a[0] kept."""

    @abc.abstractmethod
    def random_shuffle(self, seed: int = 0) -> None:
        """Deterministic permutation of the contents.

        Both backends apply the *same* permutation for a given seed
        (page-blocked Fisher-Yates plus mixing rotations), so results
        stay comparable across memory systems.
        """


def _shuffle_permutation(n: int, block: int, seed: int, rounds: int = 3) -> np.ndarray:
    """The shared shuffle permutation: block-local shuffles + rotations."""
    perm = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        for start in range(0, n, block):
            stop = min(start + block, n)
            perm[start:stop] = perm[start:stop][rng.permutation(stop - start)]
        offset = int(rng.integers(1, max(2, n))) | 1
        perm = np.roll(perm, -offset)
    return perm


class ConventionalArrayBackend(ArrayBackend):
    """All operations on the processor through the cache hierarchy."""

    def __init__(
        self,
        capacity_words: int,
        machine_config: Optional[MachineConfig] = None,
        page_bytes: int = 512 * 1024,
    ) -> None:
        super().__init__(capacity_words)
        self._data = np.zeros(capacity_words, dtype=np.uint32)
        self.machine = Machine(config=machine_config)
        self._base = 0x2000_0000
        self._page_bytes = page_bytes

    @property
    def elapsed_ns(self) -> float:
        return self.machine.processor.now

    def values(self) -> np.ndarray:
        return self._data[: self.size].copy()

    def _write_all(self, values: np.ndarray) -> None:
        self.size = len(values)
        self._data[: self.size] = values

    def _addr(self, index: int) -> int:
        return self._base + index * _WORD

    def _stream(self, *stream_ops) -> None:
        self.machine.run(iter(stream_ops))

    # ------------------------------------------------------------------

    def insert(self, pos: int, value: int) -> None:
        moved = self.size - pos
        if self.size < self.capacity:
            self.size += 1
        tail = self._data[pos : self.size - 1].copy()
        self._data[pos + 1 : self.size] = tail
        self._data[pos] = value
        self._stream(
            O.MemRead(self._addr(pos), moved * _WORD),
            O.MemWrite(self._addr(pos + 1), moved * _WORD),
            O.Compute(2 * moved + 20),
        )

    def delete(self, pos: int) -> None:
        moved = self.size - pos - 1
        self._data[pos : self.size - 1] = self._data[pos + 1 : self.size].copy()
        self._data[self.size - 1] = 0
        self.size -= 1
        self._stream(
            O.MemRead(self._addr(pos + 1), moved * _WORD),
            O.MemWrite(self._addr(pos), moved * _WORD),
            O.Compute(2 * moved + 20),
        )

    def count(self, value: int) -> int:
        self._stream(
            O.MemRead(self._base, self.size * _WORD),
            O.Compute(2 * self.size + 20),
        )
        return int(np.count_nonzero(self._data[: self.size] == np.uint32(value)))

    def accumulate(self) -> int:
        self._stream(
            O.MemRead(self._base, self.size * _WORD),
            O.Compute(2 * self.size + 20),
        )
        return int(np.sum(self._data[: self.size], dtype=np.uint32))

    def partial_sum(self) -> None:
        self._data[: self.size] = np.cumsum(
            self._data[: self.size], dtype=np.uint32
        )
        self._stream(
            O.MemRead(self._base, self.size * _WORD),
            O.MemWrite(self._base, self.size * _WORD),
            O.Compute(3 * self.size + 20),
        )

    def rotate(self, k: int) -> None:
        self._data[: self.size] = np.roll(self._data[: self.size], -k)
        self._stream(
            O.MemRead(self._base, self.size * _WORD),
            O.MemWrite(self._base, self.size * _WORD),
            O.Compute(3 * self.size + 40),
        )

    def adjacent_difference(self) -> None:
        view = self._data[: self.size]
        view[1:] = np.diff(view)
        self._stream(
            O.MemRead(self._base, self.size * _WORD),
            O.MemWrite(self._base, self.size * _WORD),
            O.Compute(3 * self.size + 20),
        )

    def random_shuffle(self, seed: int = 0) -> None:
        block = (self._page_bytes - SYNC_BYTES) // _WORD
        perm = _shuffle_permutation(self.size, block, seed)
        self._data[: self.size] = self._data[: self.size][perm]
        # A swap per element: two dependent random reads and writes.
        rng = np.random.default_rng(seed + 1)
        chunk = 8192
        for start in range(0, self.size, chunk):
            n = min(chunk, self.size - start)
            addrs = self._base + rng.integers(0, self.size, n) * _WORD
            self._stream(
                O.GatherRead(addrs.tolist()),
                O.ScatterWrite(addrs.tolist()),
                O.Compute(9 * n),
            )


class RADramArrayBackend(ArrayBackend):
    """Operations partitioned onto Active Pages.

    Page data areas hold the array; the backend re-binds circuits on
    demand (the whole operation set exceeds one page's LE budget) and
    drives the timed RADram memory system with activation/wait
    operations while mutating the real page bytes.
    """

    #: circuits bound together as the resident "mutation" set: the two
    #: shifters fit one page's logic side by side (115 + 109 = 224 of
    #: 256 LEs); adding count (141 LEs) would overflow the budget, so
    #: other operations re-bind on demand — Section 2's re-binding rule.
    _MUTATION_SET = ("insert", "delete")

    def __init__(
        self,
        capacity_pages: int,
        radram_config: Optional[RADramConfig] = None,
        machine_config: Optional[MachineConfig] = None,
    ) -> None:
        self.config = radram_config or RADramConfig.reference()
        self.memsys = RADramMemorySystem(self.config)
        self.machine = Machine(
            config=machine_config,
            memory=PagedMemory(page_bytes=self.config.page_bytes),
            memsys=self.memsys,
        )
        self._region = self.machine.memory.alloc_pages(capacity_pages, name="stl")
        self._pages = list(self.machine.memory.pages_of(self._region))
        self._wpp = (self.config.page_bytes - SYNC_BYTES) // _WORD
        super().__init__(capacity_words=capacity_pages * self._wpp)
        self._bound: tuple = ()
        self._bind(self._MUTATION_SET)

    # -- binding -------------------------------------------------------

    def _functions_for(self, names: Sequence[str]) -> List[APFunction]:
        table3_les = {"insert": 115, "delete": 109, "count": 141}
        fns = []
        for name in names:
            if name in table3_les:
                fns.append(APFunction(name=name, le_count=table3_les[name]))
            else:
                op = OPERATION_CIRCUITS[name]
                fns.append(APFunction(name=name, le_count=op.le_count))
        return fns

    def _bind(self, names: Sequence[str]) -> None:
        """(Re)configure every page's logic with ``names``."""
        names = tuple(names)
        if names == self._bound:
            return
        for page_no in self._pages:
            self.memsys.subarray(page_no).logic.configure(self._functions_for(names))
        if self.config.reconfig_ns_per_page > 0:
            self.machine.processor.charge(
                "activation_ns",
                self.config.reconfig_ns_per_page * len(self._pages),
            )
        self._bound = names

    def _require(self, name: str) -> None:
        """Ensure ``name`` is bound, re-binding if necessary."""
        if name not in self._bound:
            if name in self._MUTATION_SET:
                self._bind(self._MUTATION_SET)
            else:
                self._bind((name,))

    # -- layout --------------------------------------------------------

    @property
    def elapsed_ns(self) -> float:
        return self.machine.processor.now

    def _page_view(self, j: int) -> np.ndarray:
        start = j * self.config.page_bytes
        raw = self._region.buffer[
            start : start + self.config.page_bytes - SYNC_BYTES
        ]
        return raw.view(np.uint32)

    def _page_counts(self) -> List[int]:
        counts, remaining = [], self.size
        for _ in self._pages:
            counts.append(min(self._wpp, remaining))
            remaining -= counts[-1]
            if remaining <= 0:
                break
        return counts

    def values(self) -> np.ndarray:
        return np.concatenate(
            [self._page_view(j)[:c] for j, c in enumerate(self._page_counts())]
        ) if self.size else np.empty(0, dtype=np.uint32)

    def _write_all(self, values: np.ndarray) -> None:
        self.size = len(values)
        start = 0
        for j, count in enumerate(self._page_counts()):
            self._page_view(j)[:count] = values[start : start + count]
            start += count

    def _sync_addr(self, j: int) -> int:
        return self._region.base + (j + 1) * self.config.page_bytes - SYNC_BYTES

    # -- the per-page activate/wait skeleton ----------------------------

    def _run_pages(
        self,
        cycles_per_page: Sequence[float],
        descriptor_words: int,
        post_ops: float = 120.0,
    ) -> None:
        """Activate every listed page, then wait + post-process each."""
        stream: List[O.Op] = []
        for j, cycles in enumerate(cycles_per_page):
            stream.append(
                O.Activate(self._pages[j], descriptor_words, PageTask.simple(cycles))
            )
        for j in range(len(cycles_per_page)):
            stream.append(O.WaitPage(self._pages[j]))
            stream.append(O.MemRead(self._sync_addr(j), 4))
            stream.append(O.Compute(post_ops))
        self.machine.run(iter(stream))

    # -- operations ------------------------------------------------------

    def insert(self, pos: int, value: int) -> None:
        self._require("insert")
        if self.size < self.capacity:
            self.size += 1
        logical = self.values()
        tail = logical[pos:-1].copy()
        logical[pos + 1 :] = tail
        logical[pos] = value
        counts = self._page_counts()
        first = pos // self._wpp
        self._run_pages(
            [c * SHIFT_CYCLES_PER_WORD for c in counts[first:]],
            descriptor_words=29,
        )
        self._write_all(logical)

    def delete(self, pos: int) -> None:
        self._require("delete")
        logical = self.values()
        logical[pos:-1] = logical[pos + 1 :].copy()
        counts = self._page_counts()
        first = pos // self._wpp
        self.size -= 1
        self._run_pages(
            [c * SHIFT_CYCLES_PER_WORD for c in counts[first:]],
            descriptor_words=27,
        )
        self._write_all(logical[:-1])

    def count(self, value: int) -> int:
        self._require("count")
        counts = self._page_counts()
        self._run_pages(
            [c * FIND_CYCLES_PER_WORD for c in counts], descriptor_words=25
        )
        return int(np.count_nonzero(self.values() == np.uint32(value)))

    def accumulate(self) -> int:
        self._require("accumulate")
        op = OPERATION_CIRCUITS["accumulate"]
        counts = self._page_counts()
        self._run_pages(
            [c * op.logic_cycles_per_word for c in counts],
            descriptor_words=op.descriptor_words,
        )
        return int(np.sum(self.values(), dtype=np.uint32))

    def partial_sum(self) -> None:
        # Phase 1: page-local prefix sums; the processor reads each
        # page's total from its sync area.
        self._require("partial_sum")
        op = OPERATION_CIRCUITS["partial_sum"]
        counts = self._page_counts()
        self._run_pages(
            [c * op.logic_cycles_per_word for c in counts],
            descriptor_words=op.descriptor_words,
        )
        # Phase 2: every page after the first adds its carry offset.
        self._require("apply_offset")
        offset_op = OPERATION_CIRCUITS["apply_offset"]
        if len(counts) > 1:
            self._run_pages(
                [c * offset_op.logic_cycles_per_word for c in counts[1:]],
                descriptor_words=offset_op.descriptor_words,
            )
        logical = self.values()
        self._write_all(np.cumsum(logical, dtype=np.uint32))

    def rotate(self, k: int) -> None:
        self._require("rotate")
        op = OPERATION_CIRCUITS["rotate"]
        counts = self._page_counts()
        # Pages copy their in-page portion; the processor moves each
        # page's cross-page remainder (k mod wpp words per boundary).
        self._run_pages(
            [c * op.logic_cycles_per_word for c in counts],
            descriptor_words=op.descriptor_words,
        )
        spill = (k % self._wpp) * _WORD
        if spill and len(counts) > 1:
            stream: List[O.Op] = []
            for j in range(len(counts)):
                src = self._region.base + j * self.config.page_bytes
                stream.append(O.MemRead(src, spill))
                stream.append(O.MemWrite(src + self._wpp * _WORD - spill, spill))
                stream.append(O.Compute(2 * (spill // _WORD)))
            self.machine.run(iter(stream))
        logical = self.values()
        self._write_all(np.roll(logical, -k))

    def adjacent_difference(self) -> None:
        self._require("adjacent_difference")
        op = OPERATION_CIRCUITS["adjacent_difference"]
        counts = self._page_counts()
        # The processor pre-reads each page boundary word (the carry
        # into the next page), then pages diff locally.
        boundary_addrs = [
            self._region.base + (j + 1) * self.config.page_bytes - SYNC_BYTES - _WORD
            for j in range(len(counts) - 1)
        ]
        if boundary_addrs:
            self.machine.run(iter([O.GatherRead(boundary_addrs)]))
        self._run_pages(
            [c * op.logic_cycles_per_word for c in counts],
            descriptor_words=op.descriptor_words,
        )
        logical = self.values()
        logical[1:] = np.diff(logical)
        self._write_all(logical)

    def random_shuffle(self, seed: int = 0) -> None:
        self._require("random_shuffle")
        op = OPERATION_CIRCUITS["random_shuffle"]
        counts = self._page_counts()
        perm = _shuffle_permutation(self.size, self._wpp, seed)
        rounds = 3
        for _ in range(rounds):
            # Page-local shuffles in parallel, then a mixing rotation
            # (its timing shape, not its exact offset, is what counts).
            self._run_pages(
                [c * op.logic_cycles_per_word for c in counts],
                descriptor_words=op.descriptor_words,
            )
        logical = self.values()
        self._write_all(logical[perm])


class APArray:
    """The paper's STL array template: pick a backend, use one API."""

    def __init__(
        self,
        capacity_pages: int = 1,
        backend: str = "radram",
        radram_config: Optional[RADramConfig] = None,
        machine_config: Optional[MachineConfig] = None,
    ) -> None:
        if backend == "radram":
            self._impl: ArrayBackend = RADramArrayBackend(
                capacity_pages,
                radram_config=radram_config,
                machine_config=machine_config,
            )
        elif backend == "conventional":
            config = radram_config or RADramConfig.reference()
            wpp = (config.page_bytes - SYNC_BYTES) // _WORD
            self._impl = ConventionalArrayBackend(
                capacity_pages * wpp,
                machine_config=machine_config,
                page_bytes=config.page_bytes,
            )
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend_name = backend

    # Container basics -------------------------------------------------

    def __len__(self) -> int:
        return self._impl.size

    def __getitem__(self, index: int) -> int:
        return int(self._impl.values()[index])

    def extend(self, values) -> None:
        """Bulk-load values (setup, untimed)."""
        data = np.asarray(list(values), dtype=np.uint32)
        existing = self._impl.values()
        merged = np.concatenate([existing, data])
        if len(merged) > self._impl.capacity:
            raise ValueError(
                f"array capacity is {self._impl.capacity} words; "
                f"{len(merged)} requested"
            )
        self._impl._write_all(merged)

    def to_numpy(self) -> np.ndarray:
        return self._impl.values()

    @property
    def elapsed_ns(self) -> float:
        return self._impl.elapsed_ns

    # Operations (delegated) --------------------------------------------

    def insert(self, pos: int, value: int) -> None:
        self._check_pos(pos, upper=len(self))
        self._impl.insert(pos, value)

    def delete(self, pos: int) -> None:
        self._check_pos(pos, upper=len(self) - 1)
        self._impl.delete(pos)

    def count(self, value: int) -> int:
        return self._impl.count(value)

    def accumulate(self) -> int:
        return self._impl.accumulate()

    def partial_sum(self) -> None:
        self._impl.partial_sum()

    def rotate(self, k: int) -> None:
        if len(self) == 0:
            return
        self._impl.rotate(k % len(self))

    def adjacent_difference(self) -> None:
        self._impl.adjacent_difference()

    def random_shuffle(self, seed: int = 0) -> None:
        self._impl.random_shuffle(seed)

    def _check_pos(self, pos: int, upper: int) -> None:
        if not 0 <= pos <= upper:
            raise IndexError(f"position {pos} outside [0, {upper}]")
