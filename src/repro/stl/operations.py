"""Cost models and circuits for the STL array operations.

Section 5.1 measures insert/delete/find and names five more operations
"indicative of a broad range of array operations which the RADram
system can effectively compute": accumulate, partial sum, random
shuffle, rotate, and adjacent difference.  Each operation here carries

* logic cycles per element for the page-side circuit,
* conventional instructions per element for the baseline,
* a structural netlist (``repro.synth``) proving the circuit fits the
  256-LE page budget, and
* the number of descriptor words its activation writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.synth.lut import le_count
from repro.synth.netlist import Netlist, OpKind

ADDR = 19  # bits to address a 512 KB page
WORD = 32


def _walker(n: Netlist, stage: int = 0) -> Netlist:
    """The common page-walk skeleton: address counter + bounds check."""
    n.add(OpKind.COUNTER, ADDR, stage=stage, name="addr")
    n.add(OpKind.LT, ADDR, stage=stage, name="addr<end")
    return n


def accumulate_circuit() -> Netlist:
    """Running 32-bit sum over the page's words."""
    n = _walker(Netlist("Array-accumulate"))
    n.add(OpKind.ADD, WORD, stage=1, name="sum += word")
    n.add(OpKind.REG, WORD, stage=1, name="sum register")
    n.add(OpKind.FSM, 3, stage=1, name="control")
    return n


def partial_sum_circuit() -> Netlist:
    """In-place prefix sum: add, write back, keep the running value."""
    n = _walker(Netlist("Array-partial-sum"))
    n.add(OpKind.ADD, WORD, stage=1, name="prefix += word")
    n.add(OpKind.REG, WORD, stage=1, name="prefix register")
    n.add(OpKind.MUX2, WORD, stage=1, name="offset select")
    n.add(OpKind.FSM, 4, stage=1, name="control")
    return n


def rotate_circuit() -> Netlist:
    """Word shift with a wrap-around source offset."""
    n = _walker(Netlist("Array-rotate"))
    n.add(OpKind.ADD, ADDR, stage=0, name="src = addr + k mod n")
    n.add(OpKind.REG, WORD, stage=1, name="word buffer")
    n.add(OpKind.MUX2, WORD, stage=1, name="wrap select")
    n.add(OpKind.FSM, 3, stage=1, name="control")
    return n


def adjacent_difference_circuit() -> Netlist:
    """out[i] = a[i] - a[i-1] with a one-word history register."""
    n = _walker(Netlist("Array-adjacent-difference"))
    n.add(OpKind.ADD, WORD, stage=1, name="word - previous")
    n.add(OpKind.REG, WORD, stage=1, name="previous register")
    n.add(OpKind.FSM, 3, stage=1, name="control")
    return n


def random_shuffle_circuit() -> Netlist:
    """Page-local Fisher-Yates: LFSR index source + swap buffer."""
    n = _walker(Netlist("Array-random-shuffle"))
    n.add(OpKind.ROM, 16, stage=0, name="LFSR taps")
    n.add(OpKind.REG, 17, stage=0, name="LFSR state")
    n.add(OpKind.REG, WORD, stage=1, name="swap buffer a")
    n.add(OpKind.REG, WORD, stage=1, name="swap buffer b")
    n.add(OpKind.FSM, 4, stage=1, name="control")
    return n


@dataclass(frozen=True)
class ArrayOperation:
    """One STL operation's cost model."""

    name: str
    #: page-logic cycles per element processed.
    logic_cycles_per_word: float
    #: conventional instructions per element.
    conv_ops_per_word: float
    #: 32-bit words written per activation.
    descriptor_words: int
    #: circuit factory (None reuses a Table 3 circuit).
    circuit: Callable[[], Netlist]

    @property
    def le_count(self) -> int:
        return le_count(self.circuit())


#: The Section 5.1 extension operations.
OPERATION_CIRCUITS: Dict[str, ArrayOperation] = {
    op.name: op
    for op in [
        # One add per word streaming through the 32-bit port.
        ArrayOperation("accumulate", 1.0, 2.0, 4, accumulate_circuit),
        # Read, add, write back: two port touches per word.
        ArrayOperation("partial_sum", 2.0, 3.0, 5, partial_sum_circuit),
        # Second pass of partial_sum: add the page's carry offset.
        ArrayOperation("apply_offset", 1.0, 2.0, 3, partial_sum_circuit),
        # Read from the wrapped source, write to the destination.
        ArrayOperation("rotate", 2.0, 3.0, 6, rotate_circuit),
        # One subtract per word, history in a register.
        ArrayOperation("adjacent_difference", 1.0, 3.0, 4, adjacent_difference_circuit),
        # Fisher-Yates: a swap (2 reads + 2 writes) per word.
        ArrayOperation("random_shuffle", 4.0, 9.0, 6, random_shuffle_circuit),
    ]
}
