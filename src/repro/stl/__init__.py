"""The STL array template library (paper Section 5.1).

"The STL array template is a general purpose C++ template which
permits the storage, access, and retrieval of objects based upon a
linear integer index...  Library calls, derived from a common subclass,
allow single source files to work with either the Active-Page or
conventional-system implementation of the array template."

:class:`repro.stl.array.APArray` is that library in Python: one
interface, two backends.  Beyond the paper's measured insert/delete/
count, it implements the "broad range of array operations which the
RADram system can effectively compute" named in Section 5.1:
``accumulate``, ``partial_sum``, ``random_shuffle``, ``rotate`` and
``adjacent_difference``.
"""

from repro.stl.array import APArray, ConventionalArrayBackend, RADramArrayBackend
from repro.stl.operations import OPERATION_CIRCUITS

__all__ = [
    "APArray",
    "ConventionalArrayBackend",
    "OPERATION_CIRCUITS",
    "RADramArrayBackend",
]
