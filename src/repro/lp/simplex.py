"""Standard-form simplex with Bland's rule.

Solves ``maximize c @ x`` subject to ``A @ x <= b``, ``x >= 0`` with
``b >= 0`` (the form register allocation produces).  Slack variables
make the initial basis feasible; Bland's smallest-index rule prevents
cycling on degenerate tableaus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

_EPS = 1e-9


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    status: LPStatus
    objective: float
    x: np.ndarray
    pivots: int


def simplex_solve(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, max_pivots: int = 10_000
) -> LPResult:
    """Solve max c@x s.t. A@x <= b, x >= 0 (requires b >= 0)."""
    c = np.asarray(c, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    m, n = a.shape
    if c.shape != (n,) or b.shape != (m,):
        raise ValueError("inconsistent LP dimensions")
    if np.any(b < -_EPS):
        raise ValueError("this solver requires b >= 0 (slack-feasible start)")

    # Tableau: [A | I | b] with objective row [-c | 0 | 0].
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[m, :n] = -c
    basis: List[int] = list(range(n, n + m))

    pivots = 0
    while pivots < max_pivots:
        obj_row = tableau[m, : n + m]
        entering_candidates = np.where(obj_row < -_EPS)[0]
        if len(entering_candidates) == 0:
            break  # optimal
        entering = int(entering_candidates[0])  # Bland: smallest index
        column = tableau[:m, entering]
        positive = column > _EPS
        if not np.any(positive):
            return LPResult(LPStatus.UNBOUNDED, float("inf"), np.full(n, np.nan), pivots)
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, -1][positive] / column[positive]
        min_ratio = ratios.min()
        # Bland again: among minimal ratios, smallest basis index.
        tied = np.where(ratios <= min_ratio + _EPS)[0]
        leaving_row = int(min(tied, key=lambda r: basis[r]))
        _pivot(tableau, leaving_row, entering)
        basis[leaving_row] = entering
        pivots += 1

    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            x[var] = tableau[row, -1]
    return LPResult(LPStatus.OPTIMAL, float(tableau[m, -1]), x, pivots)


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _EPS:
            tableau[r] -= tableau[r, col] * tableau[row]


# ----------------------------------------------------------------------
# Timed execution


def solve_timed(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    system: str = "radram",
) -> Tuple[LPResult, "MachineStats"]:
    """Solve the LP and account pivot time on the chosen system.

    Each pivot is a rank-1 tableau update: the conventional system
    streams the whole (sparse-ish) tableau per pivot; the Active-Page
    system gathers only the nonzero entries of the pivot row/column
    in memory (the paper's compare-gather-compute) and the processor
    does the floating-point eliminations on packed data.
    """
    from repro.core.functions import PageTask
    from repro.radram.config import RADramConfig
    from repro.radram.system import RADramMemorySystem
    from repro.sim import ops as O
    from repro.sim.machine import Machine
    from repro.sim.memory import PagedMemory

    result = simplex_solve(c, a, b)
    m, n = np.asarray(a).shape
    tableau_cells = (m + 1) * (n + m + 1)
    nnz = int(np.count_nonzero(a)) + 2 * m  # data plus slack/rhs
    density = max(0.05, nnz / (m * (n + m + 1)))
    useful = int(tableau_cells * density)

    if system == "conventional":
        machine = Machine()
        base = 0x6000_0000
        stream = []
        for _ in range(max(1, result.pivots)):
            stream.append(O.MemRead(base, tableau_cells * 8))
            stream.append(O.Compute(3.0 * tableau_cells))
            stream.append(O.MemWrite(base, tableau_cells * 8))
        stats = machine.run(iter(stream))
    elif system == "radram":
        rconfig = RADramConfig.reference()
        memsys = RADramMemorySystem(rconfig)
        machine = Machine(
            memory=PagedMemory(page_bytes=rconfig.page_bytes), memsys=memsys
        )
        base_page = 0x6000_0000 // rconfig.page_bytes
        rows_per_page = max(1, (m + 1) // 4)
        n_pages = -(-(m + 1) // rows_per_page)
        per_page_useful = max(1, useful // n_pages)
        stream = []
        for _ in range(max(1, result.pivots)):
            for p in range(n_pages):
                task = PageTask.simple(per_page_useful * 3.0)  # compare+gather
                stream.append(O.Activate(base_page + p, 29, task))
            for p in range(n_pages):
                stream.append(O.WaitPage(base_page + p))
                stream.append(O.MemRead(0x6000_0000 + p * 4096, per_page_useful * 16))
                stream.append(O.Compute(6.0 * per_page_useful))
        stats = machine.run(iter(stream))
    else:
        raise ValueError(f"unknown system {system!r}")
    return result, stats
