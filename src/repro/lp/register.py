"""Register allocation via LP relaxation (the [GW96] shape).

Given an interference graph (variables that are live simultaneously
interfere) and ``k`` registers, choose which variables to keep in
registers to maximize saved spill cost:

    maximize   sum_v  weight_v * x_v
    subject to sum_{v in C} x_v <= k   for interfering groups C
               0 <= x_v <= 1

Groups are the graph's maximal cliques (networkx); the LP relaxation
is solved with :mod:`repro.lp.simplex` and rounded greedily: take
variables in decreasing fractional value while no clique exceeds k.
Greedy rounding over clique constraints is feasible by construction
and optimal on perfect graphs (interval interference graphs of
straight-line code are perfect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx
import numpy as np

from repro.lp.simplex import LPStatus, simplex_solve


@dataclass(frozen=True)
class AllocationResult:
    """Which variables stay in registers, and what it saves."""

    in_registers: Set[str]
    spilled: Set[str]
    saved_cost: float
    lp_bound: float
    registers: int

    @property
    def is_lp_tight(self) -> bool:
        """Whether rounding lost nothing against the LP bound."""
        return self.saved_cost >= self.lp_bound - 1e-6


def allocate_registers(
    interference: nx.Graph,
    k: int,
    weights: Optional[Dict[str, float]] = None,
) -> AllocationResult:
    """Choose register residents for ``k`` registers."""
    if k < 0:
        raise ValueError("register count cannot be negative")
    nodes: List[str] = sorted(interference.nodes)
    if not nodes:
        return AllocationResult(set(), set(), 0.0, 0.0, k)
    weights = weights or {}
    w = np.array([float(weights.get(v, 1.0)) for v in nodes])
    index = {v: i for i, v in enumerate(nodes)}

    cliques = [sorted(c) for c in nx.find_cliques(interference)]
    # Constraints: clique sums <= k, plus x_v <= 1 box constraints.
    rows = []
    rhs = []
    for clique in cliques:
        row = np.zeros(len(nodes))
        for v in clique:
            row[index[v]] = 1.0
        rows.append(row)
        rhs.append(float(k))
    for i in range(len(nodes)):
        row = np.zeros(len(nodes))
        row[i] = 1.0
        rows.append(row)
        rhs.append(1.0)

    lp = simplex_solve(w, np.array(rows), np.array(rhs))
    assert lp.status is LPStatus.OPTIMAL  # the region is bounded

    # Greedy rounding by fractional value then weight.
    order = sorted(
        range(len(nodes)), key=lambda i: (lp.x[i], w[i]), reverse=True
    )
    usage = {tuple(c): 0 for c in cliques}
    member_cliques: Dict[str, List[tuple]] = {v: [] for v in nodes}
    for clique in cliques:
        for v in clique:
            member_cliques[v].append(tuple(clique))
    chosen: Set[str] = set()
    for i in order:
        v = nodes[i]
        if lp.x[i] <= 1e-9:
            continue
        if all(usage[c] < k for c in member_cliques[v]):
            chosen.add(v)
            for c in member_cliques[v]:
                usage[c] += 1
    saved = float(sum(w[index[v]] for v in chosen))
    return AllocationResult(
        in_registers=chosen,
        spilled=set(nodes) - chosen,
        saved_cost=saved,
        lp_bound=lp.objective,
        registers=k,
    )


def interval_interference_graph(
    live_ranges: Sequence[tuple], names: Optional[Sequence[str]] = None
) -> nx.Graph:
    """Interference graph of straight-line code live ranges.

    ``live_ranges`` are (start, end) half-open intervals; overlapping
    ranges interfere.  Interval graphs are perfect, so the LP
    relaxation rounds tightly.
    """
    n = len(live_ranges)
    names = list(names) if names is not None else [f"v{i}" for i in range(n)]
    graph = nx.Graph()
    graph.add_nodes_from(names)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = live_ranges[i], live_ranges[j]
            if a[0] < b[1] and b[0] < a[1]:
                graph.add_edge(names[i], names[j])
    return graph
