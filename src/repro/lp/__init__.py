"""Linear programming substrate (paper Section 5.2).

The paper's ``matrix-simplex`` workload comes from "using the Simplex
method [NM65] to perform optimal register allocation [GW96]".  The
measured kernel is the sparse dot product inside a simplex pivot; this
package builds the rest of that stack:

* :mod:`repro.lp.simplex` — a standard-form simplex solver with
  Bland's anti-cycling rule.
* :mod:`repro.lp.register` — register allocation as an LP relaxation
  over the interference graph, with rounding — the [GW96] shape.
* :func:`repro.lp.simplex.solve_timed` — the solver with per-pivot
  timing on conventional vs Active-Page systems (pivot row updates
  are the measured compare-gather-compute kernel).
"""

from repro.lp.register import AllocationResult, allocate_registers
from repro.lp.simplex import LPResult, LPStatus, simplex_solve, solve_timed

__all__ = [
    "AllocationResult",
    "LPResult",
    "LPStatus",
    "allocate_registers",
    "simplex_solve",
    "solve_timed",
]
