"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report       regenerate the paper's tables and figures
fig3 ...     shorthand for one experiment (fig1/3/4/5/6/8/9, table2/3/4)
app          run one application on both systems at a problem size
check        run app(s) under the runtime sanitizer (race/coherence/
             protocol/watchdog detectors); ``--strict`` aborts on the
             first violation, exit code 2 when violations are found
synth        print Table 3 (circuit synthesis)
yield        print the Section 3 yield/cost comparison
power        print the Section 3 port-width power study
trace        run an app (or fig6) under the event tracer: Gantt chart,
             ``--out`` Perfetto trace_event JSON, ``--csv`` flat CSV
fuzz         seeded, time-boxed fuzzing of generated workloads under
             three oracles (sanitizer, model divergence, conventional/
             RADram equivalence); failing cases are shrunk to JSON
             reproducers, ``--replay FILE`` re-runs one
cache        inspect, summarize (``stats``), age-prune (``prune --days``)
             or clear the sweep result cache
serve        long-running simulation service: HTTP/JSON-lines front-end
             with per-tenant fair queuing, single-flight coalescing of
             identical in-flight work, bounded backpressure and
             ``/metrics`` / ``/cache/stats`` endpoints
submit       thin streaming client for ``serve`` (experiments, single
             tasks, fuzz runs, server introspection)
bench        run the cache hot-path microbenchmarks (``--update`` to
             refresh the committed ``BENCH_sim.json`` baseline)
faults       defect-density-vs-speedup sweep under fault injection;
             writes a Perfetto trace with fault/scrub/remap instants

Sweep-driven commands accept ``--jobs N`` (parallel workers),
``--no-cache`` (bypass ``.repro_cache/``), ``--task-timeout S``
(per-task deadline, pooled runs) and ``--retries N`` (re-attempts for
crashed/hung/raising sweep tasks).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.registry import ALL_APPS, get_app
from repro.experiments import harness
from repro.experiments import report as report_mod
from repro.experiments.runner import run_conventional, run_radram

#: Shorthand subcommands for single experiments.
EXPERIMENT_ALIASES = {
    "fig1": "figure-1",
    "fig3": "figure-3",
    "fig4": "figure-4",
    "fig5": "figure-5",
    "fig6": "figure-6",
    "fig8": "figure-8",
    "fig9": "figure-9",
    "table2": "table-2",
    "table3": "table-3",
    "table4": "table-4",
}


def _report_argv(args: argparse.Namespace, only: Optional[List[str]]) -> List[str]:
    argv: List[str] = []
    if args.quick:
        argv.append("--quick")
    if only:
        argv += ["--only"] + only
    if getattr(args, "extensions", False):
        argv.append("--extensions")
    if args.output:
        argv += ["--output", args.output]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if getattr(args, "trace_summary", False):
        argv.append("--trace-summary")
    if getattr(args, "task_timeout", None) is not None:
        argv += ["--task-timeout", str(args.task_timeout)]
    if getattr(args, "retries", None) is not None:
        argv += ["--retries", str(args.retries)]
    if getattr(args, "allow_failures", False):
        argv.append("--allow-failures")
    return argv


def _cmd_report(args: argparse.Namespace) -> int:
    return report_mod.main(_report_argv(args, args.only))


def _cmd_experiment(args: argparse.Namespace) -> int:
    return report_mod.main(_report_argv(args, [EXPERIMENT_ALIASES[args.command]]))


def _cmd_app(args: argparse.Namespace) -> int:
    app = get_app(args.name)
    conv = run_conventional(app, args.pages, cap_pages=None if args.exact else 8.0)
    rad = run_radram(app, args.pages)
    print(f"{app.name} at {args.pages} pages ({app.partitioning.value}):")
    print(f"  conventional: {conv.total_ns / 1e6:10.3f} ms")
    print(f"  RADram:       {rad.total_ns / 1e6:10.3f} ms")
    print(f"  speedup:      {conv.total_ns / rad.total_ns:10.1f}x")
    print(f"  CPU stalled:  {100 * rad.stall_fraction:10.1f}%")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.synth.report import format_table3

    print(format_table3())
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    from repro.radram.yieldmodel import yield_table

    print(f"{'chip':<12} {'yield':>7} {'cost':>9} {'vs dram':>9}")
    for row in yield_table(defect_density=args.defects):
        print(
            f"{row['chip']:<12} {row['yield']:>7.3f} "
            f"${row['cost_dollars']:>8.2f} {row['cost_vs_dram']:>8.2f}x"
        )
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.radram.power import port_width_study

    print(f"{'port bits':>10} {'bandwidth':>10} {'power mW':>10} {'circuits fit':>13}")
    for row in port_width_study():
        print(
            f"{row['port_bits']:>10} {row['relative_bandwidth']:>9.0f}x "
            f"{row['page_power_mw']:>10.1f} "
            f"{row['circuits_fitting']:>6}/{row['circuits_total']}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import events as trace_events
    from repro.trace import export as trace_export
    from repro.viz.gantt import render_gantt_events

    if args.name in EXPERIMENT_ALIASES:
        if args.name != "fig6":
            print(f"only the fig6 experiment is traceable (got {args.name!r})")
            return 2
        from repro.experiments import fig6_gantt

        result, events = fig6_gantt.run_traced(n_pages=args.pages)
        print(result.render())
    else:
        app = get_app(args.name)
        # Build the machine by hand so the memory system stays accessible.
        from repro.radram.config import RADramConfig
        from repro.radram.system import RADramMemorySystem
        from repro.sim.machine import Machine
        from repro.sim.memory import PagedMemory

        rconfig = RADramConfig.reference()
        memsys = RADramMemorySystem(rconfig)
        machine = Machine(
            memory=PagedMemory(page_bytes=rconfig.page_bytes), memsys=memsys
        )
        w = app.workload(args.pages, rconfig.page_bytes, functional=False)
        w.data["radram_config"] = rconfig
        with trace_events.tracing() as tracer:
            stats = machine.run(app.radram_stream(w))
        events = tracer.events()
        print(render_gantt_events(events, stats, max_pages=args.max_pages))

    summary = trace_export.summarize(events)
    print(
        f"trace: {int(summary['events'])} events "
        f"({int(summary['spans'])} spans, {int(summary['instants'])} instants, "
        f"{int(summary['counters'])} counters)"
    )
    if args.out:
        trace_export.write_chrome_trace(args.out, events)
        print(f"trace: wrote Perfetto trace_event JSON to {args.out}")
    if args.csv:
        trace_export.write_csv(args.csv, events)
        print(f"trace: wrote CSV to {args.csv}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.apps.registry import FUZZ_APPS
    from repro.workloads import replay_case, run_fuzz

    if args.replay:
        results = replay_case(args.replay, tolerance_scale=args.tolerance_scale)
        for o in results:
            status = "ok" if o.ok else "FAIL"
            print(f"replay {o.oracle}: {status} ({o.detail})")
        # Exit 2 when the case still reproduces — scripts can tell
        # "fixed" (0) from "still failing" (2) apart.
        return 2 if any(not o.ok for o in results) else 0

    time_box = args.time_box
    max_cases = args.max_cases
    if args.smoke:
        # CI smoke: bounded candidates AND a hard time box, whichever
        # bites first, so the job stays well under its 90 s budget.
        time_box = min(time_box, 45.0) if time_box else 45.0
        if max_cases is None:
            max_cases = 120
    elif time_box is None:
        time_box = 60.0

    apps = args.apps or list(FUZZ_APPS)
    report = run_fuzz(
        seed=args.seed,
        time_box_s=time_box,
        max_cases=max_cases,
        apps=apps,
        tolerance_scale=args.tolerance_scale,
        out_dir=args.out,
        log=print,
    )
    print(report.render())
    return 1 if report.findings else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import datetime

    cache = harness.ResultCache(harness.current_settings().resolve_cache_dir())
    action = "clear" if args.clear else args.action
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached sweep results from {cache.root}")
        return 0
    if action == "prune":
        removed = cache.prune(args.days)
        print(
            f"pruned {removed} entries older than {args.days:g} days "
            f"from {cache.root}"
        )
        jp = cache.last_journal_prune
        if jp.get("journals") or jp.get("tmp"):
            print(
                f"pruned {jp['journals']} completed job journal(s) and "
                f"{jp['tmp']} orphaned journal tmp file(s)"
            )
        if jp.get("leased"):
            print(
                f"kept {jp['leased']} journal(s) owned by live or "
                "mid-takeover cluster shards"
            )
        return 0
    if action == "stats":
        stats = cache.stats()
        print(f"cache dir: {stats['dir']}")
        print(f"entries:   {stats['entries']}")
        print(f"size:      {stats['total_bytes'] / 1024:.1f} KiB")
        for schema, count in sorted(stats["by_schema"].items()):
            print(f"schema {schema}:  {count}")
        jobs = stats["jobs"]
        print(
            f"journals:  {jobs['journals']} "
            f"({jobs['completed']} completed, "
            f"{jobs['recoverable']} recoverable, "
            f"{jobs['journal_bytes'] / 1024:.1f} KiB)"
        )
        if stats["entries"]:
            fmt = "%Y-%m-%d %H:%M:%S"
            oldest = datetime.datetime.fromtimestamp(stats["oldest_mtime"])
            newest = datetime.datetime.fromtimestamp(stats["newest_mtime"])
            print(f"oldest:    {oldest.strftime(fmt)}")
            print(f"newest:    {newest.strftime(fmt)}")
        return 0
    entries = cache.entries()
    total_bytes = sum(p.stat().st_size for p in entries)
    print(f"cache dir: {cache.root}")
    print(f"entries:   {len(entries)}")
    print(f"size:      {total_bytes / 1024:.1f} KiB")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import server as serve_mod

    return serve_mod.run_from_args(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import client as client_mod

    return client_mod.main(args.rest)


def _cmd_bench(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    from repro.experiments import simbench

    profiler = None
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()

    if args.update:
        doc = simbench.refresh_baseline(note=args.note or "", trials=args.trials)
        current = doc["workloads"]
        batch = doc["batch_workloads"]
        dispatch = doc[simbench.FAULTS_GATE_KEY]
        print(f"baseline refreshed: {simbench.BASELINE_PATH}")
    else:
        current = simbench.run_benchmarks(trials=args.trials)
        batch = simbench.run_batch_benchmarks(trials=args.trials)
        dispatch = simbench.run_dispatch_workload(trials=max(5, args.trials))

    if profiler is not None:
        profiler.disable()
        digest = io.StringIO()
        stats = pstats.Stats(profiler, stream=digest)
        stats.sort_stats("cumulative").print_stats(25)
        with open(args.profile_out, "w") as fh:
            fh.write(digest.getvalue())
        print(f"profile: top-25 cumulative digest written to {args.profile_out}")

    print(
        f"{'workload':<26} {'lines':>8} {'vec ms':>9} "
        f"{'scalar ms':>10} {'ns/line':>8} {'ratio':>7}"
    )
    for name, row in sorted(current.items()):
        print(
            f"{name:<26} {row['lines']:>8} {row['vectorized_ms']:>9.1f} "
            f"{row['scalar_ref_ms']:>10.1f} {row['vectorized_ns_per_line']:>8.1f} "
            f"{row['speedup_ratio']:>6.2f}x"
        )
    print(
        f"\n{'batched executor':<26} {'ops':>8} {'batch ms':>9} "
        f"{'scalar ms':>10} {'ratio':>7}"
    )
    for name, row in sorted(batch.items()):
        print(
            f"{name:<26} {row['ops']:>8} {row['batched_ms']:>9.1f} "
            f"{row['scalar_ms']:>10.1f} {row['batch_speedup_ratio']:>6.2f}x"
        )
    print(
        f"\ndispatch: {dispatch['dispatch_ms']:.1f} ms "
        f"(faults-disabled {dispatch['faults_disabled_overhead']:.2f}x, "
        f"checker {dispatch['checker_overhead']:.2f}x)"
    )

    record = simbench.history_record(
        current, batch, dispatch, args.trials,
        note=args.note, profiled=args.profile,
    )
    simbench.append_history(record)
    print(f"history: appended run to {simbench.HISTORY_PATH}")

    if args.update:
        return 0
    try:
        baseline = simbench.load_baseline()
    except OSError:
        print("no BENCH_sim.json baseline; run `python -m repro bench --update`")
        return 1
    failures = simbench.check_regressions(current, baseline)
    failures.update(simbench.check_batching_regressions(batch, baseline))
    for name, why in sorted(failures.items()):
        print(f"REGRESSION {name}: {why}")
    return 1 if failures else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments import faults_density
    from repro.faults.models import FaultConfig
    from repro.radram.config import RADramConfig
    from repro.trace import events as trace_events
    from repro.trace import export as trace_export

    harness.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        task_timeout_s=args.task_timeout,
        retries=args.retries,
    )
    densities = args.densities
    if densities is None and args.quick:
        densities = faults_density.DENSITY_SWEEP[::2]
    result = faults_density.run(densities=densities, seed=args.seed)
    print(result.render())

    # One traced run at a moderate fault mix that exercises every
    # tolerance path (scrub, spare-row remap, migration, degradation),
    # so the exported Perfetto trace carries fault/scrub/remap/migrate
    # instants on the "faults" track next to the page spans.
    traced_cfg = RADramConfig.reference().with_faults(
        FaultConfig(
            seed=args.seed,
            bit_flip_rate=0.4,
            hard_fault_rate=0.3,
            spare_rows=1,
            migration_limit=1,
            le_defect_density=100.0,
        )
    )
    app = get_app(args.trace_app)
    with trace_events.tracing() as tracer:
        run_radram(app, args.trace_pages, radram_config=traced_cfg)
    events = tracer.events()
    fault_instants = sum(1 for e in events if e.track == "faults" and e.ph == "I")
    trace_export.write_chrome_trace(args.out, events)
    print(
        f"trace: wrote {len(events)} events ({fault_instants} fault instants) "
        f"to {args.out}"
    )
    return 0


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument("--output", metavar="DIR")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N", help="parallel sweep workers"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the sweep result cache"
    )
    parser.add_argument(
        "--trace-summary",
        action="store_true",
        help="trace sweep runs; cached results carry trace.* digests",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-task deadline in seconds (pooled sweeps preempt hangs)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for crashed/hung/raising sweep tasks",
    )
    parser.add_argument(
        "--allow-failures",
        action="store_true",
        help="exit 0 even if sweep tasks failed (default: exit 1)",
    )


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.runner import PAPER_SIX, check_apps

    names = list(args.names)
    if names == ["all"]:
        names = sorted(ALL_APPS)
    elif names == ["paper-six"]:
        names = list(PAPER_SIX)
    report = check_apps(names, n_pages=args.pages, strict=args.strict)
    print(report.render())
    return 0 if report.clean else 2


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "submit":
        # Dispatch straight to the client's own parser: its remainder
        # may legitimately *start* with an option (``submit --resume
        # JOB``), which argparse.REMAINDER refuses to capture
        # (bpo-17050).
        from repro.serve import client as client_mod

        return client_mod.main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="regenerate tables and figures")
    p_report.add_argument("--only", nargs="*", choices=sorted(report_mod.EXPERIMENTS))
    p_report.add_argument("--extensions", action="store_true")
    _add_sweep_flags(p_report)
    p_report.set_defaults(func=_cmd_report)

    for alias, experiment_id in EXPERIMENT_ALIASES.items():
        p_exp = sub.add_parser(alias, help=f"regenerate {experiment_id} only")
        _add_sweep_flags(p_exp)
        p_exp.set_defaults(func=_cmd_experiment)

    p_bench = sub.add_parser("bench", help="cache hot-path microbenchmarks")
    p_bench.add_argument(
        "--update", action="store_true", help="rewrite the BENCH_sim.json baseline"
    )
    p_bench.add_argument("--note", metavar="TEXT", help="note stored with --update")
    p_bench.add_argument(
        "--trials",
        type=int,
        default=3,
        metavar="N",
        help="fresh-hierarchy runs per workload (min-of-N; raise on noisy hosts)",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="profile the benchmark run; writes a cProfile top-25 "
        "cumulative digest",
    )
    p_bench.add_argument(
        "--profile-out",
        metavar="FILE",
        default="bench_profile.txt",
        help="digest path for --profile (default: bench_profile.txt)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_faults = sub.add_parser(
        "faults", help="defect density vs speedup under fault injection"
    )
    p_faults.add_argument(
        "--densities",
        type=float,
        nargs="*",
        default=None,
        metavar="D",
        help="LE defect densities (defects/cm^2) to sweep",
    )
    p_faults.add_argument("--seed", type=int, default=0, help="fault seed")
    p_faults.add_argument(
        "--out",
        metavar="FILE",
        default="trace_faults.json",
        help="Perfetto trace_event JSON with fault/scrub/remap instants",
    )
    p_faults.add_argument(
        "--trace-app",
        default="array-insert",
        choices=sorted(ALL_APPS),
        help="application used for the traced faulty run",
    )
    p_faults.add_argument("--trace-pages", type=float, default=8.0)
    _add_sweep_flags(p_faults)
    p_faults.set_defaults(func=_cmd_faults)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz generated workloads under three oracles"
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="fuzz seed")
    p_fuzz.add_argument(
        "--time-box",
        type=float,
        default=None,
        metavar="S",
        help="stop after S seconds (default 60; smoke caps at 45)",
    )
    p_fuzz.add_argument(
        "--max-cases",
        type=int,
        default=None,
        metavar="N",
        help="stop after N candidates (makes runs seed-deterministic)",
    )
    p_fuzz.add_argument(
        "--apps",
        nargs="*",
        default=None,
        metavar="NAME",
        help="generators to fuzz (default: the FUZZ_APPS set)",
    )
    p_fuzz.add_argument(
        "--tolerance-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="scale every generator's model tolerance (CI uses 1.0)",
    )
    p_fuzz.add_argument(
        "--out",
        metavar="DIR",
        default="fuzz-findings",
        help="directory for shrunk counterexample JSON case files",
    )
    p_fuzz.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke profile: <=45s, <=120 candidates",
    )
    p_fuzz.add_argument(
        "--replay",
        metavar="FILE",
        help="re-run one written case file (exit 2 if it reproduces)",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_cache = sub.add_parser(
        "cache", help="inspect, summarize, prune or clear the sweep cache"
    )
    p_cache.add_argument(
        "action",
        nargs="?",
        default="info",
        choices=("info", "stats", "prune", "clear"),
        help="info (default): dir/entry/size summary; stats: adds schema "
        "breakdown and entry age range; prune: drop entries older than "
        "--days; clear: drop everything",
    )
    p_cache.add_argument(
        "--days",
        type=float,
        default=30.0,
        metavar="N",
        help="age threshold for prune (default 30)",
    )
    p_cache.add_argument("--clear", action="store_true", help=argparse.SUPPRESS)
    p_cache.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="run the long-running simulation service"
    )
    from repro.serve.server import add_serve_arguments

    add_serve_arguments(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit work to a running serve instance and stream events",
        add_help=False,
    )
    p_submit.add_argument("rest", nargs=argparse.REMAINDER)
    p_submit.set_defaults(func=_cmd_submit)

    p_app = sub.add_parser("app", help="run one application")
    p_app.add_argument("name", choices=sorted(ALL_APPS))
    p_app.add_argument("--pages", type=float, default=16.0)
    p_app.add_argument("--exact", action="store_true", help="no extrapolation")
    p_app.set_defaults(func=_cmd_app)

    p_check = sub.add_parser(
        "check", help="run app(s) under the runtime sanitizer"
    )
    p_check.add_argument(
        "names",
        nargs="+",
        choices=sorted(ALL_APPS) + ["all", "paper-six"],
        help="applications to check ('all', or 'paper-six' for the "
        "six-app acceptance set)",
    )
    p_check.add_argument("--pages", type=float, default=8.0)
    p_check.add_argument(
        "--strict",
        action="store_true",
        help="raise on the first violation instead of counting",
    )
    p_check.set_defaults(func=_cmd_check)

    p_synth = sub.add_parser("synth", help="print Table 3")
    p_synth.set_defaults(func=_cmd_synth)

    p_yield = sub.add_parser("yield", help="yield/cost comparison")
    p_yield.add_argument("--defects", type=float, default=1.0, help="defects/cm^2")
    p_yield.set_defaults(func=_cmd_yield)

    p_power = sub.add_parser("power", help="port-width power study")
    p_power.set_defaults(func=_cmd_power)

    p_trace = sub.add_parser(
        "trace", help="traced run: Gantt chart + Perfetto/CSV export"
    )
    p_trace.add_argument("name", choices=sorted(ALL_APPS) + ["fig6"])
    p_trace.add_argument("--pages", type=float, default=8.0)
    p_trace.add_argument("--max-pages", type=int, default=16)
    p_trace.add_argument(
        "--out", metavar="FILE", help="write Chrome/Perfetto trace_event JSON"
    )
    p_trace.add_argument("--csv", metavar="FILE", help="write a flat event CSV")
    p_trace.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
