"""FPGA synthesis estimator (paper Section 6, Table 3).

The paper hand-codes each Active-Page function in VHDL and synthesizes
it with Synopsys tools to an Altera FLEX-10K10-3, reporting logic
elements (LEs), post-route clock speed, and configuration code size.
We reproduce that flow with a small technology-mapping model:

* :mod:`repro.synth.netlist` — circuits as staged dataflow graphs of
  datapath operators (adders, comparators, muxes, registers, FSMs).
* :mod:`repro.synth.lut` — per-operator 4-LUT/LE counts using standard
  mapping formulas (carry chains for adders, log-4 reduction trees for
  comparators, one LE per register bit, ...).
* :mod:`repro.synth.timing` — critical-path estimate from LUT levels
  with FLEX-10K-era delay constants.
* :mod:`repro.synth.circuits` — the seven application circuits.
* :mod:`repro.synth.report` — regenerates Table 3.
"""

from repro.synth.lut import le_count, operator_les
from repro.synth.netlist import Netlist, Operator, OpKind
from repro.synth.report import SynthesisResult, synthesize, table3
from repro.synth.timing import critical_path_ns

__all__ = [
    "Netlist",
    "OpKind",
    "Operator",
    "SynthesisResult",
    "critical_path_ns",
    "le_count",
    "operator_les",
    "synthesize",
    "table3",
]
