"""The seven application circuits of Table 3.

Each function below describes the datapath an Active-Page function
needs, as a staged operator netlist.  Widths follow the applications:
19-bit addresses index a 512 KB page of bytes, 32-bit data words,
16-bit counters and image/table values, 20-bit sparse-matrix indices.

The netlists are *structural* descriptions — LE counts and speeds fall
out of the generic mapping formulas in :mod:`repro.synth.lut` and
:mod:`repro.synth.timing`, not per-circuit constants.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.synth.netlist import Netlist, OpKind

ADDR = 19  # bits to address a 512 KB page
WORD = 32
COUNT = 16
INDEX = 20  # sparse-matrix index width


def array_delete() -> Netlist:
    """Shift the tail of the array down one slot, word per cycle."""
    n = Netlist("Array-delete")
    # Stage 0: walk addresses while below the end of the array.
    n.add(OpKind.COUNTER, ADDR, stage=0, name="addr")
    n.add(OpKind.LT, ADDR, stage=0, name="addr<end")
    # Stage 1: word buffer and write-data select, plus control.
    n.add(OpKind.REG, WORD, stage=1, name="word buffer")
    n.add(OpKind.MUX2, WORD, stage=1, name="write select")
    n.add(OpKind.FSM, 3, stage=1, name="control")
    n.add(OpKind.BITWISE, 1, stage=1, name="done gate")
    return n


def array_insert() -> Netlist:
    """Shift the tail up one slot (walks downward from the end)."""
    n = Netlist("Array-insert")
    # Stage 0: downward address walk with insert-position offset.
    n.add(OpKind.COUNTER, ADDR, stage=0, name="addr")
    n.add(OpKind.ADD, 6, stage=0, name="insert offset")
    n.add(OpKind.BITWISE, 1, stage=0, name="direction gate")
    # Stage 1: bounds check runs a cycle behind the walk.
    n.add(OpKind.LT, ADDR, stage=1, name="addr>insert point")
    # Stage 2: word buffer, write select, control.
    n.add(OpKind.REG, WORD, stage=2, name="word buffer")
    n.add(OpKind.MUX2, WORD, stage=2, name="write select")
    n.add(OpKind.FSM, 3, stage=2, name="control")
    return n


def array_find() -> Netlist:
    """Count occurrences of a 32-bit key (binary comparison circuit)."""
    n = Netlist("Array-find")
    n.add(OpKind.COUNTER, ADDR, stage=0, name="addr")
    n.add(OpKind.LT, ADDR, stage=0, name="addr<end")
    n.add(OpKind.REG, WORD, stage=1, name="word buffer")
    n.add(OpKind.REG, WORD, stage=1, name="key register")
    n.add(OpKind.EQ, WORD, stage=2, name="word==key")
    n.add(OpKind.COUNTER, COUNT, stage=2, name="match count")
    n.add(OpKind.BITWISE, 6, stage=2, name="range qualifiers")
    n.add(OpKind.FSM, 3, stage=1, name="control")
    return n


def database() -> Netlist:
    """Unindexed exact-match scan over fixed-layout address records."""
    n = Netlist("Database")
    # Stage 0: record walk — stride adder plus end-of-block check.
    n.add(OpKind.COUNTER, ADDR, stage=0, name="record addr")
    n.add(OpKind.ADD, ADDR, stage=0, name="record stride")
    n.add(OpKind.LT, ADDR, stage=1, name="addr<end")
    n.add(OpKind.REG, COUNT, stage=1, name="field offset")
    n.add(OpKind.REG, WORD, stage=1, name="query word")
    n.add(OpKind.BITWISE, 2, stage=1, name="field qualifiers")
    # Stage 2: 4-bytes-at-a-time field compare and match counting.
    n.add(OpKind.EQ, WORD, stage=2, name="field==query")
    n.add(OpKind.COUNTER, COUNT, stage=2, name="match count")
    n.add(OpKind.FSM, 4, stage=2, name="control")
    return n


def dynamic_prog() -> Netlist:
    """One LCS wavefront cell: table[i][j] from up/left/diag."""
    n = Netlist("Dynamic Prog")
    # Stage 0: the two chained MAX units over up/left/diag+1.
    n.add(OpKind.REG, COUNT, stage=0, name="up value")
    n.add(OpKind.REG, COUNT, stage=0, name="left value")
    n.add(OpKind.REG, COUNT, stage=0, name="diag value")
    n.add(OpKind.LT, COUNT, stage=0, name="max1 compare")
    n.add(OpKind.MUX2, COUNT, stage=0, name="max1 select")
    n.add(OpKind.LT, COUNT, stage=0, name="max2 compare")
    n.add(OpKind.MUX2, COUNT, stage=0, name="max2 select")
    # Stage 1: char match path (+1 on the diagonal), table walk.
    n.add(OpKind.ADD, COUNT, stage=1, name="diag+1")
    n.add(OpKind.EQ, COUNT, stage=1, name="char match")
    n.add(OpKind.FSM, 4, stage=1, name="control")
    n.add(OpKind.BITWISE, 3, stage=1, name="wavefront qualifiers")
    n.add(OpKind.REG, COUNT, stage=1, name="cell out")
    # Stage 2: row/column addressing.
    n.add(OpKind.COUNTER, ADDR, stage=2, name="cell addr")
    return n


def matrix() -> Netlist:
    """Sparse-vector index compare and gather (compare-gather-compute)."""
    n = Netlist("Matrix")
    # Stage 0: the three-way index comparison driving the gather.
    n.add(OpKind.REG, WORD, stage=0, name="index a")
    n.add(OpKind.REG, WORD, stage=0, name="index b")
    n.add(OpKind.LT, WORD, stage=0, name="a<b")
    n.add(OpKind.EQ, WORD, stage=0, name="a==b")
    n.add(OpKind.MUX2, 8, stage=0, name="advance select")
    n.add(OpKind.BITWISE, 6, stage=0, name="match qualifiers")
    # Stage 1: nonzero pointers and gather addressing.
    n.add(OpKind.COUNTER, INDEX, stage=1, name="ptr a")
    n.add(OpKind.COUNTER, INDEX, stage=1, name="ptr b")
    n.add(OpKind.ADD, INDEX, stage=1, name="gather addr")
    # Stage 2: packed output staging.
    n.add(OpKind.COUNTER, COUNT, stage=2, name="output count")
    n.add(OpKind.FSM, 4, stage=2, name="control")
    return n


def mpeg_mmx() -> Netlist:
    """Wide paddsw datapath: two 16-bit saturating adds per cycle."""
    n = Netlist("MPEG-MMX")
    # Stages 0/1: the two parallel saturating adder lanes.
    n.add(OpKind.ADD, 17, stage=0, name="lane0 add")
    n.add(OpKind.SATCLAMP, 16, stage=0, name="lane0 clamp")
    n.add(OpKind.ADD, 17, stage=1, name="lane1 add")
    n.add(OpKind.SATCLAMP, 16, stage=1, name="lane1 clamp")
    # Stage 2: block walk and control.
    n.add(OpKind.COUNTER, ADDR, stage=2, name="block addr")
    n.add(OpKind.LT, ADDR, stage=2, name="addr<end")
    n.add(OpKind.FSM, 3, stage=2, name="control")
    n.add(OpKind.REG, 8, stage=1, name="opcode register")
    n.add(OpKind.BITWISE, 3, stage=0, name="lane qualifiers")
    return n


#: Circuit factory per Table 3 row name.
CIRCUITS: Dict[str, Callable[[], Netlist]] = {
    "Array-delete": array_delete,
    "Array-insert": array_insert,
    "Array-find": array_find,
    "Database": database,
    "Dynamic Prog": dynamic_prog,
    "Matrix": matrix,
    "MPEG-MMX": mpeg_mmx,
}

#: Paper Table 3 reference values: name -> (LEs, speed ns, code KB).
TABLE3_PAPER = {
    "Array-delete": (109, 29.0, 2.7),
    "Array-insert": (115, 26.2, 2.9),
    "Array-find": (141, 32.1, 3.5),
    "Database": (142, 35.4, 3.5),
    "Dynamic Prog": (179, 39.2, 4.5),
    "Matrix": (205, 45.3, 5.6),
    "MPEG-MMX": (131, 34.6, 3.3),
}
