"""Table 3 regeneration: synthesize every application circuit.

``table3()`` returns one :class:`SynthesisResult` per circuit in the
paper's row order; ``format_table3`` renders it next to the paper's
published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.synth.circuits import CIRCUITS, TABLE3_PAPER
from repro.synth.lut import code_size_bytes, le_count
from repro.synth.netlist import Netlist
from repro.synth.timing import critical_path_ns


@dataclass(frozen=True)
class SynthesisResult:
    """One synthesized circuit: the columns of Table 3."""

    name: str
    les: int
    speed_ns: float
    code_kb: float

    @property
    def max_clock_mhz(self) -> float:
        return 1e3 / self.speed_ns


def synthesize(netlist: Netlist) -> SynthesisResult:
    """Map and time one circuit."""
    return SynthesisResult(
        name=netlist.name,
        les=le_count(netlist),
        speed_ns=critical_path_ns(netlist),
        code_kb=code_size_bytes(netlist) / 1024.0,
    )


def table3() -> List[SynthesisResult]:
    """Synthesize all seven circuits in the paper's row order."""
    return [synthesize(factory()) for factory in CIRCUITS.values()]


def format_table3(results: List[SynthesisResult] = None) -> str:
    """Render Table 3 with measured-vs-paper columns."""
    results = results if results is not None else table3()
    lines = [
        "Table 3: Active-Page functions synthesized for RADram",
        f"{'Application':<14} {'LEs':>5} {'(paper)':>8} {'Speed':>8} "
        f"{'(paper)':>8} {'Code':>7} {'(paper)':>8}",
    ]
    for r in results:
        paper = TABLE3_PAPER.get(r.name)
        p_les, p_speed, p_code = paper if paper else ("-", "-", "-")
        lines.append(
            f"{r.name:<14} {r.les:>5} {p_les:>8} {r.speed_ns:>6.1f}ns "
            f"{p_speed:>6.1f}ns {r.code_kb:>5.1f}KB {p_code:>6.1f}KB"
        )
    return "\n".join(lines)
