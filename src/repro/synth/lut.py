"""4-LUT technology mapping: LE counts per operator.

Standard mapping results for a 4-input LUT + 1 FF logic element
(Altera FLEX-10K style, the paper's target):

* n-bit adder: n LEs — one LUT per bit using the dedicated carry chain.
* n-bit equality: a log-4 AND-reduction tree over per-4-bit compares.
* n-bit magnitude compare: n LEs (carry-chain subtract, borrow out).
* 2:1 mux: 1 LE per bit (3 inputs); 4:1 mux: 2 LEs per bit (6 inputs).
* 2-input bitwise: 1 LE per bit.
* register: 1 LE per bit (the LE's flip-flop; LUT may be unused).
* counter: 1 LE per bit (adder LUT + FF pack into one LE).
* saturation clamp: overflow detect (~n/4 tree) + output mux (n).
* FSM with s states: one-hot — s FFs plus roughly s next-state LUTs.
* ROM: 1 LE per output bit (small decode tables).
"""

from __future__ import annotations

import math

from repro.synth.netlist import Netlist, Operator, OpKind


def _reduction_tree_luts(n_bits: int) -> int:
    """LUTs in a log-4 reduction tree over ``n_bits`` inputs."""
    luts = 0
    width = n_bits
    while width > 1:
        width = math.ceil(width / 4)
        luts += width
    return max(luts, 1)


def operator_les(op: Operator) -> int:
    """Logic elements one operator maps to."""
    n = op.bits
    if op.kind is OpKind.ADD:
        return n
    if op.kind is OpKind.EQ:
        return _reduction_tree_luts(n)
    if op.kind is OpKind.LT:
        return n
    if op.kind is OpKind.MUX2:
        return n
    if op.kind is OpKind.MUX4:
        return 2 * n
    if op.kind is OpKind.BITWISE:
        return n
    if op.kind is OpKind.REG:
        return n
    if op.kind is OpKind.COUNTER:
        return n
    if op.kind is OpKind.SATCLAMP:
        return _reduction_tree_luts(n) + n
    if op.kind is OpKind.FSM:
        states = n
        return states + states  # one-hot FFs + next-state logic
    if op.kind is OpKind.ROM:
        return n
    raise ValueError(f"unmapped operator kind {op.kind}")


def le_count(netlist: Netlist) -> int:
    """Total LEs of a netlist (completely + partially used, Table 3)."""
    return sum(operator_les(op) for op in netlist.operators)


def operator_levels(op: Operator) -> float:
    """LUT levels the operator contributes to its stage's path."""
    n = op.bits
    if op.kind is OpKind.ADD:
        # Dedicated carry chain: one LUT level plus fast per-bit carry
        # (~1/8 of a LUT delay per bit is a good FLEX-10K-era figure).
        return 1.0 + n / 8.0
    if op.kind is OpKind.EQ:
        return max(1.0, math.ceil(math.log(max(n, 2), 4)) + 1.0)
    if op.kind is OpKind.LT:
        return 1.0 + n / 8.0
    if op.kind is OpKind.MUX2:
        return 1.0
    if op.kind is OpKind.MUX4:
        return 2.0
    if op.kind is OpKind.BITWISE:
        return 1.0
    if op.kind is OpKind.REG:
        return 0.0  # path endpoint
    if op.kind is OpKind.COUNTER:
        return 1.0 + n / 8.0
    if op.kind is OpKind.SATCLAMP:
        return 2.0
    if op.kind is OpKind.FSM:
        return 2.0
    if op.kind is OpKind.ROM:
        return 1.0
    raise ValueError(f"unmapped operator kind {op.kind}")


#: Configuration-stream bytes per LE (SRAM config bits + addressing);
#: calibrated against the paper's code-size column (~25.5 B/LE).
CODE_BYTES_PER_LE = 25.5


def code_size_bytes(netlist: Netlist) -> int:
    """Estimated configuration bitstream size ("code" in Table 3)."""
    return round(le_count(netlist) * CODE_BYTES_PER_LE)
