"""Circuit descriptions: staged dataflow graphs of datapath operators.

A :class:`Netlist` is a list of :class:`Operator` s, each assigned to a
pipeline *stage* (register-to-register section).  Operators within a
stage are assumed chained for timing purposes — conservative, matching
the short datapaths of the paper's circuits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class OpKind(enum.Enum):
    """Datapath operator vocabulary (a 4-LUT mapping target)."""

    ADD = "add"  # ripple/carry-chain adder or subtractor
    EQ = "eq"  # equality comparator (log-4 reduction tree)
    LT = "lt"  # magnitude comparator
    MUX2 = "mux2"  # 2:1 multiplexer
    MUX4 = "mux4"  # 4:1 multiplexer
    BITWISE = "bitwise"  # 2-input and/or/xor
    REG = "reg"  # pipeline/holding register (1 LE per bit)
    COUNTER = "counter"  # loadable counter (adder + register packed)
    SATCLAMP = "satclamp"  # saturation clamp (overflow detect + mux)
    FSM = "fsm"  # control state machine ('bits' = number of states)
    ROM = "rom"  # small LUT ROM ('bits' = output bits)


@dataclass(frozen=True)
class Operator:
    """One datapath operator of ``bits`` width, in pipeline ``stage``."""

    kind: OpKind
    bits: int
    stage: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"operator {self.kind} needs positive width")
        if self.stage < 0:
            raise ValueError("stage cannot be negative")


@dataclass
class Netlist:
    """A named circuit built from staged operators."""

    name: str
    operators: List[Operator] = field(default_factory=list)

    def add(self, kind: OpKind, bits: int, stage: int = 0, name: str = "") -> "Netlist":
        """Append an operator (chainable)."""
        self.operators.append(Operator(kind, bits, stage, name))
        return self

    @property
    def n_stages(self) -> int:
        if not self.operators:
            return 0
        return max(op.stage for op in self.operators) + 1

    def stage_operators(self, stage: int) -> List[Operator]:
        return [op for op in self.operators if op.stage == stage]

    def by_kind(self) -> Dict[OpKind, int]:
        """Operator count per kind (for reports and tests)."""
        counts: Dict[OpKind, int] = {}
        for op in self.operators:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts
