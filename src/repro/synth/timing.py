"""Critical-path timing estimate.

Post-route delay per stage is modeled as a fixed register overhead
(clock-to-Q + setup) plus a per-LUT-level delay covering LUT plus local
routing — the dominant terms in FLEX-10K-era devices.  The achievable
clock period of the whole circuit is the slowest stage.
"""

from __future__ import annotations

from repro.synth.lut import operator_levels
from repro.synth.netlist import Netlist

#: Register clock-to-Q plus setup (ns).
T_REG_NS = 4.0
#: One LUT level including local routing (ns) — FLEX-10K-3 class.
T_LEVEL_NS = 3.6


def stage_levels(netlist: Netlist, stage: int) -> float:
    """LUT levels of one pipeline stage (operators assumed chained)."""
    return sum(operator_levels(op) for op in netlist.stage_operators(stage))


def critical_path_ns(netlist: Netlist) -> float:
    """Achievable clock period: the slowest register-to-register path."""
    if not netlist.operators:
        return T_REG_NS
    worst = max(stage_levels(netlist, s) for s in range(netlist.n_stages))
    return T_REG_NS + worst * T_LEVEL_NS
