"""Active Pages / RADram reproduction.

This package reproduces *Active Pages: A Computation Model for
Intelligent Memory* (Oskin, Chong, Sherwood; ISCA 1998).  It contains:

``repro.sim``
    A discrete-event machine simulator standing in for SimpleScalar:
    an in-order processor timing model, set-associative LRU caches,
    a 32-bit/10 ns memory bus, DRAM timing, and a functional paged
    memory backing store.

``repro.core``
    The Active Pages computation model itself: pages, page groups,
    the ``ap_alloc``/``ap_bind`` interface, synchronization variables,
    and the analytic performance model of the paper's Figure 7.

``repro.radram``
    The RADram implementation: DRAM subarrays paired with blocks of
    reconfigurable logic, activation dispatch, processor-mediated
    inter-page communication, and wide MMX operations.

``repro.synth``
    A small FPGA synthesis estimator (netlist -> 4-LUT mapping ->
    timing) used to regenerate the paper's Table 3.

``repro.apps``
    The six applications of the paper's evaluation, each in a
    conventional and an Active-Page partitioned version.

``repro.experiments``
    Harness code regenerating every table and figure of the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
