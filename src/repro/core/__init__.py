"""The Active Pages computation model (the paper's contribution).

This package is technology-agnostic: it defines what an Active Page
*is* — a page of data plus bound functions, allocated in groups,
coordinated through synchronization variables — and the analytic
performance model of the paper's Section 7.4.  The RADram realization
(timing, logic budgets, inter-page mechanics) lives in
:mod:`repro.radram`.
"""

from repro.core.api import ActivePageSystem, HostEmulationSystem
from repro.core.functions import APFunction, CommRequest, PageTask, Segment
from repro.core.model import (
    non_overlap_times,
    pages_for_complete_overlap,
    predict_speedup,
    speedup_overall,
    speedup_partitioned,
)
from repro.core.page import SYNC_BYTES, ActivePage, PageGroup
from repro.core.regions import Region, classify_regions
from repro.core.sync import SyncArea, SyncState

__all__ = [
    "APFunction",
    "ActivePage",
    "ActivePageSystem",
    "CommRequest",
    "HostEmulationSystem",
    "PageGroup",
    "PageTask",
    "Region",
    "SYNC_BYTES",
    "Segment",
    "SyncArea",
    "SyncState",
    "classify_regions",
    "non_overlap_times",
    "pages_for_complete_overlap",
    "predict_speedup",
    "speedup_overall",
    "speedup_partitioned",
]
