"""Speedup-region classification (paper Figure 1).

The paper predicts three regions as problem size grows:

* **sub-page** — the problem occupies at most one Active Page;
  activation overhead dominates and speedup is flat and small.
* **scalable** — pages (and thus compute engines) grow with the
  problem; speedup grows roughly linearly.
* **saturated** — the fixed processor resource limits progress; the
  speedup curve levels off (and may decline as coordination costs
  grow).

``classify_regions`` labels each point of a measured speedup curve by
its local log-log slope: near-unit slope is scalable, near-zero (or
negative) slope at large sizes is saturated, and sizes at or below one
page are sub-page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


class Region(enum.Enum):
    SUB_PAGE = "sub-page"
    SCALABLE = "scalable"
    SATURATED = "saturated"


@dataclass(frozen=True)
class RegionPoint:
    """One classified point of a speedup curve."""

    n_pages: float
    speedup: float
    region: Region
    slope: float  # local d log(speedup) / d log(pages)


def classify_regions(
    n_pages: Sequence[float],
    speedups: Sequence[float],
    scalable_slope: float = 0.5,
    saturated_slope: float = 0.15,
) -> List[RegionPoint]:
    """Label each (pages, speedup) point with its Figure 1 region.

    ``scalable_slope`` is the minimum local log-log slope to count as
    scalable growth; below ``saturated_slope`` a point past the first
    page counts as saturated.  Points between the thresholds inherit
    the preceding label, which keeps single noisy points from
    splitting a region.
    """
    k = np.asarray(n_pages, dtype=float)
    s = np.asarray(speedups, dtype=float)
    if k.shape != s.shape or k.size < 2:
        raise ValueError("need two same-length series of at least 2 points")
    if np.any(k <= 0) or np.any(s <= 0):
        raise ValueError("pages and speedups must be positive")
    if np.any(np.diff(k) <= 0):
        raise ValueError("page counts must be strictly increasing")

    slopes = np.gradient(np.log(s), np.log(k))
    points: List[RegionPoint] = []
    previous = Region.SUB_PAGE
    for ki, si, gi in zip(k, s, slopes):
        if ki <= 1.0:
            region = Region.SUB_PAGE
        elif gi >= scalable_slope:
            region = Region.SCALABLE
        elif gi <= saturated_slope:
            # Leveling off before any growth is still sub-page behaviour.
            region = Region.SATURATED if previous != Region.SUB_PAGE else Region.SUB_PAGE
            if previous == Region.SCALABLE or previous == Region.SATURATED:
                region = Region.SATURATED
        else:
            region = previous
        points.append(RegionPoint(float(ki), float(si), region, float(gi)))
        previous = region
    return points


def region_boundaries(points: Sequence[RegionPoint]) -> dict:
    """First page count at which each region begins (for reports)."""
    bounds = {}
    for p in points:
        if p.region not in bounds:
            bounds[p.region] = p.n_pages
    return bounds
