"""Active-Page functions and their abstract execution cost.

An :class:`APFunction` pairs a *functional* implementation (what the
circuit computes, applied to real page bytes) with a *cost model* (how
many reconfigurable-logic cycles the synthesized circuit needs).  The
cost model returns a :class:`PageTask`: an ordered list of
:class:`Segment` s, each a run of logic cycles optionally followed by an
inter-page memory reference (:class:`CommRequest`) on which the page
blocks until the processor services it — the paper's processor-mediated
communication (Section 3).

Costs are expressed in *logic cycles*, not nanoseconds: the core model
is technology-agnostic, and the implementing memory system (RADram at
100 MHz, or the Section 8 variations) converts cycles to time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.errors import ActivationError


@dataclass(frozen=True)
class CommRequest:
    """A non-local memory reference issued by a page function.

    The page blocks; the processor is interrupted and performs the copy
    (``nbytes`` between ``src_vaddr`` and ``dst_vaddr``) before the page
    can resume.  Several references may be combined into one contiguous
    copy, which is how applications are expected to use this.
    """

    nbytes: int
    src_vaddr: int = 0
    dst_vaddr: int = 0
    note: str = ""


@dataclass(frozen=True)
class Segment:
    """``logic_cycles`` of page computation, then an optional block."""

    logic_cycles: float
    comm: Optional[CommRequest] = None

    def __post_init__(self) -> None:
        if self.logic_cycles < 0:
            raise ActivationError("segment cycles cannot be negative")


@dataclass(frozen=True)
class PageTask:
    """The complete page-side execution of one activation.

    ``working_spans`` optionally declares the absolute address ranges
    (``(vaddr, nbytes)`` pairs) the page function may touch, for the
    runtime sanitizer's race detector (:mod:`repro.check`).  An empty
    tuple means "undeclared", which the sanitizer conservatively treats
    as the activated page's entire data region.
    """

    segments: Tuple[Segment, ...]
    working_spans: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def simple(
        cls,
        logic_cycles: float,
        working_spans: Sequence[Tuple[int, int]] = (),
    ) -> "PageTask":
        """A task with no inter-page communication."""
        return cls(
            segments=(Segment(logic_cycles),),
            working_spans=tuple(working_spans),
        )

    @classmethod
    def of(
        cls,
        segments: Sequence[Segment],
        working_spans: Sequence[Tuple[int, int]] = (),
    ) -> "PageTask":
        return cls(
            segments=tuple(segments), working_spans=tuple(working_spans)
        )

    @property
    def total_cycles(self) -> float:
        return sum(s.logic_cycles for s in self.segments)

    @property
    def comm_requests(self) -> List[CommRequest]:
        return [s.comm for s in self.segments if s.comm is not None]


# Functional implementation: receives the ActivePage and the activation
# arguments; mutates page bytes and/or returns a result object that the
# host emulation records in the page's sync area.
FunctionalImpl = Callable[["ActivePage", tuple], object]  # noqa: F821
# Cost model: receives the activation arguments, returns the PageTask.
CostModel = Callable[[tuple], PageTask]


@dataclass
class APFunction:
    """A function bindable to a page group via ``ap_bind``.

    Parameters
    ----------
    name:
        The name used at activation time.
    apply:
        Functional implementation (may be ``None`` for timing-only use).
    cost:
        Cost model producing a :class:`PageTask` per activation.
        Defaults to a zero-cycle task.
    le_count:
        Logic elements the synthesized circuit occupies (Table 3);
        checked against the implementation's per-page budget at bind
        time.  ``0`` means "unknown/not enforced".
    descriptor_words:
        32-bit parameter words an activation writes to the page
        (drives activation time T_A in timed implementations).
    """

    name: str
    apply: Optional[FunctionalImpl] = None
    cost: Optional[CostModel] = None
    le_count: int = 0
    descriptor_words: int = 8

    def task_for(self, args: tuple) -> PageTask:
        """The page-side task for an activation with ``args``."""
        if self.cost is None:
            return PageTask.simple(0.0)
        return self.cost(args)
