"""Active Pages and page groups.

An :class:`ActivePage` is one superpage of the shared functional memory
plus its reserved synchronization area.  Pages operating on the same
data belong to a :class:`PageGroup` (the paper's ``group_id``), the unit
to which function sets are bound with ``ap_bind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.errors import BindError, GroupError
from repro.core.functions import APFunction
from repro.core.sync import SYNC_WORDS, SyncArea
from repro.sim.memory import PagedMemory, Region

# Bytes reserved at the top of every Active Page for sync variables.
SYNC_BYTES = SYNC_WORDS * 4


class ActivePage:
    """One superpage with data area and synchronization area."""

    def __init__(self, memory: PagedMemory, page_no: int, group: "PageGroup") -> None:
        self.memory = memory
        self.page_no = page_no
        self.group = group
        self._raw = memory.page_view(page_no)

    @property
    def page_bytes(self) -> int:
        return self.memory.page_bytes

    @property
    def data_bytes(self) -> int:
        """Bytes usable for data (page minus the sync area)."""
        return self.page_bytes - SYNC_BYTES

    @property
    def base_vaddr(self) -> int:
        return self.page_no * self.page_bytes

    def data_view(self, dtype: np.dtype = np.uint8, count: int = -1) -> np.ndarray:
        """Typed view of the page's data area."""
        dt = np.dtype(dtype)
        usable = self.data_bytes - (self.data_bytes % dt.itemsize)
        view = self._raw[:usable].view(dt)
        if count >= 0:
            view = view[:count]
        return view

    @property
    def sync(self) -> SyncArea:
        """The page's synchronization variables."""
        words = self._raw[self.data_bytes :].view(np.uint32)
        return SyncArea(words, owner=self.page_no)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivePage(page_no={self.page_no}, group={self.group.group_id!r})"


@dataclass
class PageGroup:
    """A named group of Active Pages sharing one bound function set."""

    group_id: str
    region: Region
    pages: List[ActivePage] = field(default_factory=list)
    functions: Dict[str, APFunction] = field(default_factory=dict)
    function_ids: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self):
        return iter(self.pages)

    def page(self, index: int) -> ActivePage:
        """The ``index``-th page of the group."""
        if not 0 <= index < len(self.pages):
            raise GroupError(
                f"group {self.group_id!r} has {len(self.pages)} pages; "
                f"index {index} out of range"
            )
        return self.pages[index]

    def bind(self, functions: "list[APFunction]", le_budget: int = 0) -> None:
        """Replace the group's function set (repeated ``ap_bind``).

        ``le_budget`` > 0 enforces the per-page logic capacity: the
        *sum* of bound circuits must fit (they share the page's LEs).
        """
        if le_budget > 0:
            total = sum(f.le_count for f in functions)
            if total > le_budget:
                raise BindError(
                    f"function set needs {total} LEs; "
                    f"page budget is {le_budget} "
                    f"(rebind with fewer functions, see Section 2)"
                )
        names = [f.name for f in functions]
        if len(set(names)) != len(names):
            raise BindError(f"duplicate function names in bind: {names}")
        self.functions = {f.name: f for f in functions}
        self.function_ids = {f.name: i for i, f in enumerate(functions)}

    def function_named(self, name: str) -> APFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise BindError(
                f"function {name!r} is not bound to group {self.group_id!r}; "
                f"bound: {sorted(self.functions)}"
            ) from None
