"""Synchronization variables (paper Section 2, "Coordination").

Applications coordinate processor and page through ordinary memory
locations.  The model reserves the last :data:`repro.core.page.SYNC_BYTES`
bytes of every Active Page as a small, conventionally laid out sync
area: a status word, a function selector, argument words, and result
words.  This mirrors the paper's "memory-mapped registers used for
network interfaces" analogy; nothing about it requires special
hardware — reads and writes suffice, and accesses are atomic.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.check import runtime as _check


class SyncState(enum.IntEnum):
    """Status-word protocol between processor and page."""

    IDLE = 0  # page allocated, no work dispatched
    ARMED = 1  # processor wrote arguments, function polling
    RUNNING = 2  # page function executing
    BLOCKED = 3  # waiting on processor-mediated inter-page reference
    DONE = 4  # results valid in the result words


# Word layout of the sync area (32-bit words).
STATUS_WORD = 0
FUNCTION_WORD = 1
N_ARG_WORDS = 6
ARGS_FIRST_WORD = 2
N_RESULT_WORDS = 8
RESULTS_FIRST_WORD = ARGS_FIRST_WORD + N_ARG_WORDS
SYNC_WORDS = RESULTS_FIRST_WORD + N_RESULT_WORDS


class SyncArea:
    """Typed accessor over a page's synchronization words."""

    def __init__(self, words: np.ndarray, owner: Optional[int] = None) -> None:
        if len(words) < SYNC_WORDS:
            raise ValueError(
                f"sync area needs {SYNC_WORDS} words, got {len(words)}"
            )
        self._words = words
        #: Owning page number, for sanitizer violation context.
        self.owner = owner

    @property
    def status(self) -> SyncState:
        return SyncState(int(self._words[STATUS_WORD]))

    @status.setter
    def status(self, value: SyncState) -> None:
        ck = _check.CHECKER
        if ck is not None:
            ck.on_sync_transition(
                int(self._words[STATUS_WORD]), int(value), self.owner
            )
        self._words[STATUS_WORD] = int(value)

    @property
    def function_id(self) -> int:
        return int(self._words[FUNCTION_WORD])

    @function_id.setter
    def function_id(self, value: int) -> None:
        self._words[FUNCTION_WORD] = value

    def write_args(self, args: "list[int]") -> None:
        if len(args) > N_ARG_WORDS:
            raise ValueError(f"at most {N_ARG_WORDS} argument words")
        for i, a in enumerate(args):
            self._words[ARGS_FIRST_WORD + i] = np.uint32(a & 0xFFFFFFFF)

    def read_args(self, count: int) -> "list[int]":
        return [int(self._words[ARGS_FIRST_WORD + i]) for i in range(count)]

    def write_results(self, values: "list[int]") -> None:
        if len(values) > N_RESULT_WORDS:
            raise ValueError(f"at most {N_RESULT_WORDS} result words")
        for i, v in enumerate(values):
            self._words[RESULTS_FIRST_WORD + i] = np.uint32(v & 0xFFFFFFFF)

    def read_results(self, count: int) -> "list[int]":
        ck = _check.CHECKER
        if ck is not None:
            ck.on_result_read(int(self._words[STATUS_WORD]), self.owner)
        return [int(self._words[RESULTS_FIRST_WORD + i]) for i in range(count)]
