"""Analytic performance model for partitioned applications.

Implements the equations of the paper's Figure 7:

.. math::

    NO(i) = \\max\\Big(0,\\; T_C(i) - \\big(\\sum_{n=i+1}^{K} T_A(n)
            + \\sum_{n=1}^{i-1} T_P(n) + \\sum_{n=1}^{i-1} NO(n)\\big)\\Big)

    Speedup_{part} = \\frac{T_{conv} \\cdot \\alpha \\cdot K}
                          {\\sum_{i=1}^{K} (T_A(i) + T_P(i) + NO(i))}

    Speedup_{overall} = \\frac{1}{(1 - F) + F / Speedup_{part}}

The abstract application (Figure 6): the processor activates all K
pages in sequence (T_A each), then revisits them in order; before
post-processing page i (T_P) it may stall for NO(i) — the non-overlap
time — if the page has not finished its computation (T_C).

Table 4's "pages for complete overlap" is the smallest problem size at
which no page ever stalls the processor; we compute it directly from
the NO recursion rather than from a closed form, because which term
dominates depends on the relative sizes of T_A and T_P.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]


def _per_page(value: ArrayLike, n_pages: int, name: str) -> np.ndarray:
    """Broadcast a scalar or validate a per-page array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = np.full(n_pages, float(arr))
    if arr.shape != (n_pages,):
        raise ValueError(f"{name} must be scalar or length {n_pages}")
    if np.any(arr < 0):
        raise ValueError(f"{name} times cannot be negative")
    return arr


def non_overlap_times(
    t_a: ArrayLike, t_p: ArrayLike, t_c: ArrayLike, n_pages: int
) -> np.ndarray:
    """Per-page non-overlap times NO(i), i = 1..K (Figure 7).

    Scalars are broadcast to all pages (the "constant times" special
    case used for Table 4); arrays give the general data-dependent
    case (matrix-boeing).
    """
    if n_pages <= 0:
        raise ValueError("need at least one page")
    ta = _per_page(t_a, n_pages, "t_a")
    tp = _per_page(t_p, n_pages, "t_p")
    tc = _per_page(t_c, n_pages, "t_c")

    # Time between finishing page i's activation and returning to it:
    # remaining activations + earlier post-computes + earlier stalls.
    remaining_ta = np.concatenate([np.cumsum(ta[::-1])[::-1][1:], [0.0]])
    no = np.zeros(n_pages)
    tp_sum = 0.0
    no_sum = 0.0
    for i in range(n_pages):
        gap = remaining_ta[i] + tp_sum + no_sum
        no[i] = max(0.0, tc[i] - gap)
        tp_sum += tp[i]
        no_sum += no[i]
    return no


def partitioned_time(
    t_a: ArrayLike, t_p: ArrayLike, t_c: ArrayLike, n_pages: int
) -> float:
    """Total processor time of the partitioned kernel: Σ(T_A+T_P+NO)."""
    ta = _per_page(t_a, n_pages, "t_a")
    tp = _per_page(t_p, n_pages, "t_p")
    no = non_overlap_times(t_a, t_p, t_c, n_pages)
    return float(np.sum(ta) + np.sum(tp) + np.sum(no))


def speedup_partitioned(
    t_conv_per_item: float,
    alpha: float,
    t_a: ArrayLike,
    t_p: ArrayLike,
    t_c: ArrayLike,
    n_pages: int,
) -> float:
    """Speedup of the partitioned kernel over the conventional kernel.

    The conventional time is ``t_conv_per_item * alpha * n_pages`` —
    ``alpha`` items per page, ``t_conv_per_item`` each (Figure 7).
    """
    denom = partitioned_time(t_a, t_p, t_c, n_pages)
    if denom <= 0:
        raise ValueError("partitioned time must be positive")
    return (t_conv_per_item * alpha * n_pages) / denom


def speedup_overall(fraction_partitioned: float, speedup_part: float) -> float:
    """Amdahl's Law bound on whole-application speedup (Figure 7)."""
    if not 0.0 <= fraction_partitioned <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if speedup_part <= 0:
        raise ValueError("partitioned speedup must be positive")
    return 1.0 / ((1.0 - fraction_partitioned) + fraction_partitioned / speedup_part)


def pages_for_complete_overlap(
    t_a: float, t_p: float, t_c: float, max_pages: int = 1 << 24
) -> int:
    """Smallest K at which the processor never stalls (Table 4).

    Uses the NO recursion with constant per-page times.  Returns
    ``max_pages`` if even that many pages cannot hide T_C (e.g. when
    T_A and T_P are both zero).
    """
    if t_c <= 0:
        return 1
    if t_a <= 0 and t_p <= 0:
        return max_pages

    def fully_overlapped(k: int) -> bool:
        return float(np.sum(non_overlap_times(t_a, t_p, t_c, k))) == 0.0

    # Exponential search then binary search.
    lo, hi = 1, 1
    while not fully_overlapped(hi):
        lo = hi
        hi *= 2
        if hi >= max_pages:
            if not fully_overlapped(max_pages):
                return max_pages
            hi = max_pages
            break
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if fully_overlapped(mid):
            hi = mid
        else:
            lo = mid
    return hi if not fully_overlapped(lo) else lo


def predict_speedup(
    t_conv_per_page: float,
    t_a: float,
    t_p: float,
    t_c: float,
    n_pages: int,
) -> float:
    """Predicted speedup at ``n_pages`` from constant per-page times.

    This is the "simplified version of the formulas in Figure 7" used
    for the Table 4 correlation study: ``t_conv_per_page`` plays the
    role of T_conv·α.
    """
    return speedup_partitioned(t_conv_per_page, 1.0, t_a, t_p, t_c, n_pages)


def speedup_correlation(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Pearson correlation between predicted and measured speedups.

    The rightmost column of Table 4.  Returns 1.0 for degenerate
    (constant) inputs, matching "perfectly predicted".
    """
    p = np.asarray(predicted, dtype=float)
    m = np.asarray(measured, dtype=float)
    if p.shape != m.shape or p.size < 2:
        raise ValueError("need two same-length series of at least 2 points")
    if np.allclose(p, p[0]) or np.allclose(m, m[0]):
        return 1.0 if np.allclose(p / p[0], m / m[0]) else 0.0
    return float(np.corrcoef(p, m)[0, 1])
