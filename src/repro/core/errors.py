"""Exception types for the Active Pages model layer."""


class ActivePageError(Exception):
    """Base class for Active Pages model errors."""


class GroupError(ActivePageError):
    """Unknown page group, or a page used outside its group."""


class BindError(ActivePageError):
    """A function set cannot be bound (unknown name, over budget, ...)."""


class ActivationError(ActivePageError):
    """A page was activated with an unbound function or bad arguments."""
