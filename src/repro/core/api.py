"""The Active Pages interface (paper Section 2, "Interface").

The interface is deliberately shaped like a conventional virtual memory
interface plus two calls:

* ``ap_alloc(group_id, n_pages)`` — allocate Active Pages in a group.
* ``ap_bind(group_id, functions)`` — (re)bind a function set to a group.
* ``read``/``write`` — standard memory access.
* ``activate(group_id, page_index, fn, args)`` — the memory-mapped
  write that starts a page function (sugar over ``write`` to the sync
  area, kept explicit so implementations can charge activation time).

:class:`HostEmulationSystem` executes functions immediately on the
host — the functional reference used by tests and by applications that
only need semantics.  The timed RADram implementation is
:class:`repro.radram.system.RADramSystem`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.check import runtime as _check
from repro.core.errors import ActivationError, GroupError
from repro.core.functions import APFunction
from repro.core.page import ActivePage, PageGroup
from repro.core.sync import SyncState
from repro.sim.memory import PagedMemory


class ActivePageSystem:
    """Base Active-Page memory system: allocation, binding, access."""

    #: per-page logic-element budget; 0 disables the bind-time check.
    le_budget: int = 0

    def __init__(self, memory: Optional[PagedMemory] = None) -> None:
        self.memory = memory if memory is not None else PagedMemory()
        self._groups: Dict[str, PageGroup] = {}

    # ------------------------------------------------------------------
    # Allocation and binding

    def ap_alloc(self, group_id: str, n_pages: int) -> PageGroup:
        """Allocate ``n_pages`` Active Pages in group ``group_id``.

        Repeated calls with the same group extend the group, matching
        the paper's per-page ``AP_alloc(group_id, vaddr)`` used in a
        loop; allocating page-at-a-time or in bulk is equivalent.
        """
        if n_pages <= 0:
            raise GroupError("must allocate at least one page")
        region = self.memory.alloc_pages(n_pages, name=group_id)
        group = self._groups.get(group_id)
        if group is None:
            group = PageGroup(group_id=group_id, region=region)
            self._groups[group_id] = group
        for page_no in self.memory.pages_of(region):
            group.pages.append(ActivePage(self.memory, page_no, group))
        return group

    def group(self, group_id: str) -> PageGroup:
        try:
            return self._groups[group_id]
        except KeyError:
            raise GroupError(f"unknown page group {group_id!r}") from None

    def ap_bind(self, group_id: str, functions: Sequence[APFunction]) -> None:
        """Bind (or re-bind) a function set to every page of a group."""
        self.group(group_id).bind(list(functions), le_budget=self.le_budget)

    # ------------------------------------------------------------------
    # Standard memory interface

    def read(self, vaddr: int, nbytes: int) -> np.ndarray:
        return self.memory.read(vaddr, nbytes)

    def write(self, vaddr: int, data: np.ndarray) -> None:
        self.memory.write(vaddr, data)

    # ------------------------------------------------------------------
    # Activation

    def activate(
        self, group_id: str, page_index: int, fn_name: str, args: tuple = ()
    ) -> ActivePage:
        """Start ``fn_name`` on one page of the group.

        Subclasses implement ``_dispatch`` to define *when* the function
        runs; this base method performs the interface bookkeeping that
        is common to all implementations.
        """
        group = self.group(group_id)
        page = group.page(page_index)
        fn = group.function_named(fn_name)
        sync = page.sync
        sync.function_id = group.function_ids[fn_name]
        int_args = [a for a in args if isinstance(a, (int, np.integer))]
        sync.write_args([int(a) for a in int_args[:6]])
        sync.status = SyncState.ARMED
        self._dispatch(page, fn, args)
        return page

    def _dispatch(self, page: ActivePage, fn: APFunction, args: tuple) -> None:
        raise NotImplementedError

    def is_done(self, group_id: str, page_index: int) -> bool:
        """Poll a page's status variable."""
        return self.group(group_id).page(page_index).sync.status == SyncState.DONE

    def results(self, group_id: str, page_index: int, count: int) -> List[int]:
        """Read result words from a page's sync area."""
        page = self.group(group_id).page(page_index)
        status = page.sync.status
        if status != SyncState.DONE:
            ck = _check.CHECKER
            if ck is not None:
                # Record the protocol violation (strict mode raises
                # CheckError here) before the interface error.
                ck.on_result_read(int(status), page.page_no)
            raise ActivationError(
                f"page {page_index} of group {group_id!r} has no valid results"
            )
        return page.sync.read_results(count)


class HostEmulationSystem(ActivePageSystem):
    """Runs Active-Page functions immediately on the host.

    The functional reference implementation: activation applies the
    function synchronously, so ``is_done`` is True right after
    ``activate``.  Used to validate application semantics independently
    of timing, and as the "what the hardware computes" oracle against
    which the RADram-timed runs are checked.
    """

    def _dispatch(self, page: ActivePage, fn: APFunction, args: tuple) -> None:
        if fn.apply is None:
            raise ActivationError(
                f"function {fn.name!r} has no functional implementation"
            )
        page.sync.status = SyncState.RUNNING
        result = fn.apply(page, args)
        if result is not None:
            if isinstance(result, (int, np.integer)):
                page.sync.write_results([int(result)])
            else:
                page.sync.write_results([int(v) for v in result][:8])
        page.sync.status = SyncState.DONE
