"""RADram — Reconfigurable Architecture DRAM (paper Section 3).

RADram pairs each 512 KB DRAM subarray with 256 logic elements of
reconfigurable logic clocked at 100 MHz.  This package implements the
RADram realization of Active Pages:

* :class:`repro.radram.config.RADramConfig` — technology parameters
  (page size, LE budget, logic clock, activation and interrupt costs).
* :class:`repro.radram.system.RADramMemorySystem` — the timed memory
  system plugged into :class:`repro.sim.machine.Machine`; executes
  page tasks in parallel with the processor and implements
  processor-mediated inter-page communication.
* :class:`repro.radram.api.RADram` — the user-facing Active-Page
  system combining functional execution with timing.
* :mod:`repro.radram.mmx` — MMX primitives, both the conventional
  32-bit form and the RADram wide form (up to 256 KB per instruction).
"""

from repro.radram.api import RADram
from repro.radram.config import RADramConfig
from repro.radram.dispatch import activation_ns, descriptor_bytes
from repro.radram.interpage import service_ns
from repro.radram.logic import LogicBlock
from repro.radram.subarray import PageExecution, Subarray
from repro.radram.system import RADramMemorySystem

__all__ = [
    "LogicBlock",
    "PageExecution",
    "RADram",
    "RADramConfig",
    "RADramMemorySystem",
    "Subarray",
    "activation_ns",
    "descriptor_bytes",
    "service_ns",
]
