"""The reconfigurable logic block paired with each DRAM subarray.

A block holds at most ``les_per_page`` logic elements (256 in the
reference RADram) and runs at the configured logic clock.  A block is
*configured* with a circuit (an :class:`repro.core.functions.APFunction`
set); configuring takes reconfiguration time and enforces the LE
budget, mirroring the paper's bind-time constraint that "implementations
may limit the number or complexity of functions associated with each
page".
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.errors import BindError
from repro.core.functions import APFunction
from repro.radram.config import RADramConfig
from repro.sim.errors import FaultError


class LogicBlock:
    """One page's worth of reconfigurable logic."""

    def __init__(self, config: RADramConfig) -> None:
        self.config = config
        self.functions: Dict[str, APFunction] = {}
        self.configured_les: int = 0
        self.reconfigurations: int = 0
        #: fabrication/runtime defects in the fabric, by LE column.
        self.defective_columns: int = 0
        self.spare_columns_used: int = 0

    def configure(self, functions: Sequence[APFunction]) -> float:
        """Load a function set; returns reconfiguration time in ns.

        Raises :class:`BindError` if the set exceeds the LE budget.
        """
        total_les = sum(f.le_count for f in functions)
        if total_les > self.config.les_per_page:
            raise BindError(
                f"circuit set needs {total_les} LEs; block has "
                f"{self.config.les_per_page}"
            )
        self.functions = {f.name: f for f in functions}
        self.configured_les = total_les
        self.reconfigurations += 1
        return self.config.reconfig_ns_per_page

    def remap_defects(self, defects: int, spare_columns: int) -> int:
        """Absorb ``defects`` defective LE columns onto spare columns.

        The uniform fabric makes any spare column a drop-in replacement
        (the paper's Section 3 defect-tolerance argument), so repaired
        defects leave the LE budget untouched.  Returns how many new
        spares this call consumed; raises :class:`FaultError` once the
        cumulative defects exceed ``spare_columns`` — the page's fabric
        is then unusable and the caller must degrade or migrate.
        """
        if defects < 0:
            raise ValueError("defect count cannot be negative")
        self.defective_columns += defects
        if self.defective_columns > spare_columns:
            raise FaultError(
                f"{self.defective_columns} defective LE columns exceed "
                f"the {spare_columns} spare(s); fabric unusable"
            )
        consumed = self.defective_columns - self.spare_columns_used
        self.spare_columns_used = self.defective_columns
        return consumed

    @property
    def utilization(self) -> float:
        """Fraction of the block's LEs in use."""
        return self.configured_les / self.config.les_per_page

    def cycles_to_ns(self, logic_cycles: float) -> float:
        """Convert circuit cycles to wall time at the logic clock."""
        return logic_cycles * self.config.logic_cycle_ns
