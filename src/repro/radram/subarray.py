"""DRAM subarrays and in-page task execution.

A :class:`Subarray` is one 512 KB slice of DRAM plus its
:class:`repro.radram.logic.LogicBlock`.  A :class:`PageExecution`
tracks one activation running on a subarray's logic: an ordered list of
timed segments separated by inter-page references on which the page
*blocks* until the processor services them (Section 3's
processor-mediated approach).

``PageExecution`` is a passive timeline, advanced lazily: it knows when
it blocks and, once every block has been serviced, when it completes.
The surrounding :class:`repro.radram.system.RADramMemorySystem`
co-simulates these timelines against the processor clock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.functions import CommRequest, PageTask
from repro.radram.config import RADramConfig
from repro.radram.logic import LogicBlock


#: Shared terminal state for executions with no segments left.  Only
#: ever read (``_advance``/``is_done`` test truthiness and never pop
#: from an empty deque), so one instance serves every execution.
_NO_SEGMENTS: Deque[Tuple[float, Optional[CommRequest]]] = deque()


class PageExecution:
    """The timeline of one activation on one page's logic."""

    __slots__ = ("_segments", "start_ns", "t_ns", "blocked_on", "busy_ns")

    def __init__(self, task: PageTask, start_ns: float, logic_cycle_ns: float) -> None:
        self.start_ns = start_ns
        self.blocked_on: Optional[CommRequest] = None
        segments = task.segments
        if len(segments) == 1 and segments[0].comm is None:
            # Straight-line task (the overwhelmingly common shape):
            # the whole timeline is known at dispatch, no deque needed.
            duration = segments[0].logic_cycles * logic_cycle_ns
            self._segments = _NO_SEGMENTS
            self.t_ns = start_ns + duration
            self.busy_ns = duration
            return
        self._segments: Deque[Tuple[float, Optional[CommRequest]]] = deque(
            (seg.logic_cycles * logic_cycle_ns, seg.comm) for seg in segments
        )
        self.t_ns = start_ns
        self.busy_ns = 0.0
        self._advance()

    def _advance(self) -> None:
        """Run segments until the next block point or completion."""
        while self._segments:
            duration, comm = self._segments.popleft()
            self.t_ns += duration
            self.busy_ns += duration
            if comm is not None:
                self.blocked_on = comm
                return
        self.blocked_on = None

    @property
    def is_blocked(self) -> bool:
        return self.blocked_on is not None

    @property
    def is_done(self) -> bool:
        return self.blocked_on is None and not self._segments

    @property
    def block_time_ns(self) -> float:
        """When the page raised its interrupt (valid while blocked)."""
        return self.t_ns

    @property
    def completion_ns(self) -> float:
        """When the page finishes (valid once ``is_done``)."""
        return self.t_ns

    def resume(self, serviced_at_ns: float) -> None:
        """The processor completed the copy at ``serviced_at_ns``."""
        if not self.is_blocked:
            raise RuntimeError("resume called on a page that is not blocked")
        self.t_ns = max(self.t_ns, serviced_at_ns)
        self.blocked_on = None
        self._advance()


class Subarray:
    """One 512 KB DRAM slice with its logic block."""

    def __init__(self, page_no: int, config: RADramConfig) -> None:
        self.page_no = page_no
        self.config = config
        self.logic = LogicBlock(config)
        self.current: Optional[PageExecution] = None
        self.activations: int = 0
        self.total_busy_ns: float = 0.0
        #: (start, end) of completed activations, for trace rendering.
        self.history: list = []
        #: the most recently dispatched task, kept for fault replay.
        self.last_task: Optional[PageTask] = None
        # logic_cycle_ns is a derived property; resolve it once per
        # subarray rather than once per activation.
        self._cycle_ns = config.logic_cycle_ns

    def start(self, task: PageTask, start_ns: float) -> PageExecution:
        """Begin executing ``task`` at ``start_ns``.

        A new activation replaces a completed one; activating a page
        that is still executing at ``start_ns`` is an application error
        (the sync protocol requires waiting for DONE first).
        """
        current = self.current
        if current is not None:
            # Inline ``not is_done or completion_ns > start_ns`` — this
            # runs once per activation on the dispatch hot path.
            if (
                current.blocked_on is not None
                or current._segments
                or current.t_ns > start_ns
            ):
                raise RuntimeError(
                    f"page {self.page_no} activated while still running"
                )
            self.total_busy_ns += current.busy_ns
            self.history.append((current.start_ns, current.t_ns))
        self.current = current = PageExecution(task, start_ns, self._cycle_ns)
        self.activations += 1
        self.last_task = task
        return current

    def restart(self, start_ns: float) -> PageExecution:
        """Replay the in-flight activation from scratch at ``start_ns``.

        Fault recovery path: the page migrated to a healthy frame and
        the interrupted execution's partial work is lost — the
        dispatcher re-runs the same task on the new frame.
        """
        if self.last_task is None:
            raise RuntimeError(f"page {self.page_no} has no task to replay")
        self.current = PageExecution(self.last_task, start_ns, self._cycle_ns)
        return self.current

    def abort(self) -> None:
        """Abandon the in-flight execution (the page degraded)."""
        self.current = None

    def intervals(self) -> list:
        """All (start, end) activation intervals, including the last."""
        out = list(self.history)
        if self.current is not None and self.current.is_done:
            out.append((self.current.start_ns, self.current.completion_ns))
        return out
