"""RADram technology parameters.

The reference values follow the paper's Section 3 and Table 1: 512 KB
subarrays, 256 LEs each, logic at 100 MHz next to a 1 GHz processor
(a logic "divisor" of 10).  Figure 9 varies the divisor — a *higher*
divisor is *slower* logic.

Activation cost model: dispatching work to a page is a short burst of
memory-mapped, uncached writes (function selector + argument words)
plus a fixed software overhead.  With the reference bus and DRAM this
lands per-application activation times in the 0.4-8.5 microsecond range
of the paper's Table 4 — each application declares how many descriptor
words its activation writes (see ``repro.apps``).

Reconfiguration: binding a new function set reconfigures the page's
logic.  The paper estimates Active-Page replacement at 2-4x the cost of
a conventional page move; kernels bind once and run many activations,
so the reference charges reconfiguration once per ``ap_bind`` per page.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.faults.models import FaultConfig
from repro.sim.config import KB
from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class RADramConfig:
    """Parameters of one RADram chip's page-logic pairing."""

    page_bytes: int = 512 * KB
    les_per_page: int = 256
    logic_hz: float = 100e6
    #: fixed software overhead per activation (driver call, fences).
    activation_base_ns: float = 300.0
    #: overhead of taking one inter-page interrupt on the processor.
    interrupt_base_ns: float = 500.0
    #: reconfiguration time per page per ap_bind (0 = amortized away).
    reconfig_ns_per_page: float = 0.0
    #: data port width between a subarray and its logic, in bytes.
    port_bytes: int = 4
    #: service many pending inter-page requests per interrupt entry
    #: ("the processor generally satisfies many requests", Section 3).
    #: False pays the interrupt entry per request — an ablation knob.
    batch_interrupts: bool = True
    #: inter-page reference mechanism.  ``"processor"`` is the paper's
    #: processor-mediated approach (Section 3); ``"hardware"`` is the
    #: Section 10 future-work alternative — a dedicated in-chip
    #: network that satisfies references without interrupting the
    #: processor, at ``hw_hop_ns`` plus port-rate transfer time.
    comm_mechanism: str = "processor"
    #: in-chip network hop latency for the hardware mechanism.
    hw_hop_ns: float = 40.0
    #: pages per RADram chip (a 0.5-gigabit chip holds 128 x 512 KB).
    pages_per_chip: int = 128
    #: extra latency when a hardware reference crosses chips.
    interchip_hop_ns: float = 120.0
    #: fault injection and tolerance (None = a perfect, fault-free
    #: machine — the default; timing is bit-identical to pre-fault
    #: builds when this is None or disabled).
    faults: Optional[FaultConfig] = None

    def with_hardware_comm(self, hop_ns: float = 40.0) -> "RADramConfig":
        """A config using the dedicated in-chip comm network."""
        return replace(self, comm_mechanism="hardware", hw_hop_ns=hop_ns)

    def with_faults(self, faults: Optional[FaultConfig]) -> "RADramConfig":
        """A config with fault injection enabled (or disabled: None)."""
        return replace(self, faults=faults)

    def chip_of(self, page_no: int) -> int:
        """Which chip a global page number lives on."""
        return page_no // max(1, self.pages_per_chip)

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ConfigError("page size must be positive")
        if self.les_per_page <= 0:
            raise ConfigError("LE budget must be positive")
        if self.logic_hz <= 0:
            raise ConfigError("logic clock must be positive")
        if self.port_bytes <= 0:
            raise ConfigError("port width must be positive")
        if self.comm_mechanism not in ("processor", "hardware"):
            raise ConfigError(
                f"unknown comm mechanism {self.comm_mechanism!r}"
            )
        if self.hw_hop_ns < 0:
            raise ConfigError("hop latency cannot be negative")

    @property
    def logic_cycle_ns(self) -> float:
        """Duration of one reconfigurable-logic cycle."""
        return 1e9 / self.logic_hz

    def logic_divisor(self, cpu_clock_hz: float = 1e9) -> float:
        """The Figure 9 x-axis: CPU clocks per logic clock."""
        return cpu_clock_hz / self.logic_hz

    def with_logic_divisor(
        self, divisor: float, cpu_clock_hz: float = 1e9
    ) -> "RADramConfig":
        """A config whose logic runs at ``cpu_clock / divisor``."""
        if divisor <= 0:
            raise ConfigError("logic divisor must be positive")
        return replace(self, logic_hz=cpu_clock_hz / divisor)

    def with_page_bytes(self, page_bytes: int) -> "RADramConfig":
        """A config with a different superpage size (scaled testing)."""
        return replace(self, page_bytes=page_bytes)

    @classmethod
    def reference(cls) -> "RADramConfig":
        """The Table 1 reference implementation."""
        return cls()
