"""MMX primitives — conventional and RADram-wide forms (Section 5.2).

The paper extends SimpleScalar with Intel MMX opcodes and adds RADram
equivalents: "while an MMX instruction in SimpleScalar is restricted to
producing only 32 bits of data per instruction, a RADram MMX
instruction can produce up to 256 kbytes of data per instruction."

This module provides:

* functional, saturating packed-integer semantics (numpy) shared by
  both forms — the MPEG correction kernels are built from these;
* the conventional cost model (one instruction per 32 bits produced);
* the RADram cost model (a pipelined datapath in the page logic that
  processes :data:`RADRAM_MMX_BYTES_PER_CYCLE` bytes per logic cycle —
  calibrated so one wide instruction over 256 KB takes ~142 us at
  100 MHz, the paper's Table 4 T_C for MPEG-MMX).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.core.functions import PageTask

#: Bytes the RADram MMX datapath consumes per logic cycle.  256 KB in
#: ~142 us at a 10 ns logic cycle -> 256*1024 / 14230 = 18.4 bytes.
RADRAM_MMX_BYTES_PER_CYCLE = 18.4

#: Bytes one conventional MMX instruction produces (32 bits).
CONVENTIONAL_MMX_BYTES_PER_INSN = 4


def _sat(values: np.ndarray, dtype: np.dtype) -> np.ndarray:
    info = np.iinfo(dtype)
    return np.clip(values, info.min, info.max).astype(dtype)


@dataclass(frozen=True)
class MMXOp:
    """One packed-integer MMX operation."""

    name: str
    dtype: np.dtype
    apply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    description: str


def _binary(wide_dtype):
    """Decorator: lift a wide-integer op into a saturating packed op."""

    def wrap(fn, name, dtype, description):
        def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            wa = a.astype(wide_dtype)
            wb = b.astype(wide_dtype)
            return _sat(fn(wa, wb), dtype)

        return MMXOp(name=name, dtype=np.dtype(dtype), apply=apply, description=description)

    return wrap


def _wrapping(fn, name, dtype, description):
    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return fn(a.astype(dtype), b.astype(dtype))

    return MMXOp(name=name, dtype=np.dtype(dtype), apply=apply, description=description)


def _pmulhw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    prod = a.astype(np.int32) * b.astype(np.int32)
    return (prod >> 16).astype(np.int16)


MMX_OPS: Dict[str, MMXOp] = {
    op.name: op
    for op in [
        _wrapping(lambda a, b: a + b, "paddb", np.int8, "packed add, wrap, bytes"),
        _wrapping(lambda a, b: a + b, "paddw", np.int16, "packed add, wrap, words"),
        _binary(np.int16)(lambda a, b: a + b, "paddsb", np.int8, "packed add, signed saturate, bytes"),
        _binary(np.int32)(lambda a, b: a + b, "paddsw", np.int16, "packed add, signed saturate, words"),
        _binary(np.uint16)(lambda a, b: a + b, "paddusb", np.uint8, "packed add, unsigned saturate, bytes"),
        _binary(np.uint32)(lambda a, b: a + b, "paddusw", np.uint16, "packed add, unsigned saturate, words"),
        _wrapping(lambda a, b: a - b, "psubb", np.int8, "packed subtract, wrap, bytes"),
        _wrapping(lambda a, b: a - b, "psubw", np.int16, "packed subtract, wrap, words"),
        _binary(np.int32)(lambda a, b: a - b, "psubsw", np.int16, "packed subtract, signed saturate, words"),
        _binary(np.int16)(lambda a, b: a - b, "psubusb", np.uint8, "packed subtract, unsigned saturate, bytes"),
        _wrapping(lambda a, b: a * b, "pmullw", np.int16, "packed multiply, low words"),
        MMXOp("pmulhw", np.dtype(np.int16), _pmulhw, "packed multiply, high words"),
        _wrapping(lambda a, b: a & b, "pand", np.uint32, "bitwise and"),
        _wrapping(lambda a, b: a | b, "por", np.uint32, "bitwise or"),
        _wrapping(lambda a, b: a ^ b, "pxor", np.uint32, "bitwise xor"),
        _wrapping(
            lambda a, b: np.where(a == b, np.int16(-1), np.int16(0)),
            "pcmpeqw",
            np.int16,
            "packed compare equal, words",
        ),
        _wrapping(
            lambda a, b: np.where(a > b, np.int16(-1), np.int16(0)),
            "pcmpgtw",
            np.int16,
            "packed compare greater, words",
        ),
    ]
}


def _pmaddwd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply int16 pairs and add adjacent products to int32."""
    prod = a.astype(np.int32) * b.astype(np.int32)
    if len(prod) % 2:
        raise ValueError("pmaddwd needs an even number of words")
    return prod[0::2] + prod[1::2]


def _packsswb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pack two int16 vectors into one int8 vector, signed saturate."""
    joined = np.concatenate([a.astype(np.int32), b.astype(np.int32)])
    return _sat(joined, np.int8)


def _packuswb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pack two int16 vectors into one uint8 vector, unsigned saturate."""
    joined = np.concatenate([a.astype(np.int32), b.astype(np.int32)])
    return _sat(joined, np.uint8)


def _punpcklbw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleave the low halves of two byte vectors."""
    half = len(a) // 2
    out = np.empty(2 * half, dtype=a.dtype)
    out[0::2] = a[:half]
    out[1::2] = b[:half]
    return out


def _punpckhbw(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleave the high halves of two byte vectors."""
    half = len(a) // 2
    out = np.empty(len(a) + len(b) - 2 * half, dtype=a.dtype)
    out[0::2] = a[half:]
    out[1::2] = b[half:]
    return out


MMX_OPS.update(
    {
        op.name: op
        for op in [
            _wrapping(lambda a, b: a + b, "paddd", np.int32, "packed add, wrap, dwords"),
            _wrapping(lambda a, b: a - b, "psubd", np.int32, "packed subtract, wrap, dwords"),
            _binary(np.int16)(lambda a, b: a - b, "psubsb", np.int8, "packed subtract, signed saturate, bytes"),
            _wrapping(
                lambda a, b: np.where(a == b, np.int8(-1), np.int8(0)),
                "pcmpeqb", np.int8, "packed compare equal, bytes",
            ),
            _wrapping(
                lambda a, b: np.where(a > b, np.int8(-1), np.int8(0)),
                "pcmpgtb", np.int8, "packed compare greater, bytes",
            ),
            _wrapping(
                lambda a, b: np.where(a == b, np.int32(-1), np.int32(0)),
                "pcmpeqd", np.int32, "packed compare equal, dwords",
            ),
            MMXOp("pmaddwd", np.dtype(np.int32), _pmaddwd,
                  "multiply words, add adjacent products"),
            MMXOp("packsswb", np.dtype(np.int8), _packsswb,
                  "pack words to bytes, signed saturate"),
            MMXOp("packuswb", np.dtype(np.uint8), _packuswb,
                  "pack words to bytes, unsigned saturate"),
            MMXOp("punpcklbw", np.dtype(np.uint8), _punpcklbw,
                  "interleave low bytes"),
            MMXOp("punpckhbw", np.dtype(np.uint8), _punpckhbw,
                  "interleave high bytes"),
        ]
    }
)


@dataclass(frozen=True)
class MMXShiftOp:
    """A packed shift by an immediate count."""

    name: str
    dtype: np.dtype
    apply: Callable[[np.ndarray, int], np.ndarray]
    description: str


def _shift(fn, name, dtype, description):
    def apply(a: np.ndarray, count: int) -> np.ndarray:
        width = 8 * np.dtype(dtype).itemsize
        if count >= width:
            # MMX semantics: over-width shifts zero (or sign-fill for
            # arithmetic right shifts, handled by the lambda on width-1).
            if name.startswith("psra"):
                count = width - 1
            else:
                return np.zeros_like(a.astype(dtype))
        return fn(a.astype(dtype), count)

    return MMXShiftOp(name, np.dtype(dtype), apply, description)


MMX_SHIFTS: Dict[str, MMXShiftOp] = {
    op.name: op
    for op in [
        _shift(lambda a, n: (a.view(np.uint16) << np.uint16(n)).view(np.int16),
               "psllw", np.int16, "shift words left logical"),
        _shift(lambda a, n: (a.view(np.uint16) >> np.uint16(n)).view(np.int16),
               "psrlw", np.int16, "shift words right logical"),
        _shift(lambda a, n: a >> n, "psraw", np.int16, "shift words right arithmetic"),
        _shift(lambda a, n: (a.view(np.uint32) << np.uint32(n)).view(np.int32),
               "pslld", np.int32, "shift dwords left logical"),
        _shift(lambda a, n: (a.view(np.uint32) >> np.uint32(n)).view(np.int32),
               "psrld", np.int32, "shift dwords right logical"),
        _shift(lambda a, n: a >> n, "psrad", np.int32, "shift dwords right arithmetic"),
    ]
}


def mmx_op(name: str) -> MMXOp:
    """Look up an MMX operation by mnemonic."""
    try:
        return MMX_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown MMX op {name!r}; available: {sorted(MMX_OPS)}"
        ) from None


def mmx_shift(name: str) -> MMXShiftOp:
    """Look up an MMX shift by mnemonic."""
    try:
        return MMX_SHIFTS[name]
    except KeyError:
        raise KeyError(
            f"unknown MMX shift {name!r}; available: {sorted(MMX_SHIFTS)}"
        ) from None


def conventional_instruction_count(nbytes: int) -> int:
    """Instructions a conventional MMX kernel issues over ``nbytes``."""
    return -(-nbytes // CONVENTIONAL_MMX_BYTES_PER_INSN)


def radram_mmx_task(nbytes: int) -> PageTask:
    """Page task for one RADram-wide MMX instruction over ``nbytes``."""
    cycles = nbytes / RADRAM_MMX_BYTES_PER_CYCLE
    return PageTask.simple(cycles)
