"""RADram power model (paper Section 3, "Power").

The paper treats power qualitatively: chip temperature drives DRAM
charge leakage and refresh; the extra refresh can be bundled into the
per-subarray logic; and the 32-bit data port between subarray and
logic is a deliberately *conservative* choice — "this could easily be
increased to 256 or 512 bits, but would result in higher power
consumption.  Increasing bandwidth would also require more
reconfigurable logic, which is beyond our area constraints for some
applications."

This module makes that argument quantitative with late-1990s
order-of-magnitude constants (documented per constant; all results are
estimates, used for *relative* comparisons):

* dynamic logic power per LE,
* port power proportional to width x toggle rate,
* DRAM subarray activation energy,
* refresh power, which grows with temperature — itself a function of
  dissipated power, giving the paper's leakage feedback loop a simple
  fixed-point model.

``port_width_study`` reproduces the Section 3 tradeoff: wider ports
cut streaming T_C proportionally but raise power and LE area, and at
256-512 bits the largest Table 3 circuits no longer fit the page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.radram.config import RADramConfig
from repro.synth.report import table3

#: Dynamic power of one active LE at 100 MHz (mW) — FLEX-10K-era
#: figures run 0.01-0.03 mW/LE/MHz; 0.02 at 100 MHz.
MW_PER_LE_100MHZ = 2.0
#: Port driver power per bit at 100 MHz (mW) — long intra-chip wires.
MW_PER_PORT_BIT_100MHZ = 0.15
#: Energy to activate one DRAM subarray row (nJ).
NJ_PER_ROW_ACTIVATION = 1.5
#: Baseline refresh power per 512 KB subarray at 45 C (mW).
REFRESH_MW_PER_SUBARRAY_45C = 0.4
#: Refresh power doubles roughly every 10 C (leakage doubling rate).
REFRESH_DOUBLING_C = 10.0
#: Thermal resistance of the package (C per W above ambient).
C_PER_WATT = 8.0
AMBIENT_C = 45.0

#: Extra LEs a circuit needs per additional port byte beyond 4
#: (wider registers, muxing, write-enables): ~1.5 LEs per byte.
LE_OVERHEAD_PER_PORT_BYTE = 1.5


@dataclass(frozen=True)
class PagePower:
    """Power breakdown of one active page (mW)."""

    logic_mw: float
    port_mw: float
    dram_mw: float
    refresh_mw: float

    @property
    def total_mw(self) -> float:
        return self.logic_mw + self.port_mw + self.dram_mw + self.refresh_mw


class PowerModel:
    """Power estimates for a RADram configuration."""

    def __init__(self, config: RADramConfig) -> None:
        self.config = config

    @property
    def _freq_scale(self) -> float:
        return self.config.logic_hz / 100e6

    def logic_mw(self, active_les: int, activity: float = 0.5) -> float:
        """Dynamic power of ``active_les`` at ``activity`` toggle rate."""
        return active_les * MW_PER_LE_100MHZ * activity * self._freq_scale

    def port_mw(self, activity: float = 0.5) -> float:
        """Power of the subarray-logic data port."""
        bits = 8 * self.config.port_bytes
        return bits * MW_PER_PORT_BIT_100MHZ * activity * self._freq_scale

    def dram_mw(self, rows_per_second: float) -> float:
        """Average power of subarray row activations."""
        return NJ_PER_ROW_ACTIVATION * rows_per_second * 1e-6

    def refresh_mw(self, temperature_c: float) -> float:
        """Refresh power at a given subarray temperature."""
        excess = max(0.0, temperature_c - AMBIENT_C)
        return REFRESH_MW_PER_SUBARRAY_45C * 2.0 ** (excess / REFRESH_DOUBLING_C)

    def page_power(
        self,
        active_les: int,
        activity: float = 0.5,
        rows_per_second: float = 1e6,
    ) -> PagePower:
        """Self-consistent page power (temperature fixed point).

        Dissipated power raises temperature, which raises refresh
        power, which raises temperature; iterate to the fixed point
        (converges in a handful of steps — refresh is a small term).
        """
        logic = self.logic_mw(active_les, activity)
        port = self.port_mw(activity)
        dram = self.dram_mw(rows_per_second)
        refresh = self.refresh_mw(AMBIENT_C)
        for _ in range(20):
            total_w = (logic + port + dram + refresh) / 1e3
            temp = AMBIENT_C + C_PER_WATT * total_w
            new_refresh = self.refresh_mw(temp)
            if abs(new_refresh - refresh) < 1e-9:
                break
            refresh = new_refresh
        return PagePower(logic, port, dram, refresh)

    def chip_mw(self, active_pages: int, active_les: int = 150) -> float:
        """Total power of a chip with ``active_pages`` pages computing."""
        return active_pages * self.page_power(active_les).total_mw


def port_width_study(widths_bytes: List[int] = (4, 8, 32, 64)) -> List[Dict]:
    """The Section 3 bandwidth/power/area tradeoff, quantified.

    For each port width: relative streaming speed (T_C scales with
    words-per-cycle), page power, and which Table 3 circuits still fit
    the 256-LE budget after the wider port's LE overhead.
    """
    rows = []
    circuits = table3()
    for width in widths_bytes:
        config = RADramConfig(port_bytes=width)
        model = PowerModel(config)
        power = model.page_power(active_les=150).total_mw
        overhead = int(LE_OVERHEAD_PER_PORT_BYTE * max(0, width - 4))
        fitting = [c.name for c in circuits if c.les + overhead <= 256]
        rows.append(
            {
                "port_bits": 8 * width,
                "relative_bandwidth": width / 4.0,
                "page_power_mw": power,
                "le_overhead": overhead,
                "circuits_fitting": len(fitting),
                "circuits_total": len(circuits),
            }
        )
    return rows
