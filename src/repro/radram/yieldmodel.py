"""Yield and cost model (paper Section 3, "Why Reconfigurable Logic?").

The paper's economic argument: "Processor chips cost ten times as much
as memory chips because their complexity makes their yield ... much
lower.  DRAMs are fabricated with redundant memory cells that can
replace defective cells ...  The uniform nature of reconfigurable
logic allows for similar measures in RADram chips.  In contrast, IRAM
chip designers will have to work hard to avoid yields similar to
processor chips."

We quantify it with the standard Poisson defect model.  A chip of area
``A`` at defect density ``D`` has raw yield ``exp(-A D)``.  Redundancy
changes the picture: defects landing in *repairable* area (DRAM arrays
with spare rows, uniform LE fabrics with spare columns) only kill the
chip once they exhaust the spares; defects in non-repairable area
(irregular processor logic, peripherals) always kill.

Chip classes:

* **DRAM** — ~97 % repairable area (arrays), generous spares.
* **RADram** — DRAM plus an LE fabric that is itself uniform and
  spare-repairable: slightly more kill area than DRAM (configuration
  network), far less than a processor.
* **IRAM** — DRAM plus a full processor core: the core's area is
  non-repairable.
* **Processor** — mostly non-repairable logic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

#: Late-1990s defect density for a mature DRAM process (defects/cm^2).
DEFAULT_DEFECT_DENSITY = 1.0
#: 300 mm wafers were not yet mainstream; 200 mm wafer, ~540 usable
#: 1 cm^2 die sites.
WAFER_DIE_SITES = 540
WAFER_COST_DOLLARS = 1800.0


@dataclass(frozen=True)
class ChipClass:
    """A chip's area split and repair capacity."""

    name: str
    area_cm2: float
    #: fraction of area whose defects are repairable with spares.
    repairable_fraction: float
    #: number of defects the spares can absorb.
    spare_capacity: int


#: The four chip classes of the paper's §3 comparison, at gigabit-era
#: die sizes (~1 cm^2 memory die, larger processor die).
CHIP_CLASSES: Dict[str, ChipClass] = {
    "dram": ChipClass("dram", area_cm2=1.0, repairable_fraction=0.97, spare_capacity=8),
    "radram": ChipClass(
        "radram", area_cm2=1.0, repairable_fraction=0.94, spare_capacity=8
    ),
    "iram": ChipClass("iram", area_cm2=1.3, repairable_fraction=0.50, spare_capacity=8),
    "processor": ChipClass(
        "processor", area_cm2=1.8, repairable_fraction=0.05, spare_capacity=2
    ),
}


def _poisson_cdf(k: int, mean: float) -> float:
    """P[X <= k] for X ~ Poisson(mean)."""
    term = math.exp(-mean)
    total = term
    for i in range(1, k + 1):
        term *= mean / i
        total += term
    return total


def chip_yield(chip: ChipClass, defect_density: float = DEFAULT_DEFECT_DENSITY) -> float:
    """Fraction of working chips after repair.

    Kill area fails on any defect (Poisson zero-defect term);
    repairable area survives up to ``spare_capacity`` defects.
    """
    kill_mean = chip.area_cm2 * (1.0 - chip.repairable_fraction) * defect_density
    repair_mean = chip.area_cm2 * chip.repairable_fraction * defect_density
    return math.exp(-kill_mean) * _poisson_cdf(chip.spare_capacity, repair_mean)


def cost_per_working_chip(
    chip: ChipClass, defect_density: float = DEFAULT_DEFECT_DENSITY
) -> float:
    """Wafer cost amortized over working dies."""
    dies = WAFER_DIE_SITES / chip.area_cm2
    working = dies * chip_yield(chip, defect_density)
    return WAFER_COST_DOLLARS / working


def yield_table(defect_density: float = DEFAULT_DEFECT_DENSITY) -> List[Dict]:
    """The §3 comparison: yield and relative cost per chip class."""
    dram_cost = cost_per_working_chip(CHIP_CLASSES["dram"], defect_density)
    rows = []
    for chip in CHIP_CLASSES.values():
        cost = cost_per_working_chip(chip, defect_density)
        rows.append(
            {
                "chip": chip.name,
                "yield": chip_yield(chip, defect_density),
                "cost_dollars": cost,
                "cost_vs_dram": cost / dram_cost,
            }
        )
    return rows
