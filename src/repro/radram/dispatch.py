"""Activation dispatch cost model.

"The majority of time in dispatching a work request is spent
communicating to the Active Page the function to invoke and additional
required parameters" (Section 2).  Dispatch is a fixed software
overhead plus one memory-mapped, uncached write per 32-bit descriptor
word; each word pays the DRAM write latency plus one bus transfer.

With the reference machine (50 ns miss, 10 ns bus) a descriptor word
costs 60 ns, so the per-application word counts in ``repro.apps`` place
activation times (T_A) in the 0.4-8.5 microsecond range of Table 4.
"""

from __future__ import annotations

from typing import Optional

from repro.radram.config import RADramConfig
from repro.sim.config import BusConfig, DRAMConfig
from repro.trace import events as _trace


def descriptor_bytes(descriptor_words: int) -> int:
    """Bytes written by an activation of ``descriptor_words`` words.

    Raises :class:`ValueError` on negative word counts — a negative
    descriptor is always a caller bug, and silently clamping it would
    let a mis-sized activation dispatch for free.
    """
    if descriptor_words < 0:
        raise ValueError(
            f"descriptor_words must be >= 0, got {descriptor_words}"
        )
    return 4 * descriptor_words


def activation_ns(
    descriptor_words: int,
    radram: RADramConfig,
    dram: DRAMConfig,
    bus: BusConfig,
    trace_ts: Optional[float] = None,
) -> float:
    """Processor time to dispatch one activation.

    When tracing is enabled, the dispatch is recorded as an instant
    event on the ``radram.dispatch`` track at ``trace_ts`` (callers
    with a clock pass the processor time; otherwise the tracer's clock
    hint is used).
    """
    # descriptor_bytes validates (raising on negative counts) — no
    # second clamp here, the two must agree on the byte footprint.
    nbytes = descriptor_bytes(descriptor_words)
    per_word = dram.miss_latency_ns + bus.transfer_ns(4)
    cost = radram.activation_base_ns + (nbytes // 4) * per_word
    tr = _trace.TRACER
    if tr is not None:
        tr.instant(
            "radram.dispatch",
            "dispatch",
            tr.now if trace_ts is None else trace_ts,
            words=descriptor_words,
            cost_ns=cost,
        )
    return cost
