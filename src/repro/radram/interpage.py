"""Processor-mediated inter-page communication (paper Section 3).

"When an Active-Page function reaches a memory reference that can not
be satisfied by its local page, it blocks and raises a processor
interrupt.  The processor satisfies the request by reading and writing
to the appropriate pages."

The service cost charged to the processor for one request:

* a fixed interrupt-entry overhead, amortizable over batched requests
  ("once an interrupt is raised, the processor generally satisfies
  many requests"), plus
* an uncached read of the bytes from the source page (DRAM latency +
  bus), plus
* an uncached write of the bytes to the destination page.

References are expected to be combined into contiguous copies, so the
latency is paid once per request, not per word.
"""

from __future__ import annotations

from repro.core.functions import CommRequest
from repro.radram.config import RADramConfig
from repro.sim.config import BusConfig, DRAMConfig


def service_ns(
    request: CommRequest,
    radram: RADramConfig,
    dram: DRAMConfig,
    bus: BusConfig,
    batched: bool = False,
) -> float:
    """Processor time to satisfy one inter-page request.

    ``batched`` drops the interrupt-entry overhead for the second and
    later requests serviced in one batch.
    """
    entry = 0.0 if batched else radram.interrupt_base_ns
    copy = (
        dram.miss_latency_ns
        + bus.transfer_ns(request.nbytes)  # read from source page
        + dram.miss_latency_ns
        + bus.transfer_ns(request.nbytes)  # write to destination page
    )
    return entry + copy
