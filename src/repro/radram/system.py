"""The timed RADram memory system.

``RADramMemorySystem`` plugs into :class:`repro.sim.machine.Machine`
and co-simulates Active-Page execution against the processor:

* :class:`repro.sim.ops.Activate` charges the dispatch cost
  (:func:`repro.radram.dispatch.activation_ns`) and starts the page's
  :class:`repro.radram.subarray.PageExecution` at the current time.
  Pages then run *in parallel* with the processor.
* :class:`repro.sim.ops.WaitPage` stalls the processor until the page
  completes — stall time is the paper's processor-memory non-overlap.
  If the page is blocked on an inter-page reference, the processor
  services it (and any other pending requests, batched) before
  continuing to wait.
* Between ops the system is polled, so interrupts raised while the
  processor is computing get serviced at instruction granularity.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.faults.controller import FaultController
from repro.radram.config import RADramConfig
from repro.radram.dispatch import activation_ns, descriptor_bytes
from repro.radram.interpage import service_ns
from repro.radram.subarray import PageExecution, Subarray
from repro.check import runtime as _check
from repro.sim import ops as O
from repro.sim.errors import FaultError, OperationError
from repro.sim.processor import MemorySystemBase, Processor
from repro.trace import events as _trace
from repro.trace.events import Event


class RADramMemorySystem(MemorySystemBase):
    """RADram behind the caches: DRAM subarrays with active logic."""

    # Blocked inter-page references are serviced at instruction
    # granularity, so the processor must poll between ops.
    needs_poll = True

    @property
    def supports_batching(self) -> bool:
        """Fused-segment execution is exact only without fault hooks.

        Fault injection interposes per-activation and per-wait
        callbacks (plus degraded replays) that the batch handlers do
        not replicate — with a controller attached the processor keeps
        the scalar oracle loop.
        """
        return self.faults is None

    def has_pending_service(self) -> bool:
        """While no page is queued for service, ``poll`` is a no-op.

        This is the invariant the batched executor relies on to skip
        per-op polls inside a straight-line segment: ``_blocked`` only
        ever grows inside the Activate/WaitPage/ServicePending
        handlers, which are segment boundaries.
        """
        return bool(self._blocked)

    def __init__(self, config: Optional[RADramConfig] = None) -> None:
        self.config = config or RADramConfig.reference()
        self.subarrays: Dict[int, Subarray] = {}
        self.machine = None  # set by Machine via attach()
        # Min-heap of (block_time_ns, page_no) for pages awaiting service.
        self._blocked: List[Tuple[float, int]] = []
        self.comm_bytes: int = 0
        self.comm_requests: int = 0
        self.interchip_requests: int = 0
        # Page intervals already flushed to a tracer (page_no -> count).
        self._trace_flushed: Dict[int, int] = {}
        # Fault injection/tolerance (None on a perfect machine — every
        # handler below guards on it, so the fault-free hot path pays
        # one attribute test per activation and nothing per cycle).
        self.faults: Optional[FaultController] = None
        if self.config.faults is not None:
            self.faults = FaultController(self.config.faults, self.config)

    # ------------------------------------------------------------------
    # Machine wiring

    def attach(self, machine) -> None:
        """Called by :class:`repro.sim.machine.Machine` at build time."""
        self.machine = machine

    def reset(self) -> None:
        """Forget all page executions (machine.reset_timing)."""
        self.subarrays.clear()
        self._blocked.clear()
        self.comm_bytes = 0
        self.comm_requests = 0
        self.interchip_requests = 0
        self._trace_flushed.clear()
        if self.config.faults is not None:
            # Fresh controller: identical fault history every run.
            self.faults = FaultController(self.config.faults, self.config)

    def subarray(self, page_no: int) -> Subarray:
        sub = self.subarrays.get(page_no)
        if sub is None:
            sub = Subarray(page_no, self.config)
            self.subarrays[page_no] = sub
        return sub

    # ------------------------------------------------------------------
    # Operation handlers

    def handle_activate(self, op: O.Activate, proc: Processor) -> None:
        if not isinstance(op.task, object) or op.task is None:
            raise OperationError("Activate op carries no page task")
        cost = activation_ns(
            op.descriptor_words,
            self.config,
            self.machine.config.dram,
            self.machine.config.bus,
            trace_ts=proc.now,
        )
        proc.stats.activations += 1
        proc.charge("activation_ns", cost)
        nbytes = 4 * op.descriptor_words
        self.machine.bus.transfer(nbytes)
        if self.faults is not None:
            retry = self.faults.transfer_retry_ns(nbytes, self.machine.bus, proc.now)
            if retry:
                proc.charge("activation_ns", retry)
            sub = self.subarray(op.page_no)
            try:
                healthy = self.faults.on_activate(op.page_no, sub.logic, proc)
            except FaultError:
                healthy = False
            if not healthy:
                self._run_degraded(op.page_no, op.task, proc)
                return
        execution = self.subarray(op.page_no).start(op.task, proc.now)
        tr = _trace.TRACER
        if tr is not None:
            tr.instant(
                f"page/{op.page_no}",
                "activate",
                proc.now,
                words=op.descriptor_words,
            )
        if execution.is_blocked:
            self._note_blocked(execution, op.page_no)

    def handle_activate_batch(self, ops, proc: Processor) -> int:
        """Dispatch a run of Activates (+ phase markers) without the
        per-op interpreter overhead.

        Only called by the batched executor, which guarantees tracer,
        sanitizer and faults are all off — so the per-activation work
        reduces to the dispatch-cost formula, the stats/clock charges
        and the subarray start.  The cost expression reuses the exact
        integer/float operation order of
        :func:`repro.radram.dispatch.activation_ns`, so charges are
        bit-identical to the scalar path.  Stops (returning the count
        consumed) as soon as an activation blocks on a
        processor-mediated reference, handing control back to the
        scalar loop.
        """
        mconfig = self.machine.config
        per_word = mconfig.dram.miss_latency_ns + mconfig.bus.transfer_ns(4)
        base = self.config.activation_base_ns
        bus = self.machine.bus
        config = self.config
        subarrays = self.subarrays
        stats = proc.stats
        sd = stats.__dict__
        stack = stats._phase_stack
        phase_ns = stats.phase_ns
        blocked = self._blocked
        Activate = O.Activate
        BeginPhase = O.BeginPhase
        # Streams overwhelmingly reuse one descriptor size: memoize the
        # (nbytes, cost, bus duration) triple for the last size seen.
        memo_words = None
        nbytes = 0
        cost = 0.0
        bus_ns = 0.0
        transfer_ns = self.machine.config.bus.transfer_ns
        consumed = 0
        for op in ops:
            cls = op.__class__
            if cls is Activate:
                if op.task is None:
                    raise OperationError("Activate op carries no page task")
                words = op.descriptor_words
                if words != memo_words:
                    nbytes = descriptor_bytes(words)  # validates >= 0
                    cost = base + (nbytes // 4) * per_word
                    if cost < 0:
                        raise OperationError("cannot charge negative time")
                    bus_ns = transfer_ns(nbytes) if nbytes > 0 else 0.0
                    memo_words = words
                stats.activations += 1
                proc.now = now = proc.now + cost
                sd["activation_ns"] += cost
                if stack:
                    p = stack[-1]
                    phase_ns[p] = phase_ns.get(p, 0.0) + cost
                if nbytes > 0:
                    # Inline Bus.transfer (tracer is off by precondition);
                    # the busy accumulation stays sequential, so counters
                    # match the scalar path bit-for-bit.
                    bus.bytes_transferred += nbytes
                    bus.busy_ns += bus_ns
                    bus.transfers += 1
                sub = subarrays.get(op.page_no)
                if sub is None:
                    sub = Subarray(op.page_no, config)
                    subarrays[op.page_no] = sub
                execution = sub.start(op.task, now)
                consumed += 1
                if execution.blocked_on is not None:
                    self._note_blocked(execution, op.page_no)
                    if blocked:
                        return consumed
                continue
            if cls is BeginPhase:
                stats.begin_phase(op.name)
            else:
                stats.end_phase(op.name)
            consumed += 1
        return consumed

    def handle_wait_batch(self, ops, proc: Processor) -> int:
        """Retire a run of WaitPage ops (+ phase markers).

        Fault-free precondition as for :meth:`handle_activate_batch`.
        A page that ran to completion unblocked — the common case —
        needs only the completion-time stall; anything blocked goes
        through :meth:`handle_wait`, and the batch stops once service
        work is left pending.
        """
        subarrays = self.subarrays
        stats = proc.stats
        sd = stats.__dict__
        stack = stats._phase_stack
        phase_ns = stats.phase_ns
        phase_wait_ns = stats.phase_wait_ns
        blocked = self._blocked
        WaitPage = O.WaitPage
        consumed = 0
        for op in ops:
            cls = op.__class__
            if cls is WaitPage:
                sub = subarrays.get(op.page_no)
                consumed += 1
                if sub is None or sub.current is None:
                    continue  # nothing outstanding on this page
                execution = sub.current
                if execution.blocked_on is None and not execution._segments:
                    # Inline stall_until(completion_ns): one wait
                    # charge, with its phase attribution.
                    when = execution.t_ns
                    now = proc.now
                    if when > now:
                        stats.waits += 1
                        delta = when - now
                        # charge() folds as ``start + ns`` — and
                        # ``now + (when - now) != when`` in floats, so
                        # assigning ``when`` directly drifts by an ulp.
                        proc.now = now + delta
                        sd["wait_ns"] += delta
                        if stack:
                            p = stack[-1]
                            phase_ns[p] = phase_ns.get(p, 0.0) + delta
                            phase_wait_ns[p] = (
                                phase_wait_ns.get(p, 0.0) + delta
                            )
                else:
                    self.handle_wait(op, proc)
                    if blocked:
                        return consumed
                continue
            if cls is O.BeginPhase:
                stats.begin_phase(op.name)
            else:
                stats.end_phase(op.name)
            consumed += 1
        return consumed

    def _note_blocked(self, execution, page_no: int) -> None:
        """Route a blocked page to its comm mechanism.

        Processor-mediated: queue for interrupt service.  Hardware:
        the in-chip network satisfies the reference immediately after
        a hop plus port-rate transfer — no processor involvement.
        """
        if self.config.comm_mechanism == "hardware":
            page_bytes = self.config.page_bytes
            while execution.is_blocked:
                request = execution.blocked_on
                self.comm_requests += 1
                self.comm_bytes += request.nbytes
                tr = _trace.TRACER
                if tr is not None:
                    tr.instant(
                        f"page/{page_no}",
                        "hwcomm",
                        execution.block_time_ns,
                        bytes=request.nbytes,
                    )
                if request.nbytes > 0 and request.src_vaddr != request.dst_vaddr:
                    self._functional_copy(request)
                transfer = self.config.hw_hop_ns + (
                    request.nbytes / self.config.port_bytes
                ) * self.config.logic_cycle_ns
                # References crossing chip boundaries pay the
                # inter-chip hop (Section 10's inter-chip question;
                # this is why the OS co-locates groups).
                if request.src_vaddr or request.dst_vaddr:
                    src_chip = self.config.chip_of(request.src_vaddr // page_bytes)
                    dst_chip = self.config.chip_of(request.dst_vaddr // page_bytes)
                    if src_chip != dst_chip:
                        transfer += self.config.interchip_hop_ns
                        self.interchip_requests += 1
                execution.resume(execution.block_time_ns + transfer)
        else:
            heapq.heappush(self._blocked, (execution.block_time_ns, page_no))

    def _run_degraded(self, page_no: int, task, proc: Processor) -> None:
        """Execute the activation's work on the processor instead.

        Graceful degradation: a page whose repair budget is exhausted
        still holds data, so its computation falls back to the
        processor at conventional speed — no page parallelism, no
        overlap, which is exactly the slowdown the faults experiment
        measures.  Functional copies still happen so results stay
        correct.
        """
        proc.charge("compute_ns", self.machine.config.cpu.compute_ns(task.total_cycles))
        if self.faults is not None:
            self.faults.counters["degraded_activations"] += 1
        for request in task.comm_requests:
            if request.nbytes > 0 and request.src_vaddr != request.dst_vaddr:
                self._functional_copy(request)
        ck = _check.CHECKER
        if ck is not None:
            # The degraded run completed synchronously: release the
            # page's working spans for the race detector.
            ck.on_degraded(page_no, proc)
        tr = _trace.TRACER
        if tr is not None:
            tr.instant(f"page/{page_no}", "degraded", proc.now)

    def _drop_blocked(self, page_no: int) -> None:
        """Purge a page's stale entries from the blocked queue."""
        kept = [(when, p) for when, p in self._blocked if p != page_no]
        if len(kept) != len(self._blocked):
            self._blocked = kept
            heapq.heapify(self._blocked)

    def handle_wait(self, op: O.WaitPage, proc: Processor) -> None:
        sub = self.subarrays.get(op.page_no)
        if sub is None or sub.current is None:
            return  # nothing outstanding on this page
        # In-flight faults strike while the activation runs in wall
        # time; the lazily-advanced execution may already be "done"
        # in simulated terms, but the processor only discovers the
        # page's fate on arrival at the wait.
        if self.faults is not None:
            try:
                replay = self.faults.on_wait(op.page_no, proc)
            except FaultError:
                # The in-flight fault degraded the page: abandon the
                # execution and redo its work on the processor.
                task = sub.last_task
                sub.abort()
                self._drop_blocked(op.page_no)
                if task is not None:
                    self._run_degraded(op.page_no, task, proc)
                return
            if replay:
                ck = _check.CHECKER
                if ck is not None:
                    ck.on_replay(op.page_no, proc)
                self._drop_blocked(op.page_no)
                execution = sub.restart(proc.now)
                if execution.is_blocked:
                    self._note_blocked(execution, op.page_no)
        execution = sub.current
        ck = _check.CHECKER
        while not execution.is_done:
            if execution.is_blocked:
                # Wait for the interrupt, then service everything pending.
                proc.stall_until(execution.block_time_ns)
                if ck is not None:
                    ck.on_wait_iteration(op.page_no, proc)
                self._service_pending(proc, force_page=op.page_no)
            else:
                break
        proc.stall_until(execution.completion_ns)
        if self.faults is not None:
            self.faults.on_complete(op.page_no)

    def handle_service(self, proc: Processor) -> None:
        self._service_pending(proc)

    def poll(self, proc: Processor) -> None:
        if self._blocked and self._blocked[0][0] <= proc.now:
            self._service_pending(proc)

    # ------------------------------------------------------------------
    # Inter-page request service

    def _service_pending(self, proc: Processor, force_page: Optional[int] = None) -> None:
        """Service all requests raised by time ``proc.now`` (batched).

        ``force_page`` additionally services that page even if its
        request is nominally in the processor's future (the processor
        has already stalled up to the raise time in ``handle_wait``).
        """
        batch: List[int] = []
        requeue: List[Tuple[float, int]] = []
        while self._blocked:
            when, page_no = self._blocked[0]
            if when <= proc.now or page_no == force_page:
                heapq.heappop(self._blocked)
                batch.append(page_no)
            else:
                break
        if force_page is not None and force_page not in batch:
            # The forced page may sit behind later-blocking pages.
            remaining = []
            for when, page_no in self._blocked:
                if page_no == force_page:
                    batch.append(page_no)
                else:
                    remaining.append((when, page_no))
            if len(batch) and remaining != self._blocked:
                self._blocked = remaining
                heapq.heapify(self._blocked)

        first = True
        for page_no in batch:
            execution = self.subarrays[page_no].current
            if execution is None or not execution.is_blocked:
                continue
            request = execution.blocked_on
            cost = service_ns(
                request,
                self.config,
                self.machine.config.dram,
                self.machine.config.bus,
                batched=self.config.batch_interrupts and not first,
            )
            first = False
            proc.stats.interrupts += 1
            self.comm_requests += 1
            self.comm_bytes += request.nbytes
            tr = _trace.TRACER
            if tr is not None:
                tr.instant(
                    f"page/{page_no}",
                    "interpage",
                    proc.now,
                    bytes=request.nbytes,
                )
                tr.counter("radram", "comm_bytes", proc.now, self.comm_bytes)
            proc.charge("interrupt_ns", cost)
            service_bytes = 2 * request.nbytes
            self.machine.bus.transfer(service_bytes)
            if self.faults is not None:
                retry = self.faults.transfer_retry_ns(
                    service_bytes, self.machine.bus, proc.now
                )
                if retry:
                    proc.charge("interrupt_ns", retry)
            if request.nbytes > 0 and request.src_vaddr != request.dst_vaddr:
                self._functional_copy(request)
            execution.resume(proc.now)
            if execution.is_blocked:
                self._note_blocked(execution, page_no)

    def _functional_copy(self, request) -> None:
        """Perform the request's copy on the functional memory."""
        memory = self.machine.memory
        try:
            memory.region_of(request.src_vaddr)
            memory.region_of(request.dst_vaddr)
        except Exception:
            return  # timing-only request with no functional payload
        memory.copy(request.src_vaddr, request.dst_vaddr, request.nbytes)

    # ------------------------------------------------------------------
    # Tracing

    def on_run_end(self, proc: Processor) -> None:
        """Flush page activation spans into the active tracer, if any.

        Page executions advance lazily against the processor clock, so
        their (start, end) spans are only final once the op stream is
        drained; emitting here keeps the per-op hot path untouched.
        """
        tr = _trace.TRACER
        if tr is not None:
            for event in self.page_trace_events(new_only=True):
                tr.emit(event)
            self._trace_flushed = {
                page_no: len(sub.intervals())
                for page_no, sub in self.subarrays.items()
            }

    def page_trace_events(self, new_only: bool = False) -> List[Event]:
        """Completed activations as ``"X"`` events on ``page/<n>`` tracks.

        This is the canonical event form of the per-subarray interval
        history — the Gantt renderer and the Figure 6 experiment consume
        these events rather than reaching into subarray state.
        ``new_only`` skips intervals already flushed to a tracer by a
        previous :meth:`on_run_end` (repeat runs stay duplicate-free).
        """
        flushed = self._trace_flushed if new_only else {}
        out: List[Event] = []
        for page_no, sub in sorted(self.subarrays.items()):
            intervals = sub.intervals()
            for start, end in intervals[flushed.get(page_no, 0):]:
                out.append(
                    Event(
                        "X",
                        start,
                        end - start,
                        f"page/{page_no}",
                        "compute",
                        None,
                    )
                )
        return out

    # ------------------------------------------------------------------
    # Introspection

    def page_busy_ns(self, page_no: int) -> float:
        sub = self.subarrays.get(page_no)
        if sub is None:
            return 0.0
        busy = sub.total_busy_ns
        if sub.current is not None:
            busy += sub.current.busy_ns
        return busy

    @property
    def total_activations(self) -> int:
        return sum(s.activations for s in self.subarrays.values())

    def fault_counters(self) -> Dict[str, float]:
        """Fault/repair counters (empty on a fault-free machine)."""
        return {} if self.faults is None else self.faults.counters_dict()
