"""User-facing RADram Active-Page system.

:class:`RADram` is what a library user programs against: the Active
Pages interface of Section 2 (``ap_alloc``/``ap_bind``/``activate``/
sync polling), with functional execution *and* RADram timing.  Each
API call performs the real data manipulation on the shared functional
memory and simultaneously advances the simulated machine, so after a
workload runs, ``elapsed_ns`` is the RADram execution time and the
page data holds the actual results.

For the precisely controlled experiment kernels, the applications in
:mod:`repro.apps` drive the lower-level op-stream interface directly;
this class is the convenient front door used by the examples.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.api import ActivePageSystem
from repro.core.errors import ActivationError
from repro.core.functions import APFunction
from repro.core.page import ActivePage
from repro.core.sync import SyncState
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory


class RADram(ActivePageSystem):
    """An Active-Page memory system realized on RADram hardware."""

    def __init__(
        self,
        config: Optional[RADramConfig] = None,
        machine_config: Optional[MachineConfig] = None,
    ) -> None:
        self.config = config or RADramConfig.reference()
        memory = PagedMemory(page_bytes=self.config.page_bytes)
        super().__init__(memory=memory)
        self.le_budget = self.config.les_per_page
        self.memsys = RADramMemorySystem(self.config)
        self.machine = Machine(
            config=machine_config, memory=memory, memsys=self.memsys
        )

    # ------------------------------------------------------------------
    # Timing-aware interface

    @property
    def elapsed_ns(self) -> float:
        """Simulated time since construction (or the last reset)."""
        return self.machine.processor.now

    def ap_bind(self, group_id: str, functions: Sequence[APFunction]) -> None:
        """Bind functions to a group, charging reconfiguration time."""
        group = self.group(group_id)
        for page in group:
            self.memsys.subarray(page.page_no).logic.configure(list(functions))
        super().ap_bind(group_id, functions)
        reconfig = self.config.reconfig_ns_per_page * len(group)
        if reconfig > 0:
            self.machine.processor.charge("activation_ns", reconfig)

    def _dispatch(self, page: ActivePage, fn: APFunction, args: tuple) -> None:
        """Run the function on the page: functionally now, timed async."""
        if fn.apply is not None:
            result = fn.apply(page, args)
            if result is not None:
                if isinstance(result, (int, np.integer)):
                    page.sync.write_results([int(result)])
                else:
                    page.sync.write_results([int(v) for v in result][:8])
        task = fn.task_for(args)
        self.machine.run(
            iter([O.Activate(page.page_no, fn.descriptor_words, task)])
        )
        # Functionally the results are already in place; the *timed*
        # completion is what wait()/is_done() below expose.
        page.sync.status = SyncState.RUNNING

    def wait(self, group_id: str, page_index: int) -> None:
        """Block (simulated) until the page's activation completes."""
        page = self.group(group_id).page(page_index)
        self.machine.run(iter([O.WaitPage(page.page_no)]))
        page.sync.status = SyncState.DONE

    def wait_all(self, group_id: str) -> None:
        """Wait for every page of a group, in order."""
        for index in range(len(self.group(group_id))):
            self.wait(group_id, index)

    def is_done(self, group_id: str, page_index: int) -> bool:
        """Non-blocking poll of a page's *timed* completion."""
        page = self.group(group_id).page(page_index)
        sub = self.memsys.subarrays.get(page.page_no)
        if sub is None or sub.current is None:
            return page.sync.status in (SyncState.DONE, SyncState.IDLE)
        done = sub.current.is_done and sub.current.completion_ns <= self.elapsed_ns
        if done:
            page.sync.status = SyncState.DONE
        return done

    def results(self, group_id: str, page_index: int, count: int):
        """Result words; requires a completed (waited-on) activation."""
        page = self.group(group_id).page(page_index)
        if page.sync.status != SyncState.DONE:
            raise ActivationError(
                f"page {page_index} of {group_id!r}: wait() before reading results"
            )
        return page.sync.read_results(count)

    def compute(self, ops: float) -> None:
        """Account processor work done between Active-Page calls."""
        self.machine.run(iter([O.Compute(ops)]))

    def mem_read(self, vaddr: int, nbytes: int) -> np.ndarray:
        """A timed read: charges the cache hierarchy, returns the bytes."""
        self.machine.run(iter([O.MemRead(vaddr, nbytes)]))
        return self.memory.read(vaddr, nbytes)

    def mem_write(self, vaddr: int, data: np.ndarray) -> None:
        """A timed write through the cache hierarchy."""
        raw = np.asarray(data, dtype=np.uint8).ravel()
        self.machine.run(iter([O.MemWrite(vaddr, len(raw))]))
        self.memory.write(vaddr, raw)
