"""Alternative Active-Page technologies (paper Section 8).

"Current technologies exist to implement Active Pages at significantly
higher cost than RADram ...  small merged FPGA-DRAM or SRAM chips,
DRAM/SRAM macrocells in ASICs, and small processor-in-DRAM/SRAM chips.
In general, logic speeds in these technologies are either equal to or
better than RADram assumptions.  Chip cost, however, will limit most
near-term technologies to substantially smaller problem sizes.  SRAM
or multichip solutions will also have an effect on memory latencies."

Each :class:`Technology` bundles the knobs Section 8 varies — logic
speed, memory latency, capacity (maximum affordable pages at a fixed
budget), and a logic-efficiency factor for the processor-in-DRAM case
(a fixed instruction set interprets what a custom circuit hardwires).
``technology_study`` runs one application across the catalog and
reports the achievable speedup at each technology's largest affordable
problem — quantifying the section's narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.base import Application
from repro.experiments.runner import measure_speedup
from repro.radram.config import RADramConfig
from repro.sim.config import MachineConfig


@dataclass(frozen=True)
class Technology:
    """One way to build Active Pages (Section 8's catalog)."""

    name: str
    logic_mhz: float
    miss_latency_ns: float
    #: largest problem (pages) affordable at a fixed system budget.
    max_pages: int
    #: cycles multiplier vs a custom circuit (1.0 = reconfigurable or
    #: ASIC datapath; >1 = interpreted on a small fixed processor).
    logic_efficiency: float = 1.0
    notes: str = ""

    def radram_config(self) -> RADramConfig:
        return RADramConfig.reference().with_logic_divisor(1e9 / (self.logic_mhz * 1e6))

    def machine_config(self) -> MachineConfig:
        return MachineConfig.reference().with_miss_latency(self.miss_latency_ns)


#: The Section 8 technology catalog.  Capacities reflect chip cost at
#: a fixed budget: RADram fabricates at DRAM cost (gigabytes); ASIC
#: macrocells and merged FPGA-SRAM parts cost 5-20x more per byte.
TECHNOLOGIES: Dict[str, Technology] = {
    tech.name: tech
    for tech in [
        Technology(
            "radram-2001",
            logic_mhz=100,
            miss_latency_ns=50,
            max_pages=4096,
            notes="the reference: reconfigurable logic in gigabit DRAM",
        ),
        Technology(
            "fpga-sram-merged",
            logic_mhz=150,
            miss_latency_ns=20,
            max_pages=64,
            notes="small merged FPGA-SRAM chip: fast, tiny, expensive",
        ),
        Technology(
            "asic-macrocell",
            logic_mhz=250,
            miss_latency_ns=40,
            max_pages=256,
            notes="DRAM macrocells in an ASIC: fast fixed logic, mid cost",
        ),
        Technology(
            "processor-in-dram",
            logic_mhz=200,
            miss_latency_ns=50,
            max_pages=128,
            logic_efficiency=4.0,
            notes="small in-DRAM cores interpret what circuits hardwire",
        ),
    ]
}


def technology_study(
    app: Application,
    technologies: Optional[List[str]] = None,
) -> List[dict]:
    """Speedup of ``app`` at each technology's largest affordable size.

    ``logic_efficiency`` scales the effective logic clock: an
    interpreted datapath retires one "circuit cycle" of work every N
    processor-in-DRAM cycles.
    """
    names = technologies or list(TECHNOLOGIES)
    rows = []
    for name in names:
        tech = TECHNOLOGIES[name]
        effective_mhz = tech.logic_mhz / tech.logic_efficiency
        rconfig = RADramConfig.reference().with_logic_divisor(1000.0 / effective_mhz)
        point = measure_speedup(
            app,
            tech.max_pages,
            machine_config=tech.machine_config(),
            radram_config=rconfig,
        )
        rows.append(
            {
                "technology": name,
                "max_pages": tech.max_pages,
                "effective_logic_mhz": effective_mhz,
                "miss_latency_ns": tech.miss_latency_ns,
                "speedup": point.speedup,
            }
        )
    return rows
