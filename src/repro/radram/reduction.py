"""Hierarchical inter-page reduction (paper Section 10).

Many Active-Page kernels end with the processor folding per-page
partial results (counts, sums) — K sync-area reads.  The paper's
"hierarchical computation structures" future work asks whether pages
could combine partials among themselves.  This module builds both
strategies as operation streams:

* :func:`processor_fold_stream` — the baseline: the processor visits
  every page's sync area and accumulates (K uncached reads).
* :func:`tree_reduce_stream` — a binary combining tree: in round r,
  page ``i`` (with ``i`` a multiple of ``2^(r+1)``) pulls its
  partner's partial via an inter-page reference and combines it in a
  few logic cycles; after ``ceil(log2 K)`` rounds the processor reads
  one value from page 0.

The punchline (asserted in the ablation benchmarks): with the paper's
*processor-mediated* references the tree is a pessimization — every
hop interrupts the processor, costing more than the read it saves —
but with the Section 10 *hardware* comm network the tree turns K
processor visits into log2(K) in-memory hops.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence

from repro.core.functions import CommRequest, PageTask, Segment
from repro.sim import ops as O

#: logic cycles for one combine (load partner value, add, store).
COMBINE_CYCLES = 6.0
#: bytes of one partial result.
PARTIAL_BYTES = 8
#: processor instructions to fold one partial into the total.
FOLD_OPS = 12.0


def processor_fold_stream(
    page_nos: Sequence[int], sync_addrs: Sequence[int]
) -> Iterator[O.Op]:
    """The baseline: read and fold every page's partial."""
    for page_no, addr in zip(page_nos, sync_addrs):
        yield O.MemRead(addr, PARTIAL_BYTES)
        yield O.Compute(FOLD_OPS)


def reduction_rounds(n_pages: int) -> int:
    return max(0, math.ceil(math.log2(n_pages))) if n_pages > 1 else 0


def tree_reduce_stream(
    page_nos: Sequence[int],
    sync_addrs: Sequence[int],
    descriptor_words: int = 3,
) -> Iterator[O.Op]:
    """Binary combining tree over the pages' partials.

    Each round activates the receiving pages with a task that blocks
    on the partner's partial (an inter-page reference) and then
    combines.  The final total is read from the first page.
    """
    n = len(page_nos)
    if n == 0:
        return
    stride = 1
    while stride < n:
        receivers: List[int] = []
        for i in range(0, n, 2 * stride):
            partner = i + stride
            if partner >= n:
                continue
            task = PageTask.of(
                [
                    Segment(
                        0.0,
                        CommRequest(
                            nbytes=PARTIAL_BYTES,
                            src_vaddr=sync_addrs[partner],
                            dst_vaddr=sync_addrs[i],
                            note=f"reduce stride {stride}",
                        ),
                    ),
                    Segment(COMBINE_CYCLES),
                ]
            )
            yield O.Activate(page_nos[i], descriptor_words, task)
            receivers.append(page_nos[i])
        for page_no in receivers:
            yield O.WaitPage(page_no)
        stride *= 2
    yield O.MemRead(sync_addrs[0], PARTIAL_BYTES)
    yield O.Compute(FOLD_OPS)
