"""Automatic application partitioning (paper Section 10).

"Ideally, a compiler would take high-level source code and divide the
computation into processor code and Active-Page functions, optimizing
for memory bandwidth, synchronization, and parallelism to reduce
execution time. ... These systems estimate the performance of each
line of code on alternative technologies, account for communication
between components, and use integer programming or simulated annealing
to minimize execution time and cost."

This package implements that co-design flow over a small kernel IR:

* :mod:`repro.partition.kernel` — the IR: a kernel is a DAG of stages
  with operation class, per-element costs, data flow, and circuit area.
* :mod:`repro.partition.estimator` — execution-time estimation of any
  processor/pages assignment, built on the Figure 7 overlap model and
  the machine constants.
* :mod:`repro.partition.partitioner` — exhaustive, greedy, and
  simulated-annealing partitioners.
* :mod:`repro.partition.library` — IR descriptions of the paper's six
  applications; the partitioner recovers Table 2's hand partitioning.
"""

from repro.partition.estimator import Assignment, PartitionEstimator, Placement
from repro.partition.kernel import Kernel, OpClass, Stage
from repro.partition.partitioner import (
    Partition,
    annealed_partition,
    exhaustive_partition,
    greedy_partition,
)

__all__ = [
    "Assignment",
    "Kernel",
    "OpClass",
    "Partition",
    "PartitionEstimator",
    "Placement",
    "Stage",
    "annealed_partition",
    "exhaustive_partition",
    "greedy_partition",
]
