"""Execution-time estimation for a processor/pages assignment.

The estimator prices each stage on its assigned technology and adds
boundary communication, following the co-design recipe the paper
sketches:

* **Processor stage** — ops at 1 IPC plus streamed bytes at the
  memory system's effective bandwidth (miss per line for fresh data).
* **Page stage** — per-page elements x logic cycles at the logic
  clock, with pages in parallel; plus one activation (T_A) and one
  post-visit (T_P) per page, folded through the Figure 7 overlap
  model so well-overlapped partitions are rewarded.
* **FP on pages** — soft-logic floating point pays
  :data:`FP_LOGIC_PENALTY` extra cycles; this is what keeps
  floating-point stages on the processor, as the paper intends.
* **Boundary traffic** — bytes flowing between stages on different
  sides cross the memory bus; same-side flows are free (pages pass
  data in place, the processor passes data in cache).
* **LE budget** — the set of page-resident stages must fit the page's
  256 LEs; infeasible assignments price at infinity.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.model import non_overlap_times
from repro.partition.kernel import Kernel, OpClass, Stage
from repro.radram.config import RADramConfig
from repro.sim.config import MachineConfig

#: extra logic-cycle multiplier for floating point in soft logic.
FP_LOGIC_PENALTY = 24.0
#: activation dispatch cost per page per page-side stage (ns).
ACTIVATION_NS = 800.0
#: processor post-visit per page per page-side stage (ns).
POST_VISIT_NS = 400.0


class Placement(enum.Enum):
    PROCESSOR = "processor"
    PAGES = "pages"


Assignment = Dict[str, Placement]


@dataclass(frozen=True)
class StageCost:
    stage: str
    placement: Placement
    time_ns: float
    boundary_bytes: float


class PartitionEstimator:
    """Prices assignments of one kernel on one machine."""

    def __init__(
        self,
        kernel: Kernel,
        machine: Optional[MachineConfig] = None,
        radram: Optional[RADramConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.machine = machine or MachineConfig.reference()
        self.radram = radram or RADramConfig.reference()

    # ------------------------------------------------------------------
    # Per-technology stage costs

    def _processor_ns(self, stage: Stage) -> float:
        compute = stage.ops_per_element * stage.elements * self.machine.cpu.cycle_ns
        fresh = (stage.stream_bytes + stage.bytes_out) * stage.elements
        line = self.machine.l1d.line_bytes
        miss_ns = (
            self.machine.l1d.hit_ns
            + self.machine.l2.hit_ns
            + self.machine.dram.miss_latency_ns
            + self.machine.bus.transfer_ns(line)
        )
        memory = (fresh / line) * miss_ns
        return compute + memory

    def _pages_ns(self, stage: Stage) -> float:
        cycles = stage.logic_cycles_per_element
        if stage.op_class is OpClass.FP:
            cycles *= FP_LOGIC_PENALTY
        pages = self.kernel.n_pages if stage.parallelizable else 1
        per_page_elements = math.ceil(stage.elements / pages)
        t_c = per_page_elements * cycles * self.radram.logic_cycle_ns
        # Figure 7: activation/post per page with overlap credit.
        no = non_overlap_times(ACTIVATION_NS, POST_VISIT_NS, t_c, pages)
        return pages * (ACTIVATION_NS + POST_VISIT_NS) + float(no.sum())

    def _boundary_bytes(self, stage: Stage, assignment: Assignment) -> float:
        """Bytes crossing the processor-memory boundary into this stage."""
        total = 0.0
        mine = assignment[stage.name]
        for producer, bytes_per_element in stage.bytes_in.items():
            if assignment[producer] is not mine:
                total += bytes_per_element * stage.elements
        return total

    # ------------------------------------------------------------------
    # Assignment pricing

    def feasible(self, assignment: Assignment) -> bool:
        """LE budget and pinning constraints."""
        les = sum(
            self.kernel.stage(name).le_cost
            for name, placement in assignment.items()
            if placement is Placement.PAGES
        )
        if les > self.radram.les_per_page:
            return False
        for stage in self.kernel.stages:
            if stage.pinned_to_processor and assignment[stage.name] is Placement.PAGES:
                return False
        return True

    def estimate(self, assignment: Assignment) -> float:
        """Total kernel time in ns (inf if infeasible)."""
        if set(assignment) != set(self.kernel.stage_names):
            raise ValueError("assignment must cover every stage exactly")
        if not self.feasible(assignment):
            return math.inf
        total = 0.0
        for stage in self.kernel.stages:
            placement = assignment[stage.name]
            if placement is Placement.PROCESSOR:
                total += self._processor_ns(stage)
            else:
                total += self._pages_ns(stage)
            boundary = self._boundary_bytes(stage, assignment)
            total += self.machine.bus.transfer_ns(int(boundary))
        return total

    def breakdown(self, assignment: Assignment) -> Dict[str, StageCost]:
        """Per-stage costs (for reports and debugging partitions)."""
        out = {}
        for stage in self.kernel.stages:
            placement = assignment[stage.name]
            time = (
                self._processor_ns(stage)
                if placement is Placement.PROCESSOR
                else self._pages_ns(stage)
            )
            out[stage.name] = StageCost(
                stage=stage.name,
                placement=placement,
                time_ns=time,
                boundary_bytes=self._boundary_bytes(stage, assignment),
            )
        return out

    def all_processor(self) -> Assignment:
        return {name: Placement.PROCESSOR for name in self.kernel.stage_names}
