"""Kernel IR descriptions of the paper's applications.

Each description abstracts the measured implementation in
:mod:`repro.apps` — same per-element operation counts, same circuit
areas, same data flows.  The partitioning tests check that searching
these kernels *recovers the paper's Table 2 hand-partitioning*: the
compiler puts data manipulation in memory and floating point on the
processor without being told to.
"""

from __future__ import annotations

from typing import Dict

from repro.partition.kernel import Kernel, OpClass, Stage

_WORDS_PER_PAGE = 131_056  # 512 KB page minus sync area, 4 B words
_PIXELS_PER_PAGE = 262_112


def median_kernel(n_pages: int = 16) -> Kernel:
    pixels = n_pages * _PIXELS_PER_PAGE
    return Kernel(
        name="median",
        n_pages=n_pages,
        stages=[
            Stage(
                "image-io",
                OpClass.CONTROL,
                elements=pixels,
                ops_per_element=1.0,
                stream_bytes=2.0,
                pinned_to_processor=True,
                le_cost=0,
            ),
            Stage(
                "median-filter",
                OpClass.DATA,
                elements=pixels,
                ops_per_element=25.0,
                bytes_in={"image-io": 2.0},
                bytes_out=2.0,
                logic_cycles_per_element=4.0 / 3.0,
                le_cost=140,
            ),
        ],
    )


def matrix_kernel(n_pages: int = 16) -> Kernel:
    nnz = n_pages * 1212
    matches = n_pages * 58
    return Kernel(
        name="matrix",
        n_pages=n_pages,
        stages=[
            Stage(
                "index-compare",
                OpClass.DATA,
                elements=nnz,
                ops_per_element=17.0,
                stream_bytes=4.0,
                logic_cycles_per_element=1.0,
                le_cost=110,
            ),
            Stage(
                "gather",
                OpClass.DATA,
                elements=matches,
                ops_per_element=8.0,
                bytes_in={"index-compare": 4.0},
                bytes_out=16.0,
                logic_cycles_per_element=2.0,
                le_cost=95,
            ),
            Stage(
                "fp-multiply",
                OpClass.FP,
                elements=matches,
                ops_per_element=8.0,
                bytes_in={"gather": 16.0},
                bytes_out=8.0,
                logic_cycles_per_element=4.0,
                le_cost=200,
            ),
        ],
    )


def database_kernel(n_pages: int = 16) -> Kernel:
    records = n_pages * 1023
    return Kernel(
        name="database",
        n_pages=n_pages,
        stages=[
            Stage(
                "scan-records",
                OpClass.DATA,
                elements=records,
                ops_per_element=12.0,
                stream_bytes=32.0,
                logic_cycles_per_element=6.0,
                le_cost=142,
            ),
            Stage(
                "summarize",
                OpClass.CONTROL,
                elements=n_pages,
                ops_per_element=660.0,
                bytes_in={"scan-records": 4.0},
                parallelizable=False,
                pinned_to_processor=True,
                le_cost=0,
            ),
        ],
    )


def array_insert_kernel(n_pages: int = 16) -> Kernel:
    words = n_pages * _WORDS_PER_PAGE
    return Kernel(
        name="array-insert",
        n_pages=n_pages,
        stages=[
            Stage(
                "shift-words",
                OpClass.DATA,
                elements=words,
                ops_per_element=2.0,
                stream_bytes=4.0,
                bytes_out=4.0,
                logic_cycles_per_element=1.0,
                le_cost=115,
            ),
            Stage(
                "cross-page-moves",
                OpClass.CONTROL,
                elements=n_pages,
                ops_per_element=115.0,
                bytes_in={"shift-words": 0.001},
                parallelizable=False,
                pinned_to_processor=True,  # inter-page references
                le_cost=0,
            ),
        ],
    )


def lcs_kernel(n_pages: int = 16) -> Kernel:
    cells = n_pages * _PIXELS_PER_PAGE
    n = int(cells**0.5)
    return Kernel(
        name="lcs",
        n_pages=n_pages,
        stages=[
            Stage(
                "table-fill",
                OpClass.INT,
                elements=cells,
                ops_per_element=6.0,
                bytes_out=2.0,
                logic_cycles_per_element=1.0,
                le_cost=179,
            ),
            Stage(
                "backtrack",
                OpClass.CONTROL,
                elements=2 * n,
                ops_per_element=20.0,
                bytes_in={"table-fill": 2.0},
                parallelizable=False,  # a single sequential walk
                pinned_to_processor=True,
                le_cost=0,
            ),
        ],
    )


def mpeg_kernel(n_pages: int = 16) -> Kernel:
    words = n_pages * 65_536
    blocks = words // 16
    return Kernel(
        name="mpeg",
        n_pages=n_pages,
        stages=[
            Stage(
                "mmx-correct",
                OpClass.INT,
                elements=words,
                ops_per_element=3.0,
                stream_bytes=8.0,
                bytes_out=4.0,
                logic_cycles_per_element=4.0 / 18.4,
                le_cost=131,
            ),
            Stage(
                "dct",
                OpClass.FP,
                elements=blocks,
                ops_per_element=30.0,
                bytes_in={"mmx-correct": 2.0},
                logic_cycles_per_element=30.0,
                le_cost=220,
            ),
        ],
    )


#: kernel name -> (factory, Table 2's page-side stage set).
TABLE2_EXPECTATIONS: Dict[str, tuple] = {
    "median": (median_kernel, frozenset({"median-filter"})),
    "matrix": (matrix_kernel, frozenset({"index-compare", "gather"})),
    "database": (database_kernel, frozenset({"scan-records"})),
    "array-insert": (array_insert_kernel, frozenset({"shift-words"})),
    "lcs": (lcs_kernel, frozenset({"table-fill"})),
    "mpeg": (mpeg_kernel, frozenset({"mmx-correct"})),
}
