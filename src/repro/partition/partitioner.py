"""Partitioning search: exhaustive, greedy, and simulated annealing.

The paper names integer programming and simulated annealing as the
co-design search techniques.  Kernels here have few stages, so an
exhaustive search is tractable and serves as the optimality oracle the
heuristics are tested against.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.partition.estimator import Assignment, PartitionEstimator, Placement
from repro.partition.kernel import Kernel


@dataclass(frozen=True)
class Partition:
    """A search result: the assignment and its estimated time."""

    kernel: str
    assignment: Dict[str, Placement]
    estimated_ns: float
    method: str

    def placement(self, stage: str) -> Placement:
        return self.assignment[stage]

    @property
    def page_stages(self) -> frozenset:
        return frozenset(
            name
            for name, placement in self.assignment.items()
            if placement is Placement.PAGES
        )

    def speedup_over_all_processor(self, estimator: PartitionEstimator) -> float:
        base = estimator.estimate(estimator.all_processor())
        return base / self.estimated_ns


def exhaustive_partition(
    kernel: Kernel, estimator: Optional[PartitionEstimator] = None
) -> Partition:
    """Try every feasible assignment (2^stages; the oracle)."""
    estimator = estimator or PartitionEstimator(kernel)
    names = kernel.stage_names
    if len(names) > 20:
        raise ValueError(
            f"{len(names)} stages is too many for exhaustive search"
        )
    best_assignment = estimator.all_processor()
    best_time = estimator.estimate(best_assignment)
    for bits in itertools.product((Placement.PROCESSOR, Placement.PAGES), repeat=len(names)):
        assignment = dict(zip(names, bits))
        time = estimator.estimate(assignment)
        if time < best_time:
            best_time = time
            best_assignment = assignment
    return Partition(kernel.name, best_assignment, best_time, method="exhaustive")


def greedy_partition(
    kernel: Kernel, estimator: Optional[PartitionEstimator] = None
) -> Partition:
    """Hill climbing from all-processor: flip the best stage until done."""
    estimator = estimator or PartitionEstimator(kernel)
    assignment = estimator.all_processor()
    time = estimator.estimate(assignment)
    improved = True
    while improved:
        improved = False
        best_flip, best_time = None, time
        for name in kernel.stage_names:
            flipped = dict(assignment)
            flipped[name] = (
                Placement.PAGES
                if assignment[name] is Placement.PROCESSOR
                else Placement.PROCESSOR
            )
            t = estimator.estimate(flipped)
            if t < best_time:
                best_flip, best_time = name, t
        if best_flip is not None:
            assignment[best_flip] = (
                Placement.PAGES
                if assignment[best_flip] is Placement.PROCESSOR
                else Placement.PROCESSOR
            )
            time = best_time
            improved = True
    return Partition(kernel.name, assignment, time, method="greedy")


def annealed_partition(
    kernel: Kernel,
    estimator: Optional[PartitionEstimator] = None,
    seed: int = 0,
    steps: int = 2000,
    t_start: float = 0.5,
    t_end: float = 1e-3,
) -> Partition:
    """Simulated annealing over stage placements.

    Energy is log execution time (so acceptance is scale-free);
    temperature decays geometrically.  Infeasible neighbours are
    rejected outright.
    """
    estimator = estimator or PartitionEstimator(kernel)
    rng = np.random.default_rng(seed)
    names = kernel.stage_names
    current = estimator.all_processor()
    current_time = estimator.estimate(current)
    best, best_time = dict(current), current_time
    decay = (t_end / t_start) ** (1.0 / max(1, steps - 1))
    temperature = t_start
    for _ in range(steps):
        name = names[int(rng.integers(len(names)))]
        neighbour = dict(current)
        neighbour[name] = (
            Placement.PAGES
            if current[name] is Placement.PROCESSOR
            else Placement.PROCESSOR
        )
        time = estimator.estimate(neighbour)
        if math.isfinite(time):
            delta = math.log(time) - math.log(current_time)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_time = neighbour, time
                if current_time < best_time:
                    best, best_time = dict(current), current_time
        temperature *= decay
    return Partition(kernel.name, best, best_time, method="annealed")
