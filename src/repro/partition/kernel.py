"""Kernel IR: what the partitioning compiler reasons about.

A :class:`Kernel` is a DAG of :class:`Stage` s.  Each stage abstracts a
loop nest: how many elements it touches, how many operations of what
class it performs per element, how many bytes flow in from each
predecessor, and — if mapped to page logic — what circuit area it
needs and at what throughput it runs.  This is the granularity
hardware-software co-design estimators work at (the paper cites
[GVNG94]): per-stage costs on alternative technologies plus inter-stage
communication.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


class OpClass(enum.Enum):
    """What kind of work a stage does — drives technology affinity."""

    INT = "integer"  # integer arithmetic / comparison
    FP = "floating-point"  # the processor's home turf
    DATA = "data-manipulation"  # moves, shifts, gathers, scans
    CONTROL = "control"  # dispatch, reduction, bookkeeping


@dataclass(frozen=True)
class Stage:
    """One loop nest of the kernel."""

    name: str
    op_class: OpClass
    #: elements the stage processes (per problem instance).
    elements: int
    #: operations per element on the processor.
    ops_per_element: float
    #: bytes read from each named predecessor, per element.
    bytes_in: Dict[str, float] = field(default_factory=dict)
    #: fresh bytes the stage reads from memory, per element.
    stream_bytes: float = 0.0
    #: bytes the stage writes, per element.
    bytes_out: float = 0.0
    #: page-logic cycles per element if mapped to pages.
    logic_cycles_per_element: float = 1.0
    #: circuit area if mapped to pages.
    le_cost: int = 64
    #: whether the stage splits across pages (element-parallel).
    parallelizable: bool = True
    #: stages that cannot leave the processor (I/O, OS calls).
    pinned_to_processor: bool = False

    @property
    def deps(self) -> Sequence[str]:
        return tuple(self.bytes_in)


@dataclass
class Kernel:
    """A named DAG of stages plus the problem size in pages."""

    name: str
    stages: List[Stage]
    n_pages: int = 16

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in kernel {self.name!r}")
        known = set(names)
        for stage in self.stages:
            missing = set(stage.deps) - known
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} depends on unknown stages {missing}"
                )
        # Reject cycles (stages must be listed in topological order).
        seen: set = set()
        for stage in self.stages:
            if not set(stage.deps) <= seen:
                raise ValueError(
                    f"stage {stage.name!r} is not in topological order"
                )
            seen.add(stage.name)

    def stage(self, name: str) -> Stage:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)

    @property
    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]
