"""Concrete generators for the eight fuzzed paper applications.

One generator per :data:`repro.apps.registry.FUZZ_APPS` entry.  Each
declares its app-specific axes, a documented model-divergence
tolerance (calibrated in ``docs/workloads.md``), and an
:meth:`~repro.workloads.base.Generator.observe` computing cheap
dataset statistics the monotonicity property suite probes.

Tolerances are per-application.  The fuzz oracle feeds the Figure 7
model the run's measured per-page T_C vector, so even data-dependent
(matrix-boeing) and pipeline-partitioned (array-insert) kernels track
it within a couple of percent; only the wavefront dynamic-prog kernel
— many activations per page, processor-side backtracking — sits
structurally outside the model, and its tolerance documents that
divergence rather than hiding it.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.apps import data
from repro.apps.database import records_per_page
from repro.apps.median import band_geometry
from repro.radram.mmx import mmx_op
from repro.sim.memory import DEFAULT_PAGE_BYTES
from repro.workloads.base import Axis, Generator, register

_PADDSW = mmx_op("paddsw")


class DatabaseGenerator(Generator):
    """Address-database query: record count and query selectivity."""

    app_name = "database"
    version = 1
    axes = (
        Axis("records", 0, 2048, 0, integer=True,
             description="record count override (0 = derive from pages)"),
        Axis("selectivity", 0.0, 1.0, 0.02,
             description="fraction of records matching the planted query"),
    )
    model_tolerance = 0.02
    monotone = (("selectivity", "matches", +1),)

    def _n_records(
        self, params: Mapping[str, float], page_bytes: int
    ) -> int:
        records = int(params.get("records", 0))
        if records > 0:
            return records
        rpp = records_per_page(page_bytes)
        return max(4, int(round(params["pages"] * rpp)))

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        p = self.clamp(params)
        n = self._n_records(p, page_bytes)
        book = data.address_book(n, seed=seed, selectivity=p["selectivity"])
        off, length = data.RECORD_LAYOUT["lastname"]
        name = data.PLANTED_LASTNAME[:length]
        query = np.zeros(length, dtype=np.uint8)
        query[: len(name)] = np.frombuffer(name, dtype=np.uint8)
        matches = np.all(book[:, off : off + length] == query, axis=1).sum()
        return {"records": float(n), "matches": float(matches)}


class MedianGenerator(Generator):
    """Median filter: impulse-noise fraction and byte-level mutation."""

    app_name = "median-kernel"
    version = 1
    axes = (
        Axis("noise", 0.0, 1.0, 0.05,
             description="salt-and-pepper impulse fraction (image entropy)"),
        Axis("byte_flips", 0, 64, 0, integer=True,
             description="seeded byte-level mutations applied to the image"),
    )
    model_tolerance = 0.02
    monotone = (("noise", "impulses", +1),)

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        p = self.clamp(params)
        width, rows_per_page = band_geometry(page_bytes)
        height = max(4, int(round(p["pages"] * rows_per_page)))
        clean = data.noisy_image(height, width, seed=seed, noise=0.0)
        image = data.noisy_image(height, width, seed=seed, noise=p["noise"])
        if p["byte_flips"]:
            image = data.apply_byte_mutations(
                image, int(p["byte_flips"]), seed=seed
            )
        return {
            "pixels": float(image.size),
            "impulses": float(np.count_nonzero(image != clean)),
        }


class LCSGenerator(Generator):
    """LCS / dynamic programming: sequence similarity."""

    app_name = "dynamic-prog"
    version = 1
    axes = (
        Axis("similarity", 0.0, 1.0, 0.85,
             description="1 - mutation rate between the two sequences"),
    )
    # The wavefront activation pattern plus processor-side backtracking
    # sit structurally outside the constant-times model: measured
    # divergence is 68-83% across the axis range (docs/workloads.md).
    model_tolerance = 0.95
    monotone = (("similarity", "lcs_fraction", +1),)

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        p = self.clamp(params)
        length = 256  # fixed probe size: cheap, yet similarity-sensitive
        a, b = data.related_sequences(
            length, mutation_rate=1.0 - p["similarity"], seed=seed
        )
        lcs = data.lcs_reference(a, b)
        return {"lcs": float(lcs), "lcs_fraction": lcs / float(length)}


class SimplexGenerator(Generator):
    """Simplex sparse multiply: uniform row density (sparsity axis)."""

    app_name = "matrix-simplex"
    version = 1
    axes = (
        Axis("density", 0.0, 1.0, data.SIMPLEX_NNZ / data.SIMPLEX_INDEX_RANGE,
             description="row density: nnz / index range (0 empty, 1 dense)"),
    )
    # Near-zero densities leave so little work per page that fixed
    # scheduling costs dominate the tiny measured time: allow 6%.
    model_tolerance = 0.06
    monotone = (("density", "nnz", +1),)

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        p = self.clamp(params)
        nnz = int(round(p["density"] * data.SIMPLEX_INDEX_RANGE))
        pairs = data.simplex_pairs(8, seed=seed, nnz=nnz)
        total = sum(pair.nnz for pair in pairs)
        matches = sum(len(pair.matches()) for pair in pairs)
        return {"nnz": float(total), "matches": float(matches)}


class BoeingGenerator(Generator):
    """Boeing sparse multiply: mean density scale and row-density skew."""

    app_name = "matrix-boeing"
    version = 1
    axes = (
        Axis("density", 0.0, 2.0, 1.0,
             description="mean-nnz scale (1.0 = the legacy 480)"),
        Axis("skew", 1.0, 20.0, data.BOEING_LEGACY_SKEW,
             description="interface/interior row-density ratio"),
    )
    # The per-page T_C vector absorbs the row-density variation that
    # sinks this dataset's Table 4 correlation; residual divergence is
    # activation-order mismatch, observed < 1% across the axis box.
    model_tolerance = 0.05
    monotone = (("density", "nnz", +1), ("skew", "row_spread", +1))

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        p = self.clamp(params)
        mean_nnz = int(round(p["density"] * data.BOEING_MEAN_NNZ))
        pairs = data.boeing_pairs(10, seed=seed, mean_nnz=mean_nnz, skew=p["skew"])
        rows = [len(pair.idx_a) for pair in pairs]
        return {
            "nnz": float(sum(pair.nnz for pair in pairs)),
            "row_spread": float(max(rows) - min(rows)),
        }


class _ArrayGenerator(Generator):
    """Shared axes of the array primitives."""

    version = 1
    axes = (
        Axis("position", 0.0, 1.0, 1.0 / 3.0,
             description="insert/delete point as a fraction of the array"),
        Axis("key_density", 0.0, 1.0, 1.0 / 97.0,
             description="planted-key fraction (find/count selectivity)"),
    )

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        from repro.apps.array import words_per_page

        p = self.clamp(params)
        total = max(8, int(round(p["pages"] * words_per_page(page_bytes))))
        position = min(total - 2, int(p["position"] * total))
        return {
            "planted": float(int(round(total * p["key_density"]))),
            "words_shifted": float(total - position),
        }


class ArrayInsertGenerator(_ArrayGenerator):
    app_name = "array-insert"
    # The cross-page ripple shows up in the per-page busy times, so
    # the vector model tracks it; observed divergence < 1% at all K.
    model_tolerance = 0.05
    monotone = (("position", "words_shifted", -1), ("key_density", "planted", +1))


class ArrayFindGenerator(_ArrayGenerator):
    app_name = "array-find"
    model_tolerance = 0.02
    monotone = (("key_density", "planted", +1),)


class MpegGenerator(Generator):
    """MPEG MMX motion correction: amplitude and byte-level mutation."""

    app_name = "mpeg-mmx"
    version = 1
    axes = (
        Axis("amplitude", 0.0, 2.0, 1.0,
             description="int16 value-range scale (saturation frequency)"),
        Axis("byte_flips", 0, 64, 0, integer=True,
             description="seeded byte-level mutations of both operands"),
    )
    model_tolerance = 0.02
    monotone = (("amplitude", "saturations", +1),)

    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        p = self.clamp(params)
        frames, corrections = data.mpeg_blocks(
            64, seed=seed, amplitude=p["amplitude"]
        )
        if p["byte_flips"]:
            frames = data.apply_byte_mutations(
                frames, int(p["byte_flips"]), seed=seed
            )
            corrections = data.apply_byte_mutations(
                corrections, int(p["byte_flips"]), seed=seed + 1
            )
        summed = _PADDSW.apply(frames.reshape(-1), corrections.reshape(-1))
        wide = frames.astype(np.int32).reshape(-1) + corrections.astype(
            np.int32
        ).reshape(-1)
        return {"saturations": float(np.count_nonzero(summed != wide))}


for _gen in (
    DatabaseGenerator(),
    MedianGenerator(),
    LCSGenerator(),
    SimplexGenerator(),
    BoeingGenerator(),
    ArrayInsertGenerator(),
    ArrayFindGenerator(),
    MpegGenerator(),
):
    register(_gen)
