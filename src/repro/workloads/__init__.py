"""Parametric workload generators and the perf/correctness fuzzer.

This package replaces "the fixed synthetic datasets" as the only way
to make work for the simulator: each paper application gets a
:class:`~repro.workloads.base.Generator` that declares the *axes* of
its input space (size, sparsity, skew, image entropy, sequence
similarity, query selectivity, ...) and turns axis values into
deterministic, seed-keyed :class:`~repro.experiments.harness.SweepTask`
streams — consumable by the sweep harness and its result cache like
any hand-written task.

On top of the generators, :mod:`repro.workloads.fuzz` implements
``python -m repro fuzz``: a seeded, time-boxed mutation loop over
generator parameters (plus byte-level input mutation for the imaging
and MPEG applications) that runs each candidate on both memory systems
under three oracles — the runtime sanitizer, measured-vs-analytic-model
divergence, and conventional/RADram result equality — and shrinks any
counterexample to a minimal replayable JSON case file.
"""

from repro.workloads.base import (
    Axis,
    GENERATORS,
    Generator,
    get_generator,
    register,
)
from repro.workloads.fuzz import (
    FUZZ_PAGE_BYTES,
    FuzzCase,
    FuzzReport,
    Finding,
    OracleResult,
    load_case_file,
    replay_case,
    run_case,
    run_fuzz,
    shrink_case,
)

# Importing the concrete generators populates GENERATORS.
from repro.workloads import generators as _generators  # noqa: E402,F401

__all__ = [
    "Axis",
    "GENERATORS",
    "Generator",
    "get_generator",
    "register",
    "FUZZ_PAGE_BYTES",
    "FuzzCase",
    "FuzzReport",
    "Finding",
    "OracleResult",
    "load_case_file",
    "replay_case",
    "run_case",
    "run_fuzz",
    "shrink_case",
]
