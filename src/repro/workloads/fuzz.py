"""Seeded perf/correctness fuzzing: ``python -m repro fuzz``.

The fuzzer is a time-boxed mutation loop over generator parameter
points.  Each candidate case runs once on each memory system with the
runtime sanitizer installed, and is judged by three oracles:

``checker``
    The :mod:`repro.check` runtime sanitizer in counting mode — any
    coherence/race/protocol violation on either system fails the case.

``equivalence``
    ``app.check_equivalence`` — the conventional and Active-Page
    versions must compute identical results.

``model``
    Measured RADram time vs the Figure 7 analytic model evaluated on
    the run's *own* phase statistics:
    ``|measured - partitioned_time(T_A, T_P, T_C, K)| / measured``
    must stay within the generator's documented ``model_tolerance``
    (scaled by ``--tolerance-scale``).

A failing case is *shrunk* — axes are greedily moved toward their
defaults (and the problem size toward its minimum) while the failure
reproduces — and written as a replayable JSON case file.

Everything is deterministic in the fuzz seed: candidate parameters
come from one ``random.Random(seed)``, case seeds are drawn from it,
and the simulations are seed-keyed — so ``repro fuzz --seed N``
produces the same candidate sequence on every run.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.apps.base import PHASE_ACTIVATION, PHASE_POST
from repro.apps.registry import FUZZ_APPS, get_app
from repro.check.runtime import CheckError, checking
from repro.core.model import partitioned_time
from repro.experiments.runner import run_conventional, run_radram
from repro.workloads.base import Generator, get_generator

#: Fuzzing runs small pages so a candidate simulates in ~0.1 s: the
#: whole axis box (up to 6 pages) stays cheap, while both systems still
#: execute real multi-page schedules.
FUZZ_PAGE_BYTES = 64 * 1024

#: Case-file schema version.
CASE_SCHEMA = 1

ORACLE_CHECKER = "checker"
ORACLE_EQUIVALENCE = "equivalence"
ORACLE_MODEL = "model"


@dataclass(frozen=True)
class FuzzCase:
    """One replayable fuzz candidate: a generator point plus seeds."""

    generator: str
    params: Mapping[str, float]
    seed: int
    page_bytes: int = FUZZ_PAGE_BYTES

    def to_dict(self) -> Dict[str, object]:
        return {
            "generator": self.generator,
            "params": dict(self.params),
            "seed": self.seed,
            "page_bytes": self.page_bytes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FuzzCase":
        return cls(
            generator=str(payload["generator"]),
            params={str(k): float(v) for k, v in payload["params"].items()},
            seed=int(payload["seed"]),
            page_bytes=int(payload.get("page_bytes", FUZZ_PAGE_BYTES)),
        )


@dataclass
class OracleResult:
    """Verdict of one oracle on one case."""

    oracle: str
    ok: bool
    detail: str = ""
    metric: float = 0.0


@dataclass
class Finding:
    """One confirmed failure: the original case and its shrunk form."""

    case: FuzzCase
    failures: List[OracleResult]
    shrunk: FuzzCase
    shrink_evals: int = 0
    path: Optional[str] = None  # written case file, when out_dir given


@dataclass
class FuzzReport:
    """Outcome of one ``run_fuzz`` invocation."""

    seed: int
    cases_run: int = 0
    elapsed_s: float = 0.0
    findings: List[Finding] = field(default_factory=list)
    #: every candidate in execution order (determinism introspection).
    candidates: List[FuzzCase] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} cases={self.cases_run} "
            f"elapsed={self.elapsed_s:.1f}s findings={len(self.findings)}"
        ]
        for f in self.findings:
            oracles = ", ".join(o.oracle for o in f.failures)
            lines.append(
                f"  FAIL {f.case.generator} [{oracles}] "
                f"shrunk->{_fmt_params(f.shrunk.params)} seed={f.shrunk.seed}"
            )
            for o in f.failures:
                lines.append(f"    {o.oracle}: {o.detail}")
            if f.path:
                lines.append(f"    case file: {f.path}")
        lines.append("fuzz: " + ("CLEAN" if self.clean else "FAILURES FOUND"))
        return "\n".join(lines)


def _fmt_params(params: Mapping[str, float]) -> str:
    return "{" + ", ".join(f"{k}={v:g}" for k, v in sorted(params.items())) + "}"


# ----------------------------------------------------------------------
# Oracles


def run_case(
    case: FuzzCase, tolerance_scale: float = 1.0
) -> List[OracleResult]:
    """Run one candidate under all three oracles; returns all verdicts.

    One functional run per system suffices: the op streams do not
    depend on ``functional``, so the same pair of simulations yields
    sanitizer counts, results for the equivalence check, and the
    timing statistics the model oracle consumes.
    """
    gen = get_generator(case.generator)
    n_pages, wparams = gen.split(case.params)
    app = get_app(gen.app_name)

    checker_fails: List[str] = []
    strict_error: Optional[str] = None
    conv = rad = None
    with checking(strict=False, app=f"{gen.app_name}/conventional") as ck:
        try:
            conv = run_conventional(
                app,
                n_pages,
                page_bytes=case.page_bytes,
                functional=True,
                seed=case.seed,
                cap_pages=None,
                params=wparams,
            )
        except CheckError as exc:  # pragma: no cover - strict only
            strict_error = str(exc)
    if sum(ck.counts.values()):
        checker_fails.append(f"conventional: {dict(ck.counts)}")
    with checking(strict=False, app=f"{gen.app_name}/radram") as ck:
        try:
            rad = run_radram(
                app,
                n_pages,
                page_bytes=case.page_bytes,
                functional=True,
                seed=case.seed,
                params=wparams,
            )
        except CheckError as exc:  # pragma: no cover - strict only
            strict_error = str(exc)
    if sum(ck.counts.values()):
        checker_fails.append(f"radram: {dict(ck.counts)}")
    if strict_error is not None:
        checker_fails.append(f"aborted: {strict_error}")

    results = [
        OracleResult(
            ORACLE_CHECKER,
            ok=not checker_fails,
            detail="; ".join(checker_fails) or "clean",
            metric=float(len(checker_fails)),
        )
    ]

    if conv is None or rad is None:
        results.append(
            OracleResult(
                ORACLE_EQUIVALENCE, ok=False, detail="run aborted (strict)"
            )
        )
        results.append(
            OracleResult(ORACLE_MODEL, ok=True, detail="run aborted (skipped)")
        )
        return results

    try:
        app.check_equivalence(conv.workload, rad.workload)
        results.append(OracleResult(ORACLE_EQUIVALENCE, ok=True, detail="equal"))
    except AssertionError as exc:
        results.append(
            OracleResult(ORACLE_EQUIVALENCE, ok=False, detail=str(exc))
        )

    measured = rad.total_ns
    k = rad.stats.activations
    if k <= 0 or measured <= 0:
        results.append(
            OracleResult(
                ORACLE_MODEL, ok=True, detail="no activations (skipped)"
            )
        )
        return results
    t_a = rad.stats.phase_mean_ns(PHASE_ACTIVATION)
    t_p = rad.stats.phase_mean_ns(PHASE_POST, exclude_wait=True)
    if len(rad.page_busy_ns) == k:
        # One activation per page: feed the model the data-dependent
        # per-page T_C vector (partial last pages and skewed rows stop
        # looking like divergence, so the tolerance can stay tight).
        t_c = np.array(rad.page_busy_ns)
    else:
        t_c = rad.mean_page_busy_ns
    predicted = partitioned_time(t_a, t_p, t_c, k)
    divergence = abs(measured - predicted) / measured
    tolerance = gen.model_tolerance * tolerance_scale
    results.append(
        OracleResult(
            ORACLE_MODEL,
            ok=divergence <= tolerance,
            detail=(
                f"divergence {divergence:.3f} vs tolerance {tolerance:.3f} "
                f"(measured {measured:.0f}ns, model {predicted:.0f}ns, K={k})"
            ),
            metric=divergence,
        )
    )
    return results


def case_failures(
    case: FuzzCase, tolerance_scale: float = 1.0
) -> List[OracleResult]:
    """The failing oracle verdicts for ``case`` (empty = clean)."""
    return [o for o in run_case(case, tolerance_scale) if not o.ok]


# ----------------------------------------------------------------------
# Shrinking


def shrink_case(
    case: FuzzCase,
    tolerance_scale: float = 1.0,
    max_evals: int = 48,
) -> tuple:
    """Greedy deterministic shrink toward the minimal failing point.

    Axis values move toward their defaults (the known-good operating
    point) and the problem size toward its minimum, accepting a move
    only while the case still fails; repeated to a fixpoint within the
    evaluation budget.  Returns ``(shrunk_case, evaluations_used)``.
    """
    gen = get_generator(case.generator)
    current = gen.clamp(case.params)
    evals = 0

    def fails(params: Mapping[str, float]) -> bool:
        nonlocal evals
        evals += 1
        return bool(case_failures(replace(case, params=dict(params)), tolerance_scale))

    changed = True
    while changed and evals < max_evals:
        changed = False
        for ax in gen.all_axes():
            target = ax.lo if ax.name == "pages" else ax.clamp(ax.default)
            value = current[ax.name]
            if value == target:
                continue
            for candidate in (target, ax.clamp((value + target) / 2.0)):
                if candidate == value or evals >= max_evals:
                    continue
                trial = dict(current)
                trial[ax.name] = candidate
                if fails(trial):
                    current = trial
                    changed = True
                    break
    return replace(case, params=current), evals


# ----------------------------------------------------------------------
# The fuzz loop


def _write_case_file(
    out_dir: Path,
    index: int,
    finding: Finding,
    fuzz_seed: int,
    tolerance_scale: float,
) -> str:
    gen = get_generator(finding.case.generator)
    payload = {
        "schema": CASE_SCHEMA,
        "tag": gen.tag,
        "case": finding.shrunk.to_dict(),
        "original": finding.case.to_dict(),
        "failures": [
            {"oracle": o.oracle, "detail": o.detail, "metric": o.metric}
            for o in finding.failures
        ],
        "fuzz_seed": fuzz_seed,
        "tolerance_scale": tolerance_scale,
        "shrink_evals": finding.shrink_evals,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"case-{index:03d}-{finding.case.generator}.json"
    path.write_text(json.dumps(payload, sort_keys=True, indent=1))
    return str(path)


#: Corpus bound per generator (passing points kept as mutation bases).
_CORPUS_CAP = 32


def run_fuzz(
    seed: int = 0,
    time_box_s: float = 60.0,
    max_cases: Optional[int] = None,
    apps: Optional[Sequence[str]] = None,
    tolerance_scale: float = 1.0,
    out_dir: Optional[str] = None,
    page_bytes: int = FUZZ_PAGE_BYTES,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """The seeded, time-boxed fuzz loop.

    Generators round-robin (coverage over luck); each candidate is
    either a fresh uniform sample or a mutation of a previously-passing
    corpus point.  The loop stops at ``time_box_s`` seconds or
    ``max_cases`` candidates, whichever comes first — with a generous
    time box the candidate sequence is a pure function of ``seed``.
    """
    rng = random.Random(seed)
    gens: List[Generator] = [get_generator(a) for a in (apps or FUZZ_APPS)]
    corpus: Dict[str, List[Dict[str, float]]] = {
        g.app_name: [g.default_params()] for g in gens
    }
    report = FuzzReport(seed=seed)
    out_path = Path(out_dir) if out_dir else None
    start = time.monotonic()

    while True:
        if max_cases is not None and report.cases_run >= max_cases:
            break
        if time.monotonic() - start >= time_box_s:
            break
        gen = gens[report.cases_run % len(gens)]
        pool = corpus[gen.app_name]
        if rng.random() < 0.3 or not pool:
            params = gen.sample(rng)
        else:
            params = gen.mutate(pool[rng.randrange(len(pool))], rng)
        case = FuzzCase(
            generator=gen.app_name,
            params=params,
            seed=rng.randrange(2**31),
            page_bytes=page_bytes,
        )
        report.candidates.append(case)
        failures = case_failures(case, tolerance_scale)
        report.cases_run += 1
        if failures:
            shrunk, evals = shrink_case(case, tolerance_scale)
            finding = Finding(
                case=case, failures=failures, shrunk=shrunk, shrink_evals=evals
            )
            if out_path is not None:
                finding.path = _write_case_file(
                    out_path,
                    len(report.findings),
                    finding,
                    seed,
                    tolerance_scale,
                )
            report.findings.append(finding)
            if log:
                log(
                    f"fuzz: {gen.app_name} failed "
                    f"[{', '.join(o.oracle for o in failures)}] "
                    f"at {_fmt_params(case.params)}"
                )
        else:
            if len(pool) < _CORPUS_CAP:
                pool.append(params)
            elif rng.random() < 0.25:
                pool[rng.randrange(len(pool))] = params

    report.elapsed_s = time.monotonic() - start
    return report


# ----------------------------------------------------------------------
# Replay


def load_case_file(path: str) -> FuzzCase:
    """The shrunk case recorded in a fuzz case file."""
    payload = json.loads(Path(path).read_text())
    if "case" in payload:
        return FuzzCase.from_dict(payload["case"])
    return FuzzCase.from_dict(payload)  # bare-case files are accepted too


def replay_case(
    path: str, tolerance_scale: float = 1.0
) -> List[OracleResult]:
    """Re-run a written case file; returns every oracle verdict."""
    return run_case(load_case_file(path), tolerance_scale)
