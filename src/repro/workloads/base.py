"""Generator framework: axes, parameter points, and task streams.

A :class:`Generator` describes one application's input space as a set
of :class:`Axis` ranges.  A *parameter point* is a plain
``{axis_name: float}`` mapping (always including the universal
``pages`` axis); the generator can sample points, mutate them, clamp
them back into range, and convert them into hashable
:class:`~repro.experiments.harness.SweepTask`\\ s whose cache key
includes both the axis values and the generator's version tag — so a
generator change can never be served stale cached results.

Determinism contract: everything here draws only from the
``random.Random`` instance handed in by the caller, and the produced
workloads draw only from NumPy generators seeded by the task seed.
The same ``(seed, params)`` therefore yields bit-identical datasets
across calls, processes, and pool workers (property-tested in
``tests/workloads/test_generator_properties.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.harness import SweepTask, speedup_task
from repro.sim.memory import DEFAULT_PAGE_BYTES


@dataclass(frozen=True)
class Axis:
    """One dimension of a generator's parameter space."""

    name: str
    lo: float
    hi: float
    default: float
    integer: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.lo <= self.default <= self.hi:
            raise ValueError(
                f"axis {self.name!r}: default {self.default} outside "
                f"[{self.lo}, {self.hi}]"
            )

    def clamp(self, value: float) -> float:
        v = min(self.hi, max(self.lo, float(value)))
        return float(round(v)) if self.integer else v

    def sample(self, rng: random.Random) -> float:
        return self.clamp(rng.uniform(self.lo, self.hi))

    def mutate(self, value: float, rng: random.Random) -> float:
        """A local perturbation: +-25% of the range, occasionally an edge."""
        roll = rng.random()
        if roll < 0.1:
            return self.clamp(self.lo)
        if roll < 0.2:
            return self.clamp(self.hi)
        span = (self.hi - self.lo) or 1.0
        return self.clamp(value + rng.uniform(-0.25, 0.25) * span)


#: The universal problem-size axis, shared by every generator.  Sizes
#: are in pages; the fuzzer runs small (64 KB) pages, so even ``hi``
#: simulates in well under a second.
PAGES_AXIS = Axis(
    "pages", 0.5, 6.0, 2.0, description="problem size in memory pages"
)


class Generator:
    """Base class: one application's parametric workload family.

    Subclasses set ``app_name`` (a :data:`repro.apps.registry.ALL_APPS`
    key), ``axes`` (the app-specific axes; ``pages`` is added
    automatically), ``model_tolerance`` (the documented relative
    divergence the analytic-model oracle allows, see
    ``docs/workloads.md``), and implement :meth:`observe`.

    Bump ``version`` whenever generated datasets change for the same
    ``(params, seed)`` — the tag is part of the sweep-cache key, so a
    bump invalidates exactly this generator's cached results.
    """

    app_name: str = ""
    version: int = 1
    axes: Tuple[Axis, ...] = ()
    #: Allowed |measured - model| / measured for the fuzz model oracle.
    model_tolerance: float = 0.10
    #: ``(axis, observable, direction)`` triples the monotonicity
    #: property suite checks: moving ``axis`` from low to high moves
    #: ``observe()[observable]`` in ``direction`` (+1 up, -1 down).
    monotone: Tuple[Tuple[str, str, int], ...] = ()

    # ------------------------------------------------------------------
    @property
    def tag(self) -> str:
        """Version tag recorded in task cache keys (``"database/v1"``)."""
        return f"{self.app_name}/v{self.version}"

    def all_axes(self) -> Tuple[Axis, ...]:
        return (PAGES_AXIS,) + tuple(self.axes)

    def axis(self, name: str) -> Axis:
        for ax in self.all_axes():
            if ax.name == name:
                return ax
        raise KeyError(f"{self.tag}: no axis {name!r}")

    # ------------------------------------------------------------------
    # Parameter points
    def default_params(self) -> Dict[str, float]:
        return {ax.name: ax.clamp(ax.default) for ax in self.all_axes()}

    def clamp(self, params: Mapping[str, float]) -> Dict[str, float]:
        """Project an arbitrary point into the valid parameter box.

        Unknown keys are dropped, missing axes filled with defaults —
        so a mutated or hand-written point is always runnable.
        """
        out = self.default_params()
        for ax in self.all_axes():
            if ax.name in params:
                out[ax.name] = ax.clamp(params[ax.name])
        return out

    def sample(self, rng: random.Random) -> Dict[str, float]:
        return {ax.name: ax.sample(rng) for ax in self.all_axes()}

    def mutate(
        self, params: Mapping[str, float], rng: random.Random
    ) -> Dict[str, float]:
        """Perturb 1-2 axes of ``params`` (the fuzzer's mutation step)."""
        out = self.clamp(params)
        axes = self.all_axes()
        for _ in range(rng.choice((1, 1, 2))):
            ax = axes[rng.randrange(len(axes))]
            out[ax.name] = ax.mutate(out[ax.name], rng)
        return out

    # ------------------------------------------------------------------
    # Tasks
    def split(
        self, params: Mapping[str, float]
    ) -> Tuple[float, Dict[str, float]]:
        """``(n_pages, workload_params)`` from one parameter point."""
        clamped = self.clamp(params)
        n_pages = clamped.pop("pages")
        return n_pages, clamped

    def task(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> SweepTask:
        """A harness task for one parameter point (speedup mode)."""
        n_pages, wparams = self.split(params)
        return speedup_task(
            self.app_name,
            n_pages,
            page_bytes=page_bytes,
            seed=seed,
            params=wparams,
            generator=self.tag,
        )

    def tasks(
        self,
        seeds: Sequence[int],
        params: Optional[Mapping[str, float]] = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Iterator[SweepTask]:
        """A deterministic seed-keyed task stream at one point."""
        point = self.clamp(params) if params is not None else self.default_params()
        for seed in seeds:
            yield self.task(point, seed=seed, page_bytes=page_bytes)

    # ------------------------------------------------------------------
    # Observables
    def observe(
        self,
        params: Mapping[str, float],
        seed: int = 0,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> Dict[str, float]:
        """Named statistics of the generated dataset at ``params``.

        Cheap (no simulation): computed straight from the data
        generators, so the monotonicity property suite can probe many
        points.  Keys are referenced by :attr:`monotone`.
        """
        raise NotImplementedError


#: Registry: generator name (== application name) -> singleton.
GENERATORS: Dict[str, Generator] = {}


def register(gen: Generator) -> Generator:
    """Add a generator to :data:`GENERATORS` (import-time hook)."""
    if not gen.app_name:
        raise ValueError("generator must set app_name")
    GENERATORS[gen.app_name] = gen
    return gen


def get_generator(name: str) -> Generator:
    try:
        return GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown generator {name!r}; available: {sorted(GENERATORS)}"
        ) from None


def generator_names() -> List[str]:
    return sorted(GENERATORS)
