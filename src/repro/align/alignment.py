"""Global (Needleman-Wunsch) and local (Smith-Waterman) alignment.

Linear gap scoring: ``match`` for equal residues, ``mismatch``
otherwise, ``gap`` per inserted/deleted residue.  Both fill an
(n+1) x (m+1) table — the same wavefront-parallel computation as LCS,
with MAX units over three neighbours — and backtrack on the processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

GAP_CHAR = ord("-")


@dataclass(frozen=True)
class AlignmentResult:
    """An alignment: score plus the two gapped strings."""

    score: int
    aligned_a: bytes
    aligned_b: bytes
    #: (start, end) of the aligned region in each input (local
    #: alignment aligns substrings; global spans everything).
    span_a: Tuple[int, int]
    span_b: Tuple[int, int]

    def identity(self) -> float:
        """Fraction of aligned columns with equal residues."""
        if not self.aligned_a:
            return 0.0
        matches = sum(
            1
            for x, y in zip(self.aligned_a, self.aligned_b)
            if x == y and x != GAP_CHAR
        )
        return matches / len(self.aligned_a)


def _fill_global(a: bytes, b: bytes, match: int, mismatch: int, gap: int) -> np.ndarray:
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1), dtype=np.int32)
    table[0, :] = gap * np.arange(m + 1)
    table[:, 0] = gap * np.arange(n + 1)
    b_arr = np.frombuffer(b, dtype=np.uint8)
    for i in range(1, n + 1):
        sub = np.where(b_arr == a[i - 1], match, mismatch)
        diag = table[i - 1, :-1] + sub
        up = table[i - 1, 1:] + gap
        best = np.maximum(diag, up)
        # The left dependency is sequential; a scan resolves it.
        row = table[i]
        row[0] = gap * i
        for j in range(1, m + 1):
            row[j] = max(best[j - 1], row[j - 1] + gap)
    return table


def needleman_wunsch(
    a: bytes, b: bytes, match: int = 2, mismatch: int = -1, gap: int = -2
) -> AlignmentResult:
    """Optimal global alignment of ``a`` and ``b``."""
    if match <= 0 or mismatch > 0 or gap > 0:
        raise ValueError("expect match > 0, mismatch <= 0, gap <= 0")
    table = _fill_global(a, b, match, mismatch, gap)
    # Backtrack from the corner.
    out_a, out_b = bytearray(), bytearray()
    i, j = len(a), len(b)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            sub = match if a[i - 1] == b[j - 1] else mismatch
            if table[i, j] == table[i - 1, j - 1] + sub:
                out_a.append(a[i - 1])
                out_b.append(b[j - 1])
                i -= 1
                j -= 1
                continue
        if i > 0 and table[i, j] == table[i - 1, j] + gap:
            out_a.append(a[i - 1])
            out_b.append(GAP_CHAR)
            i -= 1
        else:
            out_a.append(GAP_CHAR)
            out_b.append(b[j - 1])
            j -= 1
    return AlignmentResult(
        score=int(table[len(a), len(b)]),
        aligned_a=bytes(reversed(out_a)),
        aligned_b=bytes(reversed(out_b)),
        span_a=(0, len(a)),
        span_b=(0, len(b)),
    )


def smith_waterman(
    a: bytes, b: bytes, match: int = 2, mismatch: int = -1, gap: int = -2
) -> AlignmentResult:
    """Optimal local alignment (best-scoring substring pair)."""
    if match <= 0 or mismatch > 0 or gap > 0:
        raise ValueError("expect match > 0, mismatch <= 0, gap <= 0")
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1), dtype=np.int32)
    b_arr = np.frombuffer(b, dtype=np.uint8) if m else np.empty(0, dtype=np.uint8)
    for i in range(1, n + 1):
        sub = np.where(b_arr == a[i - 1], match, mismatch)
        diag = table[i - 1, :-1] + sub
        up = table[i - 1, 1:] + gap
        best = np.maximum(np.maximum(diag, up), 0)
        row = table[i]
        for j in range(1, m + 1):
            row[j] = max(best[j - 1], row[j - 1] + gap, 0)
    end = np.unravel_index(np.argmax(table), table.shape)
    i, j = int(end[0]), int(end[1])
    score = int(table[i, j])
    out_a, out_b = bytearray(), bytearray()
    end_a, end_b = i, j
    while i > 0 and j > 0 and table[i, j] > 0:
        sub = match if a[i - 1] == b[j - 1] else mismatch
        if table[i, j] == table[i - 1, j - 1] + sub:
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif table[i, j] == table[i - 1, j] + gap:
            out_a.append(a[i - 1])
            out_b.append(GAP_CHAR)
            i -= 1
        else:
            out_a.append(GAP_CHAR)
            out_b.append(b[j - 1])
            j -= 1
    return AlignmentResult(
        score=score,
        aligned_a=bytes(reversed(out_a)),
        aligned_b=bytes(reversed(out_b)),
        span_a=(i, end_a),
        span_b=(j, end_b),
    )
