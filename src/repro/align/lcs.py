"""Longest common subsequence with Hirschberg backtracking.

The paper's partitioning keeps table *construction* in Active Pages
and backtracking on the processor.  Hirschberg's divide-and-conquer
recovers an actual LCS string from forward/backward score rows only —
exactly the row data a page-banded table hands the processor — in
linear space and O(n*m) time.
"""

from __future__ import annotations

import numpy as np


def _lcs_last_row(a: bytes, b: bytes) -> np.ndarray:
    """Final DP row of LCS(a, b), vectorized per row."""
    prev = np.zeros(len(b) + 1, dtype=np.int32)
    if not a or not b:
        return prev
    b_arr = np.frombuffer(b, dtype=np.uint8)
    for ch in a:
        curr = np.zeros_like(prev)
        candidate = np.maximum(prev[:-1] + (b_arr == ch), prev[1:])
        np.maximum.accumulate(candidate, out=curr[1:])
        prev = curr
    return prev


def hirschberg_lcs(a: bytes, b: bytes) -> bytes:
    """An actual longest common subsequence of ``a`` and ``b``."""
    if not a or not b:
        return b""
    if len(a) == 1:
        return a if a[0] in b else b""
    mid = len(a) // 2
    left = _lcs_last_row(a[:mid], b)
    right = _lcs_last_row(a[mid:][::-1], b[::-1])[::-1]
    split = int(np.argmax(left + right))
    return hirschberg_lcs(a[:mid], b[:split]) + hirschberg_lcs(a[mid:], b[split:])


def is_common_subsequence(candidate: bytes, a: bytes, b: bytes) -> bool:
    """Whether ``candidate`` is a subsequence of both strings."""

    def is_subseq(needle: bytes, haystack: bytes) -> bool:
        it = iter(haystack)
        return all(ch in it for ch in needle)

    return is_subseq(candidate, a) and is_subseq(candidate, b)
