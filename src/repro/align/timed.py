"""Timed alignment on conventional vs Active-Page systems.

The alignment table fill has the same wavefront structure as the
measured dynamic-programming kernel (three-neighbour MAX per cell),
so the timing models are shared: pages fill band-rows at one logic
cycle per cell with processor-ferried (or hardware) boundary rows,
and the processor backtracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.align.alignment import AlignmentResult, needleman_wunsch, smith_waterman
from repro.apps.lcs import BACKTRACK_OPS, CONV_OPS_PER_CELL, CYCLES_PER_CELL
from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.sim.stats import MachineStats

#: global/local alignment cells cost slightly more than LCS cells
#: (scored substitution instead of an equality bit).
ALIGN_CYCLES_PER_CELL = 1.25 * CYCLES_PER_CELL
ALIGN_CONV_OPS_PER_CELL = 8.0


@dataclass(frozen=True)
class TimedAlignment:
    result: AlignmentResult
    stats: MachineStats

    @property
    def total_ns(self) -> float:
        return self.stats.total_ns


def align_timed(
    a: bytes,
    b: bytes,
    algorithm: str = "global",
    system: str = "radram",
    bands: int = 8,
    machine_config: Optional[MachineConfig] = None,
    radram_config: Optional[RADramConfig] = None,
) -> TimedAlignment:
    """Align functionally and account the execution time.

    ``algorithm``: ``"global"`` (Needleman-Wunsch) or ``"local"``
    (Smith-Waterman).  ``bands`` controls the Active-Page wavefront
    decomposition.
    """
    if algorithm == "global":
        result = needleman_wunsch(a, b)
    elif algorithm == "local":
        result = smith_waterman(a, b)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    cells = len(a) * len(b)
    backtrack_steps = len(result.aligned_a)
    if system == "conventional":
        stats = _run_conventional(cells, len(b), backtrack_steps)
    elif system == "radram":
        stats = _run_radram(
            cells, len(b), backtrack_steps, bands, machine_config, radram_config
        )
    else:
        raise ValueError(f"unknown system {system!r}")
    return TimedAlignment(result=result, stats=stats)


def _run_conventional(cells: int, width: int, backtrack: int) -> MachineStats:
    machine = Machine()
    base = 0x5000_0000
    rows = max(1, cells // max(1, width))
    stream = []
    for r in range(rows):
        stream.append(O.Compute(ALIGN_CONV_OPS_PER_CELL * width))
        stream.append(O.MemWrite(base + r * width * 4, width * 4))
    stream.append(O.Compute(BACKTRACK_OPS * backtrack))
    return machine.run(iter(stream))


def _run_radram(
    cells: int,
    width: int,
    backtrack: int,
    bands: int,
    machine_config: Optional[MachineConfig],
    radram_config: Optional[RADramConfig],
) -> MachineStats:
    rconfig = radram_config or RADramConfig.reference()
    memsys = RADramMemorySystem(rconfig)
    machine = Machine(
        config=machine_config,
        memory=PagedMemory(page_bytes=rconfig.page_bytes),
        memsys=memsys,
    )
    base_page = 0x5000_0000 // rconfig.page_bytes
    chunk_cells = max(1, cells // (bands * bands))
    boundary = max(4, (width // bands) * 4)
    stream = []
    for step in range(2 * bands - 1):
        active = [
            (i, step - i)
            for i in range(max(0, step - bands + 1), min(bands, step + 1))
        ]
        for band, _chunk in active:
            if band > 0:
                stream.append(O.MemRead(0x5000_0000 + band * boundary, boundary))
                stream.append(O.MemWrite(0x5100_0000 + band * boundary, boundary))
                stream.append(O.Compute(20))
            stream.append(
                O.Activate(
                    base_page + band,
                    2,
                    PageTask.simple(chunk_cells * ALIGN_CYCLES_PER_CELL),
                )
            )
        for band, _chunk in active:
            stream.append(O.WaitPage(base_page + band))
            stream.append(O.Compute(12))
    stream.append(O.Compute(BACKTRACK_OPS * backtrack))
    return machine.run(iter(stream))
