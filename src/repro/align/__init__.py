"""Sequence alignment suite (paper Section 5.1).

"At the heart of the computer algorithm to reconstruct DNA sequences
are string algorithms such as largest common subsequence, global
alignment, and local alignment [Gus97]."

The measured application covers LCS; this package completes the
family:

* :func:`repro.align.lcs.hirschberg_lcs` — an actual longest common
  subsequence (not just its length) in linear space, the
  divide-and-conquer backtracking a processor would run over
  page-resident DP data.
* :func:`repro.align.alignment.needleman_wunsch` — global alignment
  with affine-free linear gap scoring.
* :func:`repro.align.alignment.smith_waterman` — local alignment.
* :func:`repro.align.timed.align_timed` — both algorithms timed on
  the conventional and Active-Page systems with the same wavefront
  partitioning as the measured dynamic-programming kernel.
"""

from repro.align.alignment import AlignmentResult, needleman_wunsch, smith_waterman
from repro.align.lcs import hirschberg_lcs, is_common_subsequence
from repro.align.timed import align_timed

__all__ = [
    "AlignmentResult",
    "align_timed",
    "hirschberg_lcs",
    "is_common_subsequence",
    "needleman_wunsch",
    "smith_waterman",
]
