"""Conventional DRAM timing.

A cache miss that reaches DRAM pays ``miss_latency_ns`` (the paper's
50 ns reference, varied 0-600 ns in Figure 8) plus the bus time to move
the cache line.  The model also counts row activations so ablations can
study refresh/power-style metrics.
"""

from __future__ import annotations

from repro.sim.bus import Bus
from repro.sim.config import DRAMConfig
from repro.trace import events as _trace


class DRAM:
    """Flat-latency DRAM behind the memory bus."""

    def __init__(self, config: DRAMConfig, bus: Bus) -> None:
        self.config = config
        self.bus = bus
        self.reads: int = 0
        self.writes: int = 0

    def _trace_counters(self, tr) -> None:
        ts = tr.now
        tr.counter("dram", "reads", ts, self.reads)
        tr.counter("dram", "writes", ts, self.writes)

    def read_line(self, line_bytes: int) -> float:
        """Latency of fetching one cache line from DRAM."""
        self.reads += 1
        tr = _trace.TRACER
        if tr is not None:
            self._trace_counters(tr)
        return self.config.miss_latency_ns + self.bus.transfer(line_bytes)

    def write_line(self, line_bytes: int) -> float:
        """Latency of writing one cache line back to DRAM.

        Writebacks are posted: the processor only pays the bus time, the
        DRAM array write proceeds in the background.
        """
        self.writes += 1
        tr = _trace.TRACER
        if tr is not None:
            self._trace_counters(tr)
        return self.bus.transfer(line_bytes)

    def read_lines(self, count: int, line_bytes: int) -> float:
        """Account ``count`` line fetches; returns the per-line latency.

        Batched twin of :meth:`read_line` — each line costs the same, so
        one call covers a whole miss stream.
        """
        if count <= 0:
            return 0.0
        self.reads += count
        tr = _trace.TRACER
        if tr is not None:
            self._trace_counters(tr)
        return self.config.miss_latency_ns + self.bus.transfer_batch(count, line_bytes)

    def write_lines(self, count: int, line_bytes: int) -> float:
        """Account ``count`` posted line writebacks; returns per-line ns."""
        if count <= 0:
            return 0.0
        self.writes += count
        tr = _trace.TRACER
        if tr is not None:
            self._trace_counters(tr)
        return self.bus.transfer_batch(count, line_bytes)

    def uncached_write(self, nbytes: int) -> float:
        """A memory-mapped (uncached) store of ``nbytes``.

        Used for Active-Page activation writes: the store bypasses the
        caches, crossing the bus and paying the array write latency.
        """
        self.writes += 1
        return self.config.miss_latency_ns + self.bus.transfer(nbytes)

    def uncached_read(self, nbytes: int) -> float:
        """A memory-mapped (uncached) load of ``nbytes``."""
        self.reads += 1
        return self.config.miss_latency_ns + self.bus.transfer(nbytes)

    def reset(self) -> None:
        """Clear accumulated statistics."""
        self.reads = 0
        self.writes = 0
