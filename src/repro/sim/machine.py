"""Machine assembly: processor + caches + bus + DRAM + memory system.

A :class:`Machine` wires the pieces of Table 1 together.  The memory
system is pluggable: :class:`ConventionalMemorySystem` (plain DRAM,
Active-Page ops rejected) or :class:`repro.radram.system.RADramSystem`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.bus import Bus
from repro.sim.cache import Cache, build_hierarchy
from repro.sim.config import MachineConfig
from repro.sim.dram import DRAM
from repro.sim.memory import PagedMemory
from repro.sim import ops as O
from repro.sim.processor import MemorySystemBase, Processor
from repro.sim.stats import MachineStats


class ConventionalMemorySystem(MemorySystemBase):
    """Plain DRAM behind the caches — the paper's baseline system."""

    #: No Active-Page state, no polling, no faults: every op stream is
    #: safe to run through the fused batched executor.
    supports_batching = True


class Machine:
    """A complete simulated machine.

    Parameters
    ----------
    config:
        Timing parameters (defaults to the Table 1 reference machine).
    memory:
        Functional backing store shared with the application; one is
        created on demand if not supplied.
    memsys:
        The memory system.  ``None`` selects the conventional system.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        memory: Optional[PagedMemory] = None,
        memsys: Optional[MemorySystemBase] = None,
    ) -> None:
        self.config = config or MachineConfig.reference()
        self.memory = memory if memory is not None else PagedMemory()
        self.bus = Bus(self.config.bus)
        self.dram = DRAM(self.config.dram, self.bus)
        self.l1d, self.l1i, self.l2 = build_hierarchy(
            self.config.l1d, self.config.l2, self.dram, l1i_cfg=self.config.l1i
        )
        self.memsys = memsys if memsys is not None else ConventionalMemorySystem()
        attach = getattr(self.memsys, "attach", None)
        if attach is not None:
            attach(self)
        self.processor = Processor(self.config, self.l1d, self.memsys)

    def run(self, stream: Iterable[O.Op]) -> MachineStats:
        """Run one operation stream to completion."""
        return self.processor.run(stream)

    def reset_timing(self) -> None:
        """Clear caches and statistics but keep memory contents."""
        self.l1d.invalidate_all()
        self.l2.invalidate_all()
        if self.l1i is not None:
            self.l1i.invalidate_all()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        if self.l1i is not None:
            self.l1i.reset_stats()
        self.bus.reset()
        self.dram.reset()
        self.processor.now = 0.0
        self.processor.stats = MachineStats()
        reset = getattr(self.memsys, "reset", None)
        if reset is not None:
            reset()
