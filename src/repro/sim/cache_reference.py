"""Scalar reference model for the cache hierarchy.

This is the original per-line cache timing model (one Python call per
line, ``list``-based LRU bookkeeping), retained verbatim — plus the
writeback-install fix — as the *oracle* for the vectorized engine in
:mod:`repro.sim.cache`.  The differential test suite drives both models
with identical access streams and demands bit-identical hit/miss/
writeback decisions, latencies, and residency state.

Semantics (shared contract with the vectorized engine)
------------------------------------------------------
* Set-associative, write-back, write-allocate, exact LRU.
* A demand miss fills from the next level (as a read), then — if the
  set is full — evicts the LRU victim.  A dirty victim is *posted* to
  the next level: the processor is charged only the next level's hit
  time (or the DRAM line-write bus time at the last level), but the
  victim line **is installed dirty** in the next level, where it may
  cascade further evictions off the critical path.
* Posted installs allocate without fetching (the upper level holds the
  whole line) and never count as demand hits/misses; cascaded dirty
  evictions do count in the evicting level's ``writebacks``.

Keep this module boring: it is developed for obviousness, not speed,
and every behavioural change here must be mirrored in ``cache.py`` (the
differential suite enforces that).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.sim.config import CacheConfig
from repro.sim.dram import DRAM


class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    __slots__ = ("hits", "misses", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0


class ScalarCache:
    """One set-associative cache level (scalar reference model).

    ``next_level`` is either another :class:`ScalarCache` or ``None``,
    in which case ``dram`` must be provided and services misses.
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        next_level: Optional["ScalarCache"] = None,
        dram: Optional[DRAM] = None,
    ) -> None:
        if next_level is None and dram is None:
            raise ValueError(f"cache {name!r} needs a next level or DRAM")
        self.name = name
        self.config = config
        self.next_level = next_level
        self.dram = dram
        self.stats = CacheStats()
        n_sets = config.n_sets
        # Per set: list of tags in LRU order (index 0 = most recent) and
        # a parallel list of dirty bits.
        self._tags: List[List[int]] = [[] for _ in range(n_sets)]
        self._dirty: List[List[bool]] = [[] for _ in range(n_sets)]
        self._n_sets = n_sets

    def line_of(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr // self.config.line_bytes

    def access_line(self, line_addr: int, write: bool) -> float:
        """Access one line; returns latency in ns (includes lower levels)."""
        set_idx = line_addr % self._n_sets
        tag = line_addr // self._n_sets
        tags = self._tags[set_idx]
        dirty = self._dirty[set_idx]
        latency = self.config.hit_ns

        try:
            pos = tags.index(tag)
        except ValueError:
            pos = -1

        if pos >= 0:
            self.stats.hits += 1
            # Move to MRU position.
            if pos != 0:
                tags.insert(0, tags.pop(pos))
                dirty.insert(0, dirty.pop(pos))
            if write:
                dirty[0] = True
            return latency

        self.stats.misses += 1
        # Fill from below.
        if self.next_level is not None:
            latency += self.next_level.access_line(line_addr, write=False)
        else:
            assert self.dram is not None
            latency += self.dram.read_line(self.config.line_bytes)

        # Evict LRU if the set is full.
        if len(tags) >= self.config.assoc:
            evicted_dirty = dirty.pop()
            evicted_tag = tags.pop()
            if evicted_dirty:
                self.stats.writebacks += 1
                latency += self._writeback(evicted_tag * self._n_sets + set_idx)
        tags.insert(0, tag)
        dirty.insert(0, write)
        return latency

    def _writeback(self, victim_line: int) -> float:
        """Post a dirty victim to the level below; returns the posted cost.

        The victim is *installed* (dirty) in the next level so its data
        stays architecturally visible there.  Writebacks are posted, so
        only the next level's hit time (or the DRAM line-write bus
        time) lands on the critical path — deeper traffic cascades off
        it.
        """
        if self.next_level is not None:
            self.next_level.install_line(victim_line)
            return self.next_level.config.hit_ns
        assert self.dram is not None
        return self.dram.write_line(self.config.line_bytes)

    def install_line(self, line_addr: int) -> None:
        """Accept a posted dirty victim from the level above.

        Allocates without fetching (the upper level held the full
        line); never counts as a demand hit/miss.  A cascaded dirty
        eviction counts in this level's ``writebacks`` and its traffic
        is accounted, but no latency is charged (off critical path).
        """
        set_idx = line_addr % self._n_sets
        tag = line_addr // self._n_sets
        tags = self._tags[set_idx]
        dirty = self._dirty[set_idx]

        try:
            pos = tags.index(tag)
        except ValueError:
            pos = -1

        if pos >= 0:
            if pos != 0:
                tags.insert(0, tags.pop(pos))
                dirty.insert(0, dirty.pop(pos))
            dirty[0] = True
            return

        if len(tags) >= self.config.assoc:
            evicted_dirty = dirty.pop()
            evicted_tag = tags.pop()
            if evicted_dirty:
                self.stats.writebacks += 1
                self._writeback(evicted_tag * self._n_sets + set_idx)
        tags.insert(0, tag)
        dirty.insert(0, True)

    def access_lines(self, line_addrs: Iterable[int], write: bool) -> float:
        """Access a sequence of lines; returns total latency in ns."""
        total = 0.0
        for line in line_addrs:
            total += self.access_line(int(line), write)
        return total

    def contains(self, line_addr: int) -> bool:
        """True if ``line_addr`` is currently resident (no state change)."""
        set_idx = line_addr % self._n_sets
        tag = line_addr // self._n_sets
        return tag in self._tags[set_idx]

    def lru_contents(self, set_idx: int) -> List[Tuple[int, bool]]:
        """``[(line_addr, dirty), ...]`` of one set, MRU first."""
        return [
            (tag * self._n_sets + set_idx, bool(d))
            for tag, d in zip(self._tags[set_idx], self._dirty[set_idx])
        ]

    def invalidate_all(self) -> None:
        """Drop all lines (without writeback) — used between runs."""
        for tags in self._tags:
            tags.clear()
        for dirty in self._dirty:
            dirty.clear()

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(tags) for tags in self._tags)

    def reset_stats(self) -> None:
        self.stats.reset()


def build_scalar_hierarchy(
    l1d_cfg: CacheConfig,
    l2_cfg: CacheConfig,
    dram: DRAM,
    l1i_cfg: Optional[CacheConfig] = None,
) -> tuple:
    """Scalar-model twin of :func:`repro.sim.cache.build_hierarchy`."""
    l2 = ScalarCache("L2", l2_cfg, dram=dram)
    l1d = ScalarCache("L1D", l1d_cfg, next_level=l2)
    l1i = (
        ScalarCache("L1I", l1i_cfg, next_level=l2) if l1i_cfg is not None else None
    )
    return l1d, l1i, l2
