"""In-order processor timing model.

The processor consumes an operation stream (:mod:`repro.sim.ops`),
advancing its clock ``now`` (nanoseconds):

* ``Compute`` ops retire at ``issue_width`` per cycle.  Kernel authors
  include load/store issue slots in their compute counts; memory ops
  below charge only the memory-hierarchy latency of the footprint.
* Memory ops expand to cache-line sequences and walk the L1D/L2/DRAM
  hierarchy (blocking, in-order — conservative, like the paper's
  conventional system).
* Active-Page ops (``Activate``/``WaitPage``/``ServicePending``) are
  delegated to the attached memory system, which charges activation
  cost, stall (non-overlap) time, and interrupt service time.

Between operations the memory system is polled so pages blocked on
inter-page references get serviced at instruction granularity, matching
the paper's processor-mediated communication.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.cache import Cache
from repro.sim.config import MachineConfig
from repro.sim.errors import OperationError
from repro.sim import ops as O
from repro.sim.stats import MachineStats
from repro.check import runtime as _check
from repro.trace import events as _trace


class MemorySystemBase:
    """Interface the processor uses to reach the memory system."""

    #: Whether :meth:`poll` must be called between ops.  Passive memory
    #: systems (conventional DRAM) leave this False and skip a Python
    #: call per op; RADram keeps instruction-granularity polling.
    needs_poll: bool = False

    def on_run_begin(self, proc: "Processor") -> None:
        """Called once before an op stream starts."""

    def on_run_end(self, proc: "Processor") -> None:
        """Called once after the op stream is exhausted."""

    def poll(self, proc: "Processor") -> None:
        """Called between ops; service anything pending."""

    def handle_activate(self, op: O.Activate, proc: "Processor") -> None:
        raise OperationError("this memory system does not support Active Pages")

    def handle_wait(self, op: O.WaitPage, proc: "Processor") -> None:
        raise OperationError("this memory system does not support Active Pages")

    def handle_service(self, proc: "Processor") -> None:
        """Explicit ServicePending op; default is a no-op."""


class Processor:
    """Single in-order core attached to an L1D and a memory system."""

    def __init__(
        self,
        config: MachineConfig,
        l1d: Cache,
        memsys: MemorySystemBase,
    ) -> None:
        self.config = config
        self.l1d = l1d
        self.memsys = memsys
        self.now: float = 0.0
        self.stats = MachineStats()

    # ------------------------------------------------------------------
    # Time charging helpers (used by the memory system too)

    def charge(self, category: str, ns: float) -> None:
        """Advance the clock by ``ns``, billed to ``category``."""
        if ns < 0:
            raise OperationError("cannot charge negative time")
        start = self.now
        self.now = start + ns
        self.stats.charge(category, ns)
        tr = _trace.TRACER
        if tr is not None:
            tr.now = self.now
            if ns > 0:
                # "compute_ns" -> span "compute" on the cpu timeline.
                tr.complete("cpu", category[:-3], start, self.now)

    def stall_until(self, when: float) -> None:
        """Stall (non-overlap) until absolute time ``when``."""
        if when > self.now:
            self.stats.waits += 1
            self.charge("wait_ns", when - self.now)

    # ------------------------------------------------------------------
    # Operation interpretation

    def run(self, stream: Iterable[O.Op]) -> MachineStats:
        """Execute an op stream to completion; returns the stats."""
        self.memsys.on_run_begin(self)
        if self.memsys.needs_poll:
            for op in stream:
                self.step(op)
                self.memsys.poll(self)
        else:
            for op in stream:
                self.step(op)
        self.memsys.on_run_end(self)
        self.stats.total_ns = self.now
        return self.stats

    def step(self, op: O.Op) -> None:
        """Execute a single operation (SMP co-simulation entry point)."""
        ck = _check.CHECKER
        if ck is not None:
            ck.on_op(op, self)
        line = self.l1d.config.line_bytes
        if isinstance(op, O.Compute):
            self.charge("compute_ns", self.config.cpu.compute_ns(op.ops))
        elif isinstance(op, O.MemRead):
            lines = O.lines_for_block(op.addr, op.nbytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=False))
        elif isinstance(op, O.MemWrite):
            lines = O.lines_for_block(op.addr, op.nbytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=True))
        elif isinstance(op, O.StridedRead):
            lines = O.lines_for_stride(
                op.addr, op.count, op.stride_bytes, op.elem_bytes, line
            )
            self.charge("mem_ns", self.l1d.access_lines(lines, write=False))
        elif isinstance(op, O.StridedWrite):
            lines = O.lines_for_stride(
                op.addr, op.count, op.stride_bytes, op.elem_bytes, line
            )
            self.charge("mem_ns", self.l1d.access_lines(lines, write=True))
        elif isinstance(op, O.GatherRead):
            lines = O.lines_for_gather(op.addrs, op.elem_bytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=False))
        elif isinstance(op, O.ScatterWrite):
            lines = O.lines_for_gather(op.addrs, op.elem_bytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=True))
        elif isinstance(op, O.FlushRange):
            if op.nbytes > 0:
                lo_line = op.addr // line
                hi_line = (op.addr + op.nbytes - 1) // line
                self.charge("mem_ns", self.l1d.flush_range(lo_line, hi_line))
        elif isinstance(op, O.Activate):
            self.memsys.handle_activate(op, self)
        elif isinstance(op, O.WaitPage):
            self.memsys.handle_wait(op, self)
        elif isinstance(op, O.ServicePending):
            self.memsys.handle_service(self)
        elif isinstance(op, O.BeginPhase):
            self.stats.begin_phase(op.name)
            tr = _trace.TRACER
            if tr is not None:
                tr.begin("cpu.phase", op.name, self.now)
        elif isinstance(op, O.EndPhase):
            self.stats.end_phase(op.name)
            tr = _trace.TRACER
            if tr is not None:
                tr.end("cpu.phase", op.name, self.now)
        else:
            raise OperationError(f"unknown operation {op!r}")
