"""In-order processor timing model.

The processor consumes an operation stream (:mod:`repro.sim.ops`),
advancing its clock ``now`` (nanoseconds):

* ``Compute`` ops retire at ``issue_width`` per cycle.  Kernel authors
  include load/store issue slots in their compute counts; memory ops
  below charge only the memory-hierarchy latency of the footprint.
* Memory ops expand to cache-line sequences and walk the L1D/L2/DRAM
  hierarchy (blocking, in-order — conservative, like the paper's
  conventional system).
* Active-Page ops (``Activate``/``WaitPage``/``ServicePending``) are
  delegated to the attached memory system, which charges activation
  cost, stall (non-overlap) time, and interrupt service time.

Between operations the memory system is polled so pages blocked on
inter-page references get serviced at instruction granularity, matching
the paper's processor-mediated communication.

Execution regimes
-----------------
``run`` picks one of two regimes per stream:

* the **scalar oracle** — :meth:`Processor.step` per op (plus a poll
  for polling systems), exactly the historical loop; and
* the **batched executor** — straight-line segments between sync
  points (``Activate``/``WaitPage``/``ServicePending``/``FlushRange``)
  are buffered, their memory footprints expanded once and resolved by
  the cache in a single wide batch, and the per-op clock/stats charges
  replayed sequentially from the per-line latencies.  The fold order
  matches the scalar loop exactly, so ``MachineStats`` is
  bit-identical, not merely close (the differential suite in
  ``tests/sim/test_batched_exec.py`` enforces this).

The batched regime is only entered when the tracer and the sanitizer
are both disabled and the memory system opts in via
``supports_batching`` (RADram opts out while fault injection is
active); otherwise the scalar oracle runs with identical semantics.
Polls are skipped inside a segment only while the memory system
reports no pending service work — while the blocked-page queue is
empty, ``poll`` is by construction a no-op, so skipping it cannot
change behaviour.  As soon as a sync op leaves service pending, the
executor drops to the scalar per-op loop (with polls) until the queue
drains.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.sim.cache import Cache
from repro.sim.config import MachineConfig
from repro.sim.errors import OperationError
from repro.sim import ops as O
from repro.sim.stats import MachineStats
from repro.check import runtime as _check
from repro.trace import events as _trace

#: Stream-exhausted marker for the batched executor (never a valid op).
_SENTINEL = object()

#: Segment-entry tags for the batched executor.
_ENT_COMPUTE = 0
_ENT_MEM = 1
_ENT_BEGIN = 2
_ENT_END = 3

#: Flush a fused segment when its footprint reaches this many lines —
#: bounds buffering memory; flushing mid-segment is always safe.
_SEGMENT_MAX_LINES = 1 << 17


class MemorySystemBase:
    """Interface the processor uses to reach the memory system."""

    #: Whether :meth:`poll` must be called between ops.  Passive memory
    #: systems (conventional DRAM) leave this False and skip a Python
    #: call per op; RADram keeps instruction-granularity polling.
    needs_poll: bool = False

    #: Whether the batched executor may fuse straight-line segments
    #: for this system.  Default False: an unknown subclass keeps the
    #: exact scalar per-op loop, including its per-op polls.
    supports_batching: bool = False

    def on_run_begin(self, proc: "Processor") -> None:
        """Called once before an op stream starts."""

    def on_run_end(self, proc: "Processor") -> None:
        """Called once after the op stream is exhausted."""

    def poll(self, proc: "Processor") -> None:
        """Called between ops; service anything pending."""

    def has_pending_service(self) -> bool:
        """Whether :meth:`poll` could do work right now.

        The batched executor skips per-op polls only while this is
        False.  The conservative default (always True) keeps any
        polling system that does not override it on the scalar loop.
        """
        return True

    def handle_activate(self, op: O.Activate, proc: "Processor") -> None:
        raise OperationError("this memory system does not support Active Pages")

    def handle_wait(self, op: O.WaitPage, proc: "Processor") -> None:
        raise OperationError("this memory system does not support Active Pages")

    def handle_service(self, proc: "Processor") -> None:
        """Explicit ServicePending op; default is a no-op."""

    # ------------------------------------------------------------------
    # Batched-executor hooks.  Only invoked with tracer and sanitizer
    # disabled; ``ops`` is a run of Activate/WaitPage ops with phase
    # markers interleaved, to be applied strictly in order.  Both
    # return the number of ops consumed — a handler stops early (and
    # the executor finishes the rest through the scalar path) as soon
    # as one leaves service work pending.

    def handle_activate_batch(self, ops: List[O.Op], proc: "Processor") -> int:
        stats = proc.stats
        consumed = 0
        for op in ops:
            cls = op.__class__
            if cls is O.BeginPhase:
                stats.begin_phase(op.name)
            elif cls is O.EndPhase:
                stats.end_phase(op.name)
            else:
                self.handle_activate(op, proc)
                consumed += 1
                if self.needs_poll and self.has_pending_service():
                    return consumed
                continue
            consumed += 1
        return consumed

    def handle_wait_batch(self, ops: List[O.Op], proc: "Processor") -> int:
        stats = proc.stats
        consumed = 0
        for op in ops:
            cls = op.__class__
            if cls is O.BeginPhase:
                stats.begin_phase(op.name)
            elif cls is O.EndPhase:
                stats.end_phase(op.name)
            else:
                self.handle_wait(op, proc)
                consumed += 1
                if self.needs_poll and self.has_pending_service():
                    return consumed
                continue
            consumed += 1
        return consumed


class Processor:
    """Single in-order core attached to an L1D and a memory system."""

    def __init__(
        self,
        config: MachineConfig,
        l1d: Cache,
        memsys: MemorySystemBase,
    ) -> None:
        self.config = config
        self.l1d = l1d
        self.memsys = memsys
        self.now: float = 0.0
        self.stats = MachineStats()
        #: Tracer bound for the current run()/step() dynamic extent.
        #: ``charge`` reads this instead of the module attribute — one
        #: global lookup per run instead of one per charge.
        self._tr = _trace.TRACER
        #: Escape hatch: pin the scalar oracle loop even when the
        #: memory system supports batching (differential tests and the
        #: paired-ratio benchmarks flip this).
        self.batching_enabled: bool = True

    # ------------------------------------------------------------------
    # Time charging helpers (used by the memory system too)

    def charge(self, category: str, ns: float) -> None:
        """Advance the clock by ``ns``, billed to ``category``."""
        if ns < 0:
            raise OperationError("cannot charge negative time")
        start = self.now
        self.now = start + ns
        self.stats.charge(category, ns)
        tr = self._tr
        if tr is not None:
            tr.now = self.now
            if ns > 0:
                # "compute_ns" -> span "compute" on the cpu timeline.
                tr.complete("cpu", category[:-3], start, self.now)

    def stall_until(self, when: float) -> None:
        """Stall (non-overlap) until absolute time ``when``."""
        if when > self.now:
            self.stats.waits += 1
            self.charge("wait_ns", when - self.now)

    # ------------------------------------------------------------------
    # Operation interpretation

    def run(self, stream: Iterable[O.Op]) -> MachineStats:
        """Execute an op stream to completion; returns the stats."""
        memsys = self.memsys
        memsys.on_run_begin(self)
        ck = _check.CHECKER
        self._tr = tr = _trace.TRACER
        if (
            ck is None
            and tr is None
            and self.batching_enabled
            and memsys.supports_batching
            and not (memsys.needs_poll and memsys.has_pending_service())
        ):
            self._run_batched(stream)
        elif memsys.needs_poll:
            step = self._step
            poll = memsys.poll
            for op in stream:
                step(op, ck, tr)
                poll(self)
        else:
            step = self._step
            for op in stream:
                step(op, ck, tr)
        memsys.on_run_end(self)
        self.stats.total_ns = self.now
        return self.stats

    def step(self, op: O.Op) -> None:
        """Execute a single operation (SMP co-simulation entry point)."""
        self._tr = tr = _trace.TRACER
        self._step(op, _check.CHECKER, tr)

    def _step(self, op: O.Op, ck, tr) -> None:
        """Scalar oracle: one op, with the instrumentation guards
        hoisted to arguments (bound once per run by the caller)."""
        if ck is not None:
            ck.on_op(op, self)
        line = self.l1d.config.line_bytes
        if isinstance(op, O.Compute):
            self.charge("compute_ns", self.config.cpu.compute_ns(op.ops))
        elif isinstance(op, O.MemRead):
            lines = O.lines_for_block(op.addr, op.nbytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=False))
        elif isinstance(op, O.MemWrite):
            lines = O.lines_for_block(op.addr, op.nbytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=True))
        elif isinstance(op, O.StridedRead):
            lines = O.lines_for_stride(
                op.addr, op.count, op.stride_bytes, op.elem_bytes, line
            )
            self.charge("mem_ns", self.l1d.access_lines(lines, write=False))
        elif isinstance(op, O.StridedWrite):
            lines = O.lines_for_stride(
                op.addr, op.count, op.stride_bytes, op.elem_bytes, line
            )
            self.charge("mem_ns", self.l1d.access_lines(lines, write=True))
        elif isinstance(op, O.GatherRead):
            lines = O.lines_for_gather(op.addrs, op.elem_bytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=False))
        elif isinstance(op, O.ScatterWrite):
            lines = O.lines_for_gather(op.addrs, op.elem_bytes, line)
            self.charge("mem_ns", self.l1d.access_lines(lines, write=True))
        elif isinstance(op, O.FlushRange):
            if op.nbytes > 0:
                lo_line = op.addr // line
                hi_line = (op.addr + op.nbytes - 1) // line
                self.charge("mem_ns", self.l1d.flush_range(lo_line, hi_line))
        elif isinstance(op, O.Activate):
            self.memsys.handle_activate(op, self)
        elif isinstance(op, O.WaitPage):
            self.memsys.handle_wait(op, self)
        elif isinstance(op, O.ServicePending):
            self.memsys.handle_service(self)
        elif isinstance(op, O.BeginPhase):
            self.stats.begin_phase(op.name)
            if tr is not None:
                tr.begin("cpu.phase", op.name, self.now)
        elif isinstance(op, O.EndPhase):
            self.stats.end_phase(op.name)
            if tr is not None:
                tr.end("cpu.phase", op.name, self.now)
        else:
            raise OperationError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    # Batched executor

    def _run_batched(self, stream: Iterable[O.Op]) -> None:
        """Fused-segment regime (bit-identical to the scalar loop).

        Straight-line ops accumulate into a segment: Compute charges
        are precomputed, memory ops expand their line footprints once.
        ``_flush_segment`` resolves the footprint in one wide cache
        batch and replays the per-op charges sequentially.  Sync ops
        flush the segment and go through the same memory-system
        handlers the scalar loop uses; runs of Activate/WaitPage ops
        (with interleaved phase markers) are forwarded to the batch
        handlers.  While a sync op leaves service pending, ops run
        through the scalar oracle with per-op polls — exactly the
        historical loop.
        """
        memsys = self.memsys
        needs_poll = memsys.needs_poll
        poll = memsys.poll
        pending = memsys.has_pending_service
        step = self._step
        l1d = self.l1d
        line = l1d.config.line_bytes
        compute_ns = self.config.cpu.compute_ns
        lines_for_block = O.lines_for_block
        lines_for_stride = O.lines_for_stride
        lines_for_gather = O.lines_for_gather
        Compute = O.Compute
        MemRead = O.MemRead
        MemWrite = O.MemWrite
        StridedRead = O.StridedRead
        StridedWrite = O.StridedWrite
        GatherRead = O.GatherRead
        ScatterWrite = O.ScatterWrite
        FlushRange = O.FlushRange
        Activate = O.Activate
        WaitPage = O.WaitPage
        ServicePending = O.ServicePending
        BeginPhase = O.BeginPhase
        EndPhase = O.EndPhase

        tags: list = []  # _ENT_* codes
        vals: list = []  # ns / mem index / phase name, per entry
        arrays: list = []  # line arrays of the segment's memory ops
        writes: list = []  # per-array write flag
        n_lines = 0
        flush = self._flush_segment

        it = iter(stream)
        op = next(it, _SENTINEL)
        while op is not _SENTINEL:
            t = op.__class__
            if t is Compute:
                ns = compute_ns(op.ops)
                if ns < 0:
                    # The scalar charge() raises here, after applying
                    # every earlier op — replicate exactly.
                    flush(tags, vals, arrays, writes, n_lines)
                    raise OperationError("cannot charge negative time")
                tags.append(_ENT_COMPUTE)
                vals.append(ns)
                op = next(it, _SENTINEL)
                continue
            w = True
            if t is MemRead:
                arr = lines_for_block(op.addr, op.nbytes, line)
                w = False
            elif t is MemWrite:
                arr = lines_for_block(op.addr, op.nbytes, line)
            elif t is StridedRead:
                arr = lines_for_stride(
                    op.addr, op.count, op.stride_bytes, op.elem_bytes, line
                )
                w = False
            elif t is StridedWrite:
                arr = lines_for_stride(
                    op.addr, op.count, op.stride_bytes, op.elem_bytes, line
                )
            elif t is GatherRead:
                arr = lines_for_gather(op.addrs, op.elem_bytes, line)
                w = False
            elif t is ScatterWrite:
                arr = lines_for_gather(op.addrs, op.elem_bytes, line)
            elif t is BeginPhase:
                tags.append(_ENT_BEGIN)
                vals.append(op.name)
                op = next(it, _SENTINEL)
                continue
            elif t is EndPhase:
                tags.append(_ENT_END)
                vals.append(op.name)
                op = next(it, _SENTINEL)
                continue
            else:
                # Sync point: flush the fused segment, then run the op
                # through the scalar handlers.
                if tags:
                    flush(tags, vals, arrays, writes, n_lines)
                    tags = []
                    vals = []
                    arrays = []
                    writes = []
                    n_lines = 0
                if t is Activate or t is WaitPage:
                    run_ops = [op]
                    gather = Activate if t is Activate else WaitPage
                    op = next(it, _SENTINEL)
                    cls = op.__class__
                    while cls is gather or cls is BeginPhase or cls is EndPhase:
                        run_ops.append(op)
                        op = next(it, _SENTINEL)
                        cls = op.__class__
                    if t is Activate:
                        done = memsys.handle_activate_batch(run_ops, self)
                    else:
                        done = memsys.handle_wait_batch(run_ops, self)
                    # Pending service stopped the batch: finish the
                    # rest of the run on the scalar loop.
                    while done < len(run_ops):
                        step(run_ops[done], None, None)
                        poll(self)
                        done += 1
                elif t is FlushRange:
                    if op.nbytes > 0:
                        lo_line = op.addr // line
                        hi_line = (op.addr + op.nbytes - 1) // line
                        self.charge("mem_ns", l1d.flush_range(lo_line, hi_line))
                    op = next(it, _SENTINEL)
                elif t is ServicePending:
                    memsys.handle_service(self)
                    op = next(it, _SENTINEL)
                else:
                    step(op, None, None)  # unknown op: raises, like scalar
                    op = next(it, _SENTINEL)
                if needs_poll:
                    # One poll per op, like the scalar loop; polls in
                    # excess of that are provably no-ops (the queue
                    # head cannot have become due without the clock
                    # moving).  Stay scalar while service is pending.
                    poll(self)
                    while op is not _SENTINEL and pending():
                        step(op, None, None)
                        poll(self)
                        op = next(it, _SENTINEL)
                continue
            # Common memory-op tail: empty footprints charge exactly
            # 0.0 in the scalar loop, so dropping them is identical.
            m = len(arr)
            if m:
                tags.append(_ENT_MEM)
                vals.append(len(arrays))
                arrays.append(arr)
                writes.append(w)
                n_lines += m
                if n_lines >= _SEGMENT_MAX_LINES:
                    flush(tags, vals, arrays, writes, n_lines)
                    tags = []
                    vals = []
                    arrays = []
                    writes = []
                    n_lines = 0
            op = next(it, _SENTINEL)
        if tags:
            flush(tags, vals, arrays, writes, n_lines)

    def _flush_segment(
        self, tags: list, vals: list, arrays: list, writes: list, n_lines: int
    ) -> None:
        """Resolve one fused segment and replay its charges in order.

        Memory latencies come from one wide cache batch; each op's
        total is folded left-to-right over its slice of the per-line
        latency array — the same association order as the scalar
        loop's per-op accumulation, hence bit-identical.  Clock and
        stats updates are then applied sequentially per entry (float
        addition is not associative, so they cannot be collapsed).
        """
        if not tags:
            return
        l1d = self.l1d
        if len(arrays) > 1 and n_lines > l1d._SMALL_BATCH:
            lat = l1d.access_lines_batch(arrays, writes).tolist()
            mem_totals = []
            pos = 0
            for arr in arrays:
                end = pos + len(arr)
                mem_totals.append(sum(lat[pos:end]))
                pos = end
        else:
            access = l1d.access_lines
            mem_totals = [access(arr, w) for arr, w in zip(arrays, writes)]
        stats = self.stats
        d = stats.__dict__
        stack = stats._phase_stack
        phase_ns = stats.phase_ns
        begin_phase = stats.begin_phase
        end_phase = stats.end_phase
        get = phase_ns.get
        now = self.now
        for tag, val in zip(tags, vals):
            if tag == _ENT_COMPUTE:
                d["compute_ns"] += val
            elif tag == _ENT_MEM:
                val = mem_totals[val]
                d["mem_ns"] += val
            elif tag == _ENT_BEGIN:
                begin_phase(val)
                continue
            else:
                end_phase(val)
                continue
            now += val
            if stack:
                p = stack[-1]
                phase_ns[p] = get(p, 0.0) + val
        self.now = now
