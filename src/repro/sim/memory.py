"""Functional paged memory.

Both memory systems (conventional and RADram) share one byte-level
backing store so that the two versions of every application can be
checked for identical results.  Memory is organized in *superpages*
(512 KB in the paper's reference RADram; configurable so tests can use
small pages while exercising the same code paths).

Allocation is a simple page-aligned bump allocator over a virtual
address space.  Each allocation is backed by a single contiguous numpy
buffer, so typed views can span page boundaries (conventional code sees
a flat array) while individual page slices are cheap numpy views (the
per-page data an Active-Page function operates on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.sim.errors import AddressError

DEFAULT_PAGE_BYTES = 512 * 1024
_BASE_VADDR = 0x1000_0000


@dataclass
class Region:
    """A page-aligned allocation in the virtual address space."""

    base: int
    nbytes: int
    buffer: np.ndarray  # uint8, length rounded up to whole pages
    name: str = ""

    @property
    def end(self) -> int:
        """One past the last *allocated* byte (page-rounded)."""
        return self.base + len(self.buffer)

    def view(self, dtype: np.dtype, offset: int = 0, count: int = -1) -> np.ndarray:
        """A typed numpy view starting ``offset`` bytes into the region."""
        dt = np.dtype(dtype)
        if count < 0:
            count = (self.nbytes - offset) // dt.itemsize
        stop = offset + count * dt.itemsize
        if offset < 0 or stop > len(self.buffer):
            raise AddressError(
                f"view [{offset}, {stop}) outside region of {len(self.buffer)} bytes"
            )
        return self.buffer[offset:stop].view(dt)

    def addr(self, offset: int) -> int:
        """Virtual address of byte ``offset`` within the region."""
        return self.base + offset


class PagedMemory:
    """Virtual address space of superpages backed by numpy buffers."""

    def __init__(self, page_bytes: int = DEFAULT_PAGE_BYTES) -> None:
        if page_bytes <= 0:
            raise AddressError("page size must be positive")
        self.page_bytes = page_bytes
        self._next_vaddr = _BASE_VADDR
        self._regions: Dict[int, Region] = {}  # base -> region
        self._page_to_region: Dict[int, Region] = {}  # global page no -> region

    # ------------------------------------------------------------------
    # Allocation

    def alloc(self, nbytes: int, name: str = "") -> Region:
        """Allocate ``nbytes`` (rounded up to whole pages)."""
        if nbytes <= 0:
            raise AddressError("allocation size must be positive")
        pages = -(-nbytes // self.page_bytes)
        rounded = pages * self.page_bytes
        base = self._next_vaddr
        self._next_vaddr += rounded
        region = Region(
            base=base,
            nbytes=nbytes,
            buffer=np.zeros(rounded, dtype=np.uint8),
            name=name,
        )
        self._regions[base] = region
        first_page = base // self.page_bytes
        for p in range(first_page, first_page + pages):
            self._page_to_region[p] = region
        return region

    def alloc_pages(self, n_pages: int, name: str = "") -> Region:
        """Allocate exactly ``n_pages`` superpages."""
        return self.alloc(n_pages * self.page_bytes, name=name)

    def free(self, region: Region) -> None:
        """Release a region (address space is not recycled)."""
        self._regions.pop(region.base, None)
        first_page = region.base // self.page_bytes
        pages = len(region.buffer) // self.page_bytes
        for p in range(first_page, first_page + pages):
            self._page_to_region.pop(p, None)

    # ------------------------------------------------------------------
    # Addressing

    def region_of(self, vaddr: int) -> Region:
        """The region containing ``vaddr``."""
        page = vaddr // self.page_bytes
        region = self._page_to_region.get(page)
        if region is None or not (region.base <= vaddr < region.end):
            raise AddressError(f"address {vaddr:#x} is not mapped")
        return region

    def page_index(self, vaddr: int) -> int:
        """Global superpage number of ``vaddr`` (checks that it is mapped)."""
        self.region_of(vaddr)
        return vaddr // self.page_bytes

    def pages_of(self, region: Region) -> range:
        """The global page numbers spanned by ``region``."""
        first = region.base // self.page_bytes
        return range(first, first + len(region.buffer) // self.page_bytes)

    def page_view(self, page_no: int, dtype: np.dtype = np.uint8) -> np.ndarray:
        """A typed view of one whole superpage."""
        region = self._page_to_region.get(page_no)
        if region is None:
            raise AddressError(f"page {page_no} is not mapped")
        start = page_no * self.page_bytes - region.base
        raw = region.buffer[start : start + self.page_bytes]
        return raw.view(np.dtype(dtype))

    # ------------------------------------------------------------------
    # Byte access

    def read(self, vaddr: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` starting at ``vaddr`` (within one region)."""
        region = self.region_of(vaddr)
        off = vaddr - region.base
        if off + nbytes > len(region.buffer):
            raise AddressError("read crosses the end of its region")
        return region.buffer[off : off + nbytes].copy()

    def write(self, vaddr: int, data: np.ndarray) -> None:
        """Write raw bytes at ``vaddr`` (within one region)."""
        raw = np.asarray(data, dtype=np.uint8).ravel()
        region = self.region_of(vaddr)
        off = vaddr - region.base
        if off + len(raw) > len(region.buffer):
            raise AddressError("write crosses the end of its region")
        region.buffer[off : off + len(raw)] = raw

    def copy(self, src_vaddr: int, dst_vaddr: int, nbytes: int) -> None:
        """Memory-to-memory copy (used by processor-mediated transfers)."""
        self.write(dst_vaddr, self.read(src_vaddr, nbytes))
