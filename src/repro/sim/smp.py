"""Symmetric multiprocessor support (paper Section 2).

"Active Page implementations are intended to function in any system
that uses a conventional memory system.  For example, pages may
coordinate with multiple processors in a Symmetric Multiprocessor,
using Active-Page synchronization variables to enforce atomicity."

:class:`SMPMachine` co-simulates N in-order processors over a shared
L2, bus, DRAM and (optionally) a RADram memory system.  Each processor
consumes its own operation stream; the machine always advances the
processor with the smallest local clock, so the interleaving is
deterministic and globally time-ordered.  Two SMP-specific operations:

* :class:`Barrier` — all processors rendezvous; waiting time is
  charged as stall.
* :class:`AtomicRMW` — an atomic read-modify-write on a (sync)
  variable: the functional effect happens on the shared memory in
  global time order, and the access pays an uncached DRAM round trip,
  which is what makes the paper's "memory accesses ... are atomic"
  coordination safe across CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.check import runtime as _check
from repro.sim import ops as O
from repro.sim.bus import Bus
from repro.sim.cache import Cache, build_hierarchy
from repro.sim.config import MachineConfig
from repro.sim.dram import DRAM
from repro.sim.errors import OperationError
from repro.sim.machine import ConventionalMemorySystem
from repro.sim.memory import PagedMemory
from repro.sim.processor import MemorySystemBase, Processor
from repro.sim.stats import MachineStats
from repro.trace import events as _trace


@dataclass(frozen=True)
class Barrier:
    """All processors rendezvous at ``barrier_id``."""

    barrier_id: int


@dataclass(frozen=True)
class AtomicRMW:
    """Atomic read-modify-write of a 32-bit word.

    ``kind``: ``"tas"`` (test-and-set to 1, result is the old value),
    ``"add"`` (fetch-and-add ``operand``), ``"xchg"`` (swap in
    ``operand``).  The result of the most recent RMW per processor is
    readable from :attr:`SMPMachine.rmw_results`.
    """

    vaddr: int
    kind: str = "tas"
    operand: int = 0


class SMPMachine:
    """N processors sharing one memory system."""

    def __init__(
        self,
        n_cpus: int,
        config: Optional[MachineConfig] = None,
        memory: Optional[PagedMemory] = None,
        memsys: Optional[MemorySystemBase] = None,
    ) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one processor")
        self.config = config or MachineConfig.reference()
        self.memory = memory if memory is not None else PagedMemory()
        self.bus = Bus(self.config.bus)
        self.dram = DRAM(self.config.dram, self.bus)
        # Shared L2; private L1 per CPU.
        _, _, self.l2 = build_hierarchy(
            self.config.l1d, self.config.l2, self.dram, l1i_cfg=None
        )
        self.memsys = memsys if memsys is not None else ConventionalMemorySystem()
        attach = getattr(self.memsys, "attach", None)
        if attach is not None:
            attach(self)
        self.processors: List[Processor] = []
        for _ in range(n_cpus):
            l1d = Cache("L1D", self.config.l1d, next_level=self.l2)
            self.processors.append(Processor(self.config, l1d, self.memsys))
        #: last AtomicRMW result per CPU index.
        self.rmw_results: Dict[int, int] = {}
        #: last AtomicRMW issued per CPU: ``cpu -> (vaddr, kind)`` —
        #: the sync address a deadlocked waiter most recently spun on.
        self._last_sync: Dict[int, Tuple[int, str]] = {}

    @property
    def n_cpus(self) -> int:
        return len(self.processors)

    # ------------------------------------------------------------------

    def run(self, streams: List[Iterable[O.Op]]) -> List[MachineStats]:
        """Co-simulate one op stream per processor to completion."""
        if len(streams) != self.n_cpus:
            raise ValueError(
                f"{self.n_cpus} processors need {self.n_cpus} streams"
            )
        iterators: List[Optional[Iterator[O.Op]]] = [iter(s) for s in streams]
        at_barrier: Dict[int, Dict[int, bool]] = {}

        def runnable() -> List[int]:
            return [
                i
                for i, it in enumerate(iterators)
                if it is not None and not _waiting(i)
            ]

        def _waiting(cpu: int) -> bool:
            return any(cpu in members for members in at_barrier.values())

        # Instrumentation guards bound once per co-simulation (the
        # contexts that set them wrap the whole run); each processor's
        # tracer binding serves its charge() calls too.
        ck = _check.CHECKER
        tr = _trace.TRACER
        for proc in self.processors:
            self.memsys.on_run_begin(proc)
            proc._tr = tr
        while True:
            ready = runnable()
            if not ready:
                if any(it is not None for it in iterators):
                    message = self._deadlock_diagnosis(iterators, at_barrier)
                    ck = _check.CHECKER
                    if ck is not None:
                        ck.on_smp_deadlock(message, self.makespan_ns)
                    raise OperationError(message)
                break
            cpu = min(ready, key=lambda i: self.processors[i].now)
            proc = self.processors[cpu]
            try:
                op = next(iterators[cpu])
            except StopIteration:
                iterators[cpu] = None
                continue
            if isinstance(op, Barrier):
                members = at_barrier.setdefault(op.barrier_id, {})
                members[cpu] = True
                if len(members) == self.n_cpus:
                    release = max(self.processors[i].now for i in members)
                    for i in members:
                        self.processors[i].stall_until(release)
                    del at_barrier[op.barrier_id]
            elif isinstance(op, AtomicRMW):
                self._atomic_rmw(cpu, op)
            else:
                proc._step(op, ck, tr)
            if self.memsys.needs_poll:
                self.memsys.poll(proc)
        for proc in self.processors:
            self.memsys.on_run_end(proc)
            proc.stats.total_ns = proc.now
        return [p.stats for p in self.processors]

    # ------------------------------------------------------------------

    def _deadlock_diagnosis(
        self,
        iterators: List[Optional[Iterator[O.Op]]],
        at_barrier: Dict[int, Dict[int, bool]],
    ) -> str:
        """Name every waiter: who blocks where, on what, since when.

        Only barriers can park a processor, so a global deadlock means
        every live CPU sits at some barrier whose membership will never
        complete (typically because a missing member's stream already
        ended, or two groups wait at different barriers).
        """
        lines = ["deadlock: every live processor waits"]
        all_cpus = set(range(self.n_cpus))
        for barrier_id, members in sorted(at_barrier.items()):
            missing = sorted(all_cpus - set(members))
            finished = [i for i in missing if iterators[i] is None]
            for cpu in sorted(members):
                proc = self.processors[cpu]
                last = self._last_sync.get(cpu)
                spin = (
                    f", last sync access {last[1]} @ 0x{last[0]:x}"
                    if last is not None
                    else ""
                )
                lines.append(
                    f"  cpu {cpu}: blocked at Barrier({barrier_id}) "
                    f"since {proc.now:.1f} ns{spin}"
                )
            detail = f"    barrier {barrier_id} still missing cpus {missing}"
            if finished:
                detail += f" (cpus {finished} already finished their streams)"
            lines.append(detail)
        return "\n".join(lines)

    def _atomic_rmw(self, cpu: int, op: AtomicRMW) -> None:
        proc = self.processors[cpu]
        # Uncached read + write round trip, serialized by global-time
        # scheduling (this processor holds the minimum clock).
        latency = self.dram.uncached_read(4) + self.dram.uncached_write(4)
        proc.charge("mem_ns", latency)
        word = self.memory.read(op.vaddr, 4).view(np.uint32)
        old = int(word[0])
        if op.kind == "tas":
            new = 1
        elif op.kind == "add":
            new = (old + op.operand) & 0xFFFFFFFF
        elif op.kind == "xchg":
            new = op.operand & 0xFFFFFFFF
        else:
            raise OperationError(f"unknown atomic kind {op.kind!r}")
        self.memory.write(op.vaddr, np.array([new], dtype=np.uint32).view(np.uint8))
        self.rmw_results[cpu] = old
        self._last_sync[cpu] = (op.vaddr, op.kind)

    @property
    def makespan_ns(self) -> float:
        return max(p.now for p in self.processors)
