"""Machine configuration — the paper's Table 1 parameters.

All timing in the simulator is expressed in nanoseconds.  The reference
machine runs a 1 GHz processor (1 cycle = 1 ns), 64 KB split L1 caches,
a 1 MB L2, a 50 ns cache-miss penalty, and a memory bus that moves
32 bits every 10 ns.

Table 1 of the paper:

==============  =========  ============
Parameter       Reference  Variation
==============  =========  ============
CPU Clock       1 GHz      --
L1 I-Cache      64K        --
L1 D-Cache      64K        32K-256K
L2 Cache        1M         256K-4M
Reconf Logic    100 MHz    10-500 MHz
Cache Miss      50 ns      0-600 ns
==============  =========  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.errors import ConfigError

KB = 1024
MB = 1024 * KB


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CPUConfig:
    """In-order processor timing parameters.

    ``clock_hz`` is the core clock; compute operations retire at
    ``issue_width`` operations per cycle.
    """

    clock_hz: float = 1e9
    issue_width: int = 1

    def __post_init__(self) -> None:
        _require(self.clock_hz > 0, "CPU clock must be positive")
        _require(self.issue_width >= 1, "issue width must be >= 1")

    @property
    def cycle_ns(self) -> float:
        """Duration of one CPU cycle in nanoseconds."""
        return 1e9 / self.clock_hz

    def compute_ns(self, ops: float) -> float:
        """Time to retire ``ops`` compute operations."""
        return (ops / self.issue_width) * self.cycle_ns


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 32
    hit_ns: float = 1.0

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.assoc >= 1, "associativity must be >= 1")
        _require(self.line_bytes > 0, "line size must be positive")
        _require(
            self.size_bytes % (self.assoc * self.line_bytes) == 0,
            "cache size must be a multiple of assoc * line size",
        )
        _require(self.hit_ns >= 0, "hit latency cannot be negative")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class BusConfig:
    """The processor-memory bus: 32 bits of data every 10 ns."""

    bytes_per_transfer: int = 4
    ns_per_transfer: float = 10.0

    def __post_init__(self) -> None:
        _require(self.bytes_per_transfer > 0, "bus width must be positive")
        _require(self.ns_per_transfer > 0, "bus cycle must be positive")

    def transfer_ns(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across the bus (whole transfers)."""
        if nbytes <= 0:
            return 0.0
        transfers = -(-nbytes // self.bytes_per_transfer)
        return transfers * self.ns_per_transfer


@dataclass(frozen=True)
class DRAMConfig:
    """Conventional DRAM access timing.

    ``miss_latency_ns`` is the paper's "cache miss" parameter: the
    latency from the L2 miss to the first data word returning.
    """

    miss_latency_ns: float = 50.0

    def __post_init__(self) -> None:
        _require(self.miss_latency_ns >= 0, "miss latency cannot be negative")


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description (paper Table 1 reference values)."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * KB, assoc=2, hit_ns=1.0)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * KB, assoc=2, hit_ns=1.0)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=1 * MB, assoc=4, hit_ns=6.0)
    )
    bus: BusConfig = field(default_factory=BusConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    @classmethod
    def reference(cls) -> "MachineConfig":
        """The reference configuration of Table 1."""
        return cls()

    def with_l1d_size(self, size_bytes: int) -> "MachineConfig":
        """Vary the L1 D-cache size (Figure 5 sweep)."""
        return replace(self, l1d=replace(self.l1d, size_bytes=size_bytes))

    def with_l2_size(self, size_bytes: int) -> "MachineConfig":
        """Vary the L2 cache size (Section 7.3 sweep)."""
        return replace(self, l2=replace(self.l2, size_bytes=size_bytes))

    def with_miss_latency(self, latency_ns: float) -> "MachineConfig":
        """Vary the cache-miss penalty (Figure 8 sweep)."""
        return replace(self, dram=replace(self.dram, miss_latency_ns=latency_ns))
