"""The processor-memory bus.

The paper assumes "a memory bus capable of transferring 32 bits of data
between memory and cache every 10 ns".  The bus accounts occupancy so
experiments can observe how much traffic each system generates — a key
Active Pages claim is that only *useful* data crosses the bus.
"""

from __future__ import annotations

from repro.sim.config import BusConfig
from repro.trace import events as _trace


class Bus:
    """Occupancy-accounting wrapper over :class:`BusConfig` timing."""

    def __init__(self, config: BusConfig) -> None:
        self.config = config
        self.bytes_transferred: int = 0
        self.busy_ns: float = 0.0
        self.transfers: int = 0

    def _trace_counters(self, tr) -> None:
        ts = tr.now
        tr.counter("bus", "bytes", ts, self.bytes_transferred)
        tr.counter("bus", "busy_ns", ts, self.busy_ns)

    def transfer(self, nbytes: int) -> float:
        """Account a transfer of ``nbytes``; returns its duration in ns."""
        if nbytes <= 0:
            return 0.0
        duration = self.config.transfer_ns(nbytes)
        self.bytes_transferred += nbytes
        self.busy_ns += duration
        self.transfers += 1
        tr = _trace.TRACER
        if tr is not None:
            self._trace_counters(tr)
        return duration

    def transfer_batch(self, count: int, nbytes_each: int) -> float:
        """Account ``count`` equal transfers; returns the per-transfer ns.

        Equivalent to calling :meth:`transfer` ``count`` times (the
        occupancy accumulator may differ in the last float ulps from the
        sequential sum, which is the only tolerated deviation).
        """
        if count <= 0 or nbytes_each <= 0:
            return 0.0
        duration = self.config.transfer_ns(nbytes_each)
        self.bytes_transferred += nbytes_each * count
        self.busy_ns += duration * count
        self.transfers += count
        tr = _trace.TRACER
        if tr is not None:
            self._trace_counters(tr)
        return duration

    def reset(self) -> None:
        """Clear accumulated statistics."""
        self.bytes_transferred = 0
        self.busy_ns = 0.0
        self.transfers = 0
