"""Exception types raised by the simulator substrate."""


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ConfigError(SimulationError):
    """A machine configuration parameter is invalid."""


class AddressError(SimulationError):
    """A virtual address is outside any allocated region."""


class OperationError(SimulationError):
    """An operation stream contained an op the memory system cannot run."""
