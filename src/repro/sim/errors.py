"""Exception types raised by the simulator substrate."""


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ConfigError(SimulationError):
    """A machine configuration parameter is invalid."""


class AddressError(SimulationError):
    """A virtual address is outside any allocated region."""


class OperationError(SimulationError):
    """An operation stream contained an op the memory system cannot run."""


class FaultError(SimulationError):
    """An injected hardware fault the tolerance mechanisms handled.

    Raised by the fault subsystem when a fault exceeds a page's repair
    budget; the RADram memory system catches it and degrades that page
    to processor-only execution (graceful degradation).
    """


class UncorrectableFaultError(FaultError):
    """A memory fault beyond ECC's correction capability."""
