"""The operation vocabulary application kernels are written in.

An application kernel is a Python iterable that yields operations; the
processor model consumes them in order, charging time through the cache
hierarchy, bus and DRAM.  This replaces SimpleScalar's instruction-level
simulation (see DESIGN.md section 4): ``Compute`` ops stand for retired
ALU/branch/FPU instructions, memory ops carry the exact address
footprint the compiled kernel would touch, and the Active-Page ops
(``Activate``/``WaitPage``/...) are the memory-mapped interface of the
paper's Section 2.

Bulk memory ops are expanded to cache-line address sequences, so a
megabyte stream costs one cache lookup per distinct line touched rather
than per byte — identical hit/miss behaviour, tractable in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence, Union

import numpy as np

# ----------------------------------------------------------------------
# Processor-local operations


@dataclass(frozen=True)
class Compute:
    """Retire ``ops`` compute instructions (ALU, branch, FP)."""

    ops: float


@dataclass(frozen=True)
class MemRead:
    """Sequential read of ``nbytes`` starting at ``addr``."""

    addr: int
    nbytes: int


@dataclass(frozen=True)
class MemWrite:
    """Sequential write of ``nbytes`` starting at ``addr``."""

    addr: int
    nbytes: int


@dataclass(frozen=True)
class StridedRead:
    """``count`` reads of ``elem_bytes`` each, ``stride_bytes`` apart."""

    addr: int
    count: int
    stride_bytes: int
    elem_bytes: int = 4


@dataclass(frozen=True)
class StridedWrite:
    """``count`` writes of ``elem_bytes`` each, ``stride_bytes`` apart."""

    addr: int
    count: int
    stride_bytes: int
    elem_bytes: int = 4


@dataclass(frozen=True)
class GatherRead:
    """Reads of ``elem_bytes`` at each address in ``addrs``."""

    addrs: Sequence[int]
    elem_bytes: int = 4


@dataclass(frozen=True)
class ScatterWrite:
    """Writes of ``elem_bytes`` at each address in ``addrs``."""

    addrs: Sequence[int]
    elem_bytes: int = 4


@dataclass(frozen=True)
class FlushRange:
    """Write back (and drop) cached lines covering ``[addr, addr+nbytes)``.

    Models the explicit flush the paper's coherence discussion (Section
    4) requires before dispatching a page whose data the processor has
    written through the cache: dirty lines are written back to memory
    (charged as memory time), clean copies are invalidated.
    """

    addr: int
    nbytes: int


# ----------------------------------------------------------------------
# Active-Page operations (handled by the memory system)


@dataclass(frozen=True)
class Activate:
    """Dispatch work to the Active Page holding ``page_no``.

    ``descriptor_words`` 32-bit parameter words are written through the
    bus (memory-mapped, uncached).  ``task`` describes the page-side
    execution (a :class:`repro.radram.subarray.PageTask`); it is opaque
    to the processor model.
    """

    page_no: int
    descriptor_words: int
    task: object


@dataclass(frozen=True)
class WaitPage:
    """Poll the page's synchronization variable until it completes.

    Time spent here is processor-memory *non-overlap* (Section 7.2).
    """

    page_no: int


@dataclass(frozen=True)
class ServicePending:
    """Service any pending inter-page interrupt requests now.

    Applications with inter-page communication insert these at natural
    polling points; the memory system also forces service when the
    processor stalls in :class:`WaitPage` on a blocked page.
    """


@dataclass(frozen=True)
class BeginPhase:
    """Open a named accounting phase (e.g. ``"activation"``)."""

    name: str


@dataclass(frozen=True)
class EndPhase:
    """Close the innermost accounting phase ``name``."""

    name: str


Op = Union[
    Compute,
    MemRead,
    MemWrite,
    StridedRead,
    StridedWrite,
    GatherRead,
    ScatterWrite,
    FlushRange,
    Activate,
    WaitPage,
    ServicePending,
    BeginPhase,
    EndPhase,
]

OpStream = Iterator[Op]

# ----------------------------------------------------------------------
# Line-address expansion


_EMPTY_LINES = np.empty(0, dtype=np.int64)
_EMPTY_LINES.setflags(write=False)


@lru_cache(maxsize=4096)
def _block_lines_cached(first: int, last: int) -> np.ndarray:
    """Read-only line array [first, last] — kernels re-touch the same
    blocks every sweep point, so expansions are memoized."""
    lines = np.arange(first, last + 1, dtype=np.int64)
    lines.setflags(write=False)
    return lines


def lines_for_block(addr: int, nbytes: int, line_bytes: int) -> np.ndarray:
    """Cache lines touched by a sequential block access.

    Returns a read-only int64 array (memoized per distinct
    ``(first, last)`` pair — do not mutate).
    """
    if nbytes <= 0:
        return _EMPTY_LINES
    first = addr // line_bytes
    last = (addr + nbytes - 1) // line_bytes
    return _block_lines_cached(first, last)


def lines_for_stride(
    addr: int, count: int, stride_bytes: int, elem_bytes: int, line_bytes: int
) -> np.ndarray:
    """Cache lines touched by a strided access, in access order.

    Consecutive duplicate lines are collapsed (they would hit anyway),
    preserving order so LRU behaviour is exact.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    starts = addr + np.arange(count, dtype=np.int64) * stride_bytes
    if elem_bytes > line_bytes:
        # Each element spans several lines: expand every [first, last]
        # line interval with one segmented arange (no per-element loop).
        first = starts // line_bytes
        last = (starts + elem_bytes - 1) // line_bytes
        counts = last - first + 1
        total = int(counts.sum())
        seg_starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
        lines = np.repeat(first, counts) + offsets
    else:
        first = starts // line_bytes
        last = (starts + elem_bytes - 1) // line_bytes
        if np.array_equal(first, last):
            lines = first
        else:
            lines = np.ravel(np.column_stack([first, last]))
    keep = np.ones(len(lines), dtype=bool)
    keep[1:] = lines[1:] != lines[:-1]
    return lines[keep]


def lines_for_gather(
    addrs: Sequence[int], elem_bytes: int, line_bytes: int
) -> np.ndarray:
    """Cache lines touched by a gather/scatter, in access order."""
    arr = np.asarray(addrs, dtype=np.int64)
    if arr.size == 0:
        return arr
    first = arr // line_bytes
    last = (arr + elem_bytes - 1) // line_bytes
    if np.array_equal(first, last):
        lines = first
    else:
        lines = np.ravel(np.column_stack([first, last]))
    keep = np.ones(len(lines), dtype=bool)
    keep[1:] = lines[1:] != lines[:-1]
    return lines[keep]
