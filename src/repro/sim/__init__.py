"""Machine simulator substrate (SimpleScalar stand-in).

The simulator models time in nanoseconds (floats).  With the reference
1 GHz processor of the paper's Table 1, one CPU cycle is exactly 1 ns,
which keeps cycle arithmetic legible while still supporting clock
variations.

The public surface of this package:

* :class:`repro.sim.config.MachineConfig` — all Table 1 parameters.
* :class:`repro.sim.machine.Machine` — a processor + cache hierarchy +
  memory system, ready to run operation streams.
* :mod:`repro.sim.ops` — the operation vocabulary application kernels
  are written in.
* :class:`repro.sim.memory.PagedMemory` — the functional backing store
  shared by conventional and Active-Page application versions.
"""

from repro.sim.config import (
    BusConfig,
    CacheConfig,
    CPUConfig,
    DRAMConfig,
    MachineConfig,
)
from repro.sim.machine import ConventionalMemorySystem, Machine
from repro.sim.memory import PagedMemory
from repro.sim.stats import MachineStats

__all__ = [
    "BusConfig",
    "CPUConfig",
    "CacheConfig",
    "ConventionalMemorySystem",
    "DRAMConfig",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "PagedMemory",
]
