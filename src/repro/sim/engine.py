"""A minimal discrete-event engine.

The co-simulation of processor and Active Pages mostly advances a single
processor timeline, but page completions, blocked pages, and interrupt
requests are naturally expressed as timestamped events.  The engine is a
plain heap of ``(time, sequence, callback)`` entries; ties are broken by
insertion order so simulations are deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.errors import SimulationError
from repro.check import runtime as _check
from repro.trace import events as _trace

Callback = Callable[[], None]


class Engine:
    """Deterministic discrete-event scheduler over nanosecond time."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq: int = 0
        self._queue: List[Tuple[float, int, Callback]] = []

    def schedule_at(self, when: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when} ns; clock is at {self.now} ns"
            )
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` nanoseconds."""
        self.schedule_at(self.now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or None if the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue was empty."""
        return self._step(_check.CHECKER, _trace.TRACER)

    def _step(self, ck, tr) -> bool:
        """One event, with the instrumentation guards hoisted to
        arguments (the drain loops bind them once, not per event)."""
        if not self._queue:
            return False
        when, seq, callback = heapq.heappop(self._queue)
        self.now = when
        if ck is not None:
            ck.on_engine_event(when)
        if tr is not None:
            tr.now = when
            tr.instant("engine", "dispatch", when, seq=seq, queued=len(self._queue))
        callback()
        return True

    def run_until(self, deadline: float) -> None:
        """Run all events with timestamps <= ``deadline``.

        The queue is re-inspected after every callback, so events
        scheduled *during* the drain — including events a callback
        running at exactly ``deadline`` schedules at ``deadline`` —
        are processed before this call returns, not left for the next
        one.  On return the clock is at ``deadline`` (or later, if it
        already was) and no event at or before ``deadline`` remains.
        """
        ck = _check.CHECKER
        tr = _trace.TRACER
        queue = self._queue
        step = self._step
        while queue and queue[0][0] <= deadline:
            step(ck, tr)
        self.now = max(self.now, deadline)

    def run_until_idle(self) -> None:
        """Run all pending events."""
        ck = _check.CHECKER
        tr = _trace.TRACER
        step = self._step
        while step(ck, tr):
            pass

    def advance(self, delay: float) -> float:
        """Advance the clock without running events; returns the new time."""
        if delay < 0:
            raise SimulationError("cannot advance time backwards")
        self.now += delay
        return self.now
