"""Cycle accounting for simulation runs.

The paper's evaluation needs more than total runtime: Figure 4 plots
the *percent of cycles the processor is stalled* waiting on Active-Page
computation (non-overlap, Section 7.2), and Table 4 needs per-phase
activation (T_A) and post-processing (T_P) times.  ``MachineStats``
therefore buckets time by category and by user-named phase.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

#: Time categories accepted by :meth:`MachineStats.charge`.
CHARGE_CATEGORIES = (
    "total_ns",
    "compute_ns",
    "mem_ns",
    "activation_ns",
    "wait_ns",
    "interrupt_ns",
    "scrub_ns",
    "migration_ns",
)


@dataclass
class MachineStats:
    """Accumulated timing for one simulation run (all times in ns)."""

    total_ns: float = 0.0
    compute_ns: float = 0.0
    mem_ns: float = 0.0
    activation_ns: float = 0.0
    wait_ns: float = 0.0  # processor-memory non-overlap
    interrupt_ns: float = 0.0  # servicing inter-page requests
    scrub_ns: float = 0.0  # ECC correction scrubs (fault tolerance)
    migration_ns: float = 0.0  # defect-driven page migrations
    activations: int = 0
    waits: int = 0
    interrupts: int = 0
    phase_ns: Dict[str, float] = field(default_factory=dict)
    phase_wait_ns: Dict[str, float] = field(default_factory=dict)
    phase_counts: Dict[str, int] = field(default_factory=dict)
    _phase_stack: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Charging

    def charge(self, category: str, ns: float) -> None:
        """Add ``ns`` to ``category`` and to the open phase, if any.

        Raises :class:`ValueError` for unknown category names (the hot
        path stays a plain dict add; validation only runs on failure).
        """
        d = self.__dict__  # hot path: skip attribute-protocol dispatch
        try:
            d[category] += ns
        except (KeyError, TypeError):
            raise ValueError(
                f"unknown stats category {category!r}; expected one of "
                f"{', '.join(CHARGE_CATEGORIES)}"
            ) from None
        if self._phase_stack:
            phase = self._phase_stack[-1]
            self.phase_ns[phase] = self.phase_ns.get(phase, 0.0) + ns
            if category == "wait_ns":
                self.phase_wait_ns[phase] = self.phase_wait_ns.get(phase, 0.0) + ns

    def begin_phase(self, name: str) -> None:
        self._phase_stack.append(name)
        self.phase_counts[name] = self.phase_counts.get(name, 0) + 1
        self.phase_ns.setdefault(name, 0.0)

    def end_phase(self, name: str) -> None:
        if not self._phase_stack or self._phase_stack[-1] != name:
            raise ValueError(f"phase {name!r} is not the innermost open phase")
        self._phase_stack.pop()

    @contextmanager
    def phase(self, name: str) -> Iterator["MachineStats"]:
        """Charge the enclosed block to phase ``name``, exception-safe.

        Unlike a bare ``begin_phase``/``end_phase`` pair, the stack is
        unwound even when the body raises — including any nested phases
        the body opened and never closed — so ``_phase_stack`` can
        never be left unbalanced.
        """
        self.begin_phase(name)
        try:
            yield self
        finally:
            # Unwind to (and including) our own entry; anything above
            # it is a nested phase the body leaked.
            while self._phase_stack:
                if self._phase_stack.pop() == name:
                    break

    # ------------------------------------------------------------------
    # Derived metrics

    @property
    def busy_ns(self) -> float:
        """Time the processor made forward progress."""
        return (
            self.compute_ns
            + self.mem_ns
            + self.activation_ns
            + self.interrupt_ns
            + self.scrub_ns
            + self.migration_ns
        )

    @property
    def stall_fraction(self) -> float:
        """Fraction of total time stalled on Active-Page computation."""
        if self.total_ns <= 0:
            return 0.0
        return self.wait_ns / self.total_ns

    def phase_mean_ns(self, name: str, exclude_wait: bool = False) -> float:
        """Mean time per occurrence of phase ``name`` (0 if never seen).

        ``exclude_wait`` removes stall (non-overlap) time from the
        phase — used when measuring T_P, which by the paper's model is
        processor *work*, separate from NO(i).
        """
        count = self.phase_counts.get(name, 0)
        if count == 0:
            return 0.0
        total = self.phase_ns.get(name, 0.0)
        if exclude_wait:
            total -= self.phase_wait_ns.get(name, 0.0)
        return total / count

    def as_dict(self) -> Dict[str, float]:
        """Flat summary used by the experiment result tables.

        Includes per-phase totals and counts as ``phase.<name>_ns`` /
        ``phase.<name>_count`` keys.
        """
        out = {
            "total_ns": self.total_ns,
            "compute_ns": self.compute_ns,
            "mem_ns": self.mem_ns,
            "activation_ns": self.activation_ns,
            "wait_ns": self.wait_ns,
            "interrupt_ns": self.interrupt_ns,
            "scrub_ns": self.scrub_ns,
            "migration_ns": self.migration_ns,
            "stall_fraction": self.stall_fraction,
            "activations": float(self.activations),
            "interrupts": float(self.interrupts),
        }
        for name in sorted(self.phase_ns):
            out[f"phase.{name}_ns"] = self.phase_ns[name]
            out[f"phase.{name}_count"] = float(self.phase_counts.get(name, 0))
        return out
