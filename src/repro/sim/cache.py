"""Vectorized set-associative, write-back, write-allocate caches (exact LRU).

The hierarchy is built by chaining :class:`Cache` levels; the last
level's misses fall through to :class:`repro.sim.dram.DRAM`.  Accesses
are blocking and in-order — the same conservative model the paper's
conventional memory system uses (latency per miss, no overlap).

Array-resident set layout
-------------------------
Each level keeps fixed-shape numpy state instead of per-set Python
lists:

``_tag``
    ``(n_sets, assoc)`` int64 matrix of resident line tags (-1 = way
    invalid).
``_stamp``
    ``(n_sets, assoc)`` int64 matrix of last-touch timestamps drawn
    from a monotonically increasing access clock.  LRU is *exact*:
    within a set, the victim is always the valid way with the smallest
    stamp, which is precisely the least-recently-touched line.
``_dirty``
    ``(n_sets, assoc)`` bool matrix of write-back state.
``_occ``
    ``(n_sets,)`` occupancy vector (number of valid ways per set).

Batched access contract
-----------------------
:meth:`Cache.access_lines` is the primary entry point: it takes a whole
line-address array (what :mod:`repro.sim.ops` produces for block,
strided and gather accesses) and resolves hits, misses, evictions and
writebacks in vectorized passes:

* **all-hit batches** (warm re-touch runs) update recency stamps and
  dirty bits with pure array ops — no per-line Python;
* **cold distinct streams** (the contiguous ``range`` output of
  ``lines_for_block``, cold strided scans) resolve every victim with
  segmented index arithmetic: with no re-touches, a set's eviction
  order is exactly "pre-state lines in LRU order, then this batch's
  installs in order";
* everything else (mixed hit/miss runs, the interleaved
  demand/writeback streams a lower level receives) falls back to an
  exact per-set scalar walk over numpy-extracted state, with per-set
  all-hit groups still peeled off vectorially.

Misses are *batched* into the next level: one recursive
``access_lines``-style call per level per batch carries the demand
fills and the posted dirty victims in their exact global order, so a
megabyte stream costs a handful of Python calls instead of one per
line.

Exact-LRU equivalence
---------------------
The scalar model retained in :mod:`repro.sim.cache_reference` is the
behavioural oracle.  Every batch path above is decision-equivalent to
replaying the batch through the scalar model one line at a time:

* sets are independent, so per-set resolution order cannot change
  decisions; the *inter-set* order of next-level traffic is preserved
  by keying every spilled access with ``2 * position`` (demand fill)
  or ``2 * position + 1`` (posted victim) and sorting;
* an all-hit batch cannot evict, so pre-state membership decides it;
* in a distinct cold batch no install is ever re-touched, so eviction
  order is the FIFO concatenation used by the segmented fast path;
* per-access latencies are assembled with the same floating-point
  association order as the scalar model (``(hit + fill) + writeback``)
  and summed left-to-right, so total latencies are bit-identical, not
  merely close.

The hypothesis differential suite (``tests/sim/test_cache_vectorized``)
enforces all of this against randomized block/stride/gather mixes.

Adaptive small-batch regime
---------------------------
Below ``_SMALL_BATCH`` lines per call, numpy's per-call overhead
exceeds the actual work, so ``access_lines`` drops into a dict-based
scalar walk instead: each set becomes an ``OrderedDict`` mapping tag to
dirty bit whose iteration order *is* the LRU order (LRU first).  The
dict state is materialized lazily from the matrices on the first
scalar access and flushed back on the next wide batch, so uniform
workloads — an app trace of 16-line block ops, or a microbenchmark of
megabyte scans — pay for at most one conversion each way.  Both
regimes implement the identical state machine; the differential suite
drives them against the scalar reference with mixed batch sizes.
"""

from __future__ import annotations

from collections import OrderedDict

from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.sim.config import CacheConfig
from repro.sim.dram import DRAM
from repro.check import runtime as _check
from repro.trace import events as _trace

#: Batch op kinds: demand read, demand write, posted victim install.
_READ = 0
_WRITE = 1
_INSTALL = 2

_STAMP_MAX = np.iinfo(np.int64).max

_EMPTY_F64 = np.empty(0, dtype=np.float64)


class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    __slots__ = ("hits", "misses", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0


class Cache:
    """One set-associative cache level (vectorized engine).

    ``next_level`` is either another :class:`Cache` or ``None``, in
    which case ``dram`` must be provided and services misses.
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        next_level: Optional["Cache"] = None,
        dram: Optional[DRAM] = None,
    ) -> None:
        if next_level is None and dram is None:
            raise ValueError(f"cache {name!r} needs a next level or DRAM")
        self.name = name
        self.config = config
        self.next_level = next_level
        self.dram = dram
        self.stats = CacheStats()
        n_sets = config.n_sets
        assoc = config.assoc
        self._n_sets = n_sets
        self._assoc = assoc
        self._tag = np.full((n_sets, assoc), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, assoc), dtype=np.int64)
        self._dirty = np.zeros((n_sets, assoc), dtype=bool)
        self._occ = np.zeros(n_sets, dtype=np.int64)
        self._clock = 1  # stamp 0 is reserved for invalid ways
        # Scalar-regime state: per-set OrderedDict(tag -> dirty), LRU
        # first.  None means the matrices are authoritative.
        self._scalar_sets: Optional[List[OrderedDict]] = None

    # ------------------------------------------------------------------
    # Public scalar interface — the small-batch regime

    #: At or below this many lines per call, ``access_lines`` uses the
    #: dict-based scalar walk: numpy's fixed per-call overhead beats
    #: the actual work on narrow batches (app traces issue lots of
    #: 8-32 line block ops).  Class attribute so tests can pin a
    #: regime per instance.
    _SMALL_BATCH = 96

    def _ensure_lists(self) -> None:
        """Materialize the per-set LRU dicts from the matrix state.

        Each set becomes ``OrderedDict(tag -> dirty)`` iterating LRU
        first; dict order replaces stamps entirely in this regime.  The
        matrices go stale until :meth:`_flush_lists` rebuilds them.
        """
        if self._scalar_sets is not None:
            return
        sets = [OrderedDict() for _ in range(self._n_sets)]
        if self._occ.any():
            occupied = np.nonzero(self._occ)[0]
            tag_rows = self._tag[occupied]
            stamp_rows = np.where(tag_rows == -1, _STAMP_MAX, self._stamp[occupied])
            order = np.argsort(stamp_rows, axis=1)
            tags = np.take_along_axis(tag_rows, order, axis=1).tolist()
            dirty = np.take_along_axis(self._dirty[occupied], order, axis=1).tolist()
            occs = self._occ[occupied].tolist()
            for s, trow, drow, k in zip(occupied.tolist(), tags, dirty, occs):
                od = sets[s]
                for t, d in zip(trow[:k], drow[:k]):
                    od[t] = d
        self._scalar_sets = sets

    def _flush_lists(self) -> None:
        """Write the scalar dicts back into the matrices.

        Stamps are renumbered ``1..k`` per set (with the clock bumped
        past them): only the *within-set relative* order is observable
        through LRU decisions, so renumbering preserves behaviour.
        """
        sets = self._scalar_sets
        if sets is None:
            return
        self._scalar_sets = None
        assoc = self._assoc
        self._tag.fill(-1)
        self._stamp.fill(0)
        self._dirty.fill(False)
        idx: List[int] = []
        tags: List[int] = []
        dirt: List[bool] = []
        occ = self._occ
        for s, od in enumerate(sets):
            k = len(od)
            occ[s] = k
            if k:
                base = s * assoc
                i = base
                for t, d in od.items():
                    idx.append(i)
                    tags.append(t)
                    dirt.append(d)
                    i += 1
        if idx:
            ia = np.array(idx, dtype=np.int64)
            self._tag.reshape(-1)[ia] = tags
            self._dirty.reshape(-1)[ia] = dirt
            self._stamp.reshape(-1)[ia] = ia % assoc + 1  # base = s * assoc
        self._clock = assoc + 1

    def line_of(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr // self.config.line_bytes

    def access_line(self, line_addr: int, write: bool) -> float:
        """Access one line; returns latency in ns (includes lower levels)."""
        sets = self._scalar_sets
        if sets is None:
            self._ensure_lists()
            sets = self._scalar_sets
        n_sets = self._n_sets
        s = line_addr % n_sets
        od = sets[s]
        t = line_addr // n_sets
        if t in od:
            self.stats.hits += 1
            od.move_to_end(t)
            if write:
                od[t] = True
            return self.config.hit_ns
        self.stats.misses += 1
        latency = self.config.hit_ns
        if self.next_level is not None:
            latency += self.next_level.access_line(line_addr, write=False)
        else:
            latency += self.dram.read_line(self.config.line_bytes)
        if len(od) >= self._assoc:
            victim_tag, victim_dirty = od.popitem(last=False)  # exact LRU
            if victim_dirty:
                self.stats.writebacks += 1
                latency += self._writeback(victim_tag * n_sets + s)
        od[t] = write
        return latency

    def _writeback(self, victim_line: int) -> float:
        """Post a dirty victim to the level below; returns the posted cost.

        The victim is installed (dirty) in the next level; only the next
        level's hit time (or the DRAM line-write bus time) lands on the
        critical path.
        """
        if self.next_level is not None:
            self.next_level.install_line(victim_line)
            return self.next_level.config.hit_ns
        return self.dram.write_line(self.config.line_bytes)

    def install_line(self, line_addr: int) -> None:
        """Accept a posted dirty victim from the level above.

        Allocates without fetching; never counts as a demand hit/miss.
        Cascaded dirty evictions count in this level's ``writebacks``
        but charge no latency (off the critical path).
        """
        sets = self._scalar_sets
        if sets is None:
            self._ensure_lists()
            sets = self._scalar_sets
        n_sets = self._n_sets
        s = line_addr % n_sets
        od = sets[s]
        t = line_addr // n_sets
        if t in od:
            od.move_to_end(t)
            od[t] = True
            return
        if len(od) >= self._assoc:
            victim_tag, victim_dirty = od.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
                self._writeback(victim_tag * n_sets + s)
        od[t] = True

    # ------------------------------------------------------------------
    # Batched interface

    def access_lines(
        self, line_addrs: Union[range, np.ndarray, Iterable[int]], write: bool
    ) -> float:
        """Access a sequence of lines; returns total latency in ns.

        Accepts the ``range`` / ndarray output of the op-expansion
        helpers (or any iterable of line addresses).  Decisions, stats
        and the returned total are bit-identical to looping
        ``access_line`` over the sequence.
        """
        addrs = _as_line_array(line_addrs)
        n = addrs.shape[0]
        if n == 0:
            return 0.0
        # Sanitizer guard: like tracing below, one module load + None
        # test per *batch* — the stale-sync detector resolves its
        # watches against the batch before residency changes.
        ck = _check.CHECKER
        if ck is not None:
            ck.on_cache_batch(self, addrs, write)
        # Tracing guard: one module load + None test per *batch*, never
        # per line — the disabled cost on this hot path is what the
        # benchmarks/test_sim_hotpath.py 5% overhead gate enforces.
        tr = _trace.TRACER
        if tr is not None:
            h0, m0, w0 = self.stats.hits, self.stats.misses, self.stats.writebacks
        if n <= self._SMALL_BATCH:
            # Narrow batch: the dict-based scalar walk beats numpy's
            # fixed per-call overhead.  Left-to-right accumulation
            # matches the batched total bit-for-bit.
            total = 0.0
            access = self.access_line
            for a in addrs.tolist():
                total += access(a, write)
        else:
            kinds = np.full(n, _WRITE if write else _READ, dtype=np.int8)
            lat = self._process(addrs, kinds)
            # Left-to-right accumulation: bit-identical to the scalar
            # ``total += access_line(...)`` loop (cumsum is sequential).
            total = float(lat.cumsum()[-1])
        if tr is not None:
            self._trace_batch(tr, n, write, total, h0, m0, w0)
        return total

    def access_lines_batch(
        self,
        line_arrays: List[Union[range, np.ndarray, Iterable[int]]],
        write_flags: List[bool],
    ) -> np.ndarray:
        """Resolve several ops' line sequences in one fused pass.

        Returns the **per-line** latency array in global order; the
        caller folds each op's slice left-to-right, which reproduces
        separate :meth:`access_lines` totals bit-identically (the
        scalar accumulation and ``cumsum`` share the same association
        order).  Instrumentation hooks (tracer / sanitizer batch
        events) are *not* consulted — the batched executor only calls
        this while both are disabled; instrumented runs take the
        scalar oracle path instead.
        """
        parts = [_as_line_array(a) for a in line_arrays]
        addrs = np.concatenate(parts)
        kinds = np.repeat(
            np.array(
                [(_WRITE if w else _READ) for w in write_flags], dtype=np.int8
            ),
            [p.shape[0] for p in parts],
        )
        return self._process(addrs, kinds)

    def _trace_batch(
        self, tr, n: int, write: bool, total: float, h0: int, m0: int, w0: int
    ) -> None:
        """Emit one batch's events (only ever called while tracing)."""
        stats = self.stats
        track = f"cache.{self.name}"
        ts = tr.now
        tr.instant(
            track,
            "batch",
            ts,
            lines=n,
            write=write,
            latency_ns=total,
            hits=stats.hits - h0,
            misses=stats.misses - m0,
        )
        tr.counter(track, "hits", ts, stats.hits)
        tr.counter(track, "misses", ts, stats.misses)
        if stats.writebacks != w0:
            tr.counter(track, "writebacks", ts, stats.writebacks)

    # ------------------------------------------------------------------
    # Batch resolution core

    def _process(self, addrs: np.ndarray, kinds: np.ndarray) -> np.ndarray:
        """Resolve one batch; returns per-op latencies (installs are 0).

        ``addrs``/``kinds`` describe demand reads/writes plus posted
        victim installs spilled by the level above, in exact global
        order.
        """
        n = addrs.shape[0]
        if n == 0:
            return _EMPTY_F64
        if self._scalar_sets is not None:
            self._flush_lists()  # leave the small-batch regime
        n_sets = self._n_sets
        tag, set_idx = np.divmod(addrs, n_sets)

        match = self._tag[set_idx] == tag[:, None]  # (n, assoc)
        hit = match.any(axis=1)
        demand = kinds != _INSTALL

        if hit.all():
            return self._apply_all_hits(addrs, set_idx, kinds, match, demand)

        if demand.all() and not hit.any() and _all_distinct(addrs):
            return self._apply_cold_distinct(addrs, set_idx, tag, kinds)

        return self._apply_general(addrs, set_idx, tag, kinds, hit, match)

    # -- fast path 1: every op hits in the pre-state -------------------

    def _apply_all_hits(
        self,
        addrs: np.ndarray,
        set_idx: np.ndarray,
        kinds: np.ndarray,
        match: np.ndarray,
        demand: np.ndarray,
    ) -> np.ndarray:
        """Hits never evict, so pre-state membership is the decision."""
        n = addrs.shape[0]
        way = np.argmax(match, axis=1)
        flat = set_idx * self._assoc + way
        stamps = self._clock + np.arange(n, dtype=np.int64)
        if _all_distinct(addrs):
            # No re-touches: every position is its own last occurrence.
            self._stamp.reshape(-1)[flat] = stamps
        else:
            # Final stamp of a re-touched way = its *last* touch position.
            last = _last_occurrence_positions(flat)
            self._stamp.reshape(-1)[flat[last]] = stamps[last]
        self._clock += n
        wmask = kinds != _READ  # writes and installs both dirty the line
        if wmask.any():
            self._dirty.reshape(-1)[flat[wmask]] = True
        n_demand = int(demand.sum())
        self.stats.hits += n_demand
        if n_demand == n:
            return np.full(n, self.config.hit_ns)
        return np.where(demand, self.config.hit_ns, 0.0)

    # -- fast path 2: cold distinct demand stream ----------------------

    def _apply_cold_distinct(
        self,
        addrs: np.ndarray,
        set_idx: np.ndarray,
        tag: np.ndarray,
        kinds: np.ndarray,
    ) -> np.ndarray:
        """All ops miss and no line is touched twice.

        Within a set nothing is ever re-touched, so recency order is
        simply "pre-state lines in LRU order, then installs in batch
        order" — the victim of the ``j``-th install is element
        ``occ0 + j - assoc`` of that virtual sequence.  Everything
        (victims, dirty flags, post-state) reduces to segmented index
        arithmetic.
        """
        n = addrs.shape[0]
        assoc = self._assoc
        n_sets = self._n_sets

        order = np.argsort(set_idx, kind="stable")
        s_sorted = set_idx[order]
        tag_sorted = tag[order]
        w_sorted = (kinds == _WRITE)[order]

        start, counts, uniq = _group_sorted(s_sorted)
        m = uniq.shape[0]
        group_of = np.repeat(np.arange(m), counts)
        j = np.arange(n, dtype=np.int64) - np.repeat(start, counts)

        occ0 = self._occ[uniq]
        occ0_g = occ0[group_of]
        v = occ0_g + j - assoc  # index into the virtual eviction queue
        evict = v >= 0

        # Pre-state content of the affected sets, LRU order first.
        tag_rows = self._tag[uniq]
        stamp_rows = np.where(tag_rows == -1, _STAMP_MAX, self._stamp[uniq])
        lru = np.argsort(stamp_rows, axis=1)
        pre_tags = np.take_along_axis(tag_rows, lru, axis=1)
        pre_dirty = np.take_along_axis(self._dirty[uniq], lru, axis=1)

        victim_tag = np.zeros(n, dtype=np.int64)
        victim_dirty = np.zeros(n, dtype=bool)
        from_pre = evict & (v < occ0_g)
        if from_pre.any():
            g = group_of[from_pre]
            victim_tag[from_pre] = pre_tags[g, v[from_pre]]
            victim_dirty[from_pre] = pre_dirty[g, v[from_pre]]
        from_new = evict & (v >= occ0_g)
        if from_new.any():
            src = (np.repeat(start, counts) + j - assoc)[from_new]
            victim_tag[from_new] = tag_sorted[src]
            victim_dirty[from_new] = w_sorted[src]

        wb = victim_dirty  # dirty victim evicted at this (sorted) op
        n_wb = int(wb.sum())
        self.stats.misses += n
        self.stats.writebacks += n_wb

        # Post-state: the last min(assoc, occ0+k) entries of the
        # virtual sequence survive, in order (LRU .. MRU).
        k = counts
        occ_final = np.minimum(assoc, occ0 + k)
        first_vi = occ0 + k - occ_final
        grid_valid = np.arange(assoc)[None, :] < occ_final[:, None]
        rows, cols = np.nonzero(grid_valid)
        vi = first_vi[rows] + cols
        is_pre = vi < occ0[rows]
        pre_slot = np.minimum(vi, assoc - 1)
        new_slot = start[rows] + np.clip(vi - occ0[rows], 0, None)
        new_tag = np.where(is_pre, pre_tags[rows, pre_slot], tag_sorted[new_slot])
        new_dirty = np.where(is_pre, pre_dirty[rows, pre_slot], w_sorted[new_slot])

        self._tag[uniq] = -1
        self._dirty[uniq] = False
        self._stamp[uniq] = 0
        flat = uniq[rows] * assoc + cols
        self._tag.reshape(-1)[flat] = new_tag
        self._dirty.reshape(-1)[flat] = new_dirty
        self._stamp.reshape(-1)[flat] = self._clock + cols
        self._clock += assoc
        self._occ[uniq] = occ_final

        # Spill to the next level: every op is a demand fill, dirty
        # victims follow their op as posted installs.
        wb_orig = order[wb]
        victim_addr = victim_tag[wb] * n_sets + s_sorted[wb]
        hit_ns = self.config.hit_ns
        if self.next_level is not None:
            lower = self._spill(
                addrs, 2 * np.arange(n, dtype=np.int64), victim_addr, 2 * wb_orig + 1
            )
            lat = hit_ns + lower
            if n_wb:
                wb_add = np.zeros(n)
                wb_add[wb_orig] = self.next_level.config.hit_ns
                lat = lat + wb_add
            return lat
        line_bytes = self.config.line_bytes
        fill = self.dram.read_lines(n, line_bytes)
        lat = np.full(n, hit_ns + fill)
        if n_wb:
            wb_cost = self.dram.write_lines(n_wb, line_bytes)
            wb_add = np.zeros(n)
            wb_add[wb_orig] = wb_cost
            lat = lat + wb_add
        return lat

    # -- general path: exact per-set scalar walk -----------------------

    def _apply_general(
        self,
        addrs: np.ndarray,
        set_idx: np.ndarray,
        tag: np.ndarray,
        kinds: np.ndarray,
        hit: np.ndarray,
        match: np.ndarray,
    ) -> np.ndarray:
        """Mixed hit/miss (or repeated / install-bearing) batches.

        Sets are independent, so sets whose ops all hit in the
        pre-state are peeled off with the vector path; the rest are
        walked per set with exact scalar LRU over numpy-extracted
        state.  Next-level traffic is re-merged into global order.
        """
        n = addrs.shape[0]
        assoc = self._assoc
        n_sets = self._n_sets

        order = np.argsort(set_idx, kind="stable")
        s_sorted = set_idx[order]
        start, counts, uniq = _group_sorted(s_sorted)
        m = uniq.shape[0]

        # Peel off all-hit sets (no evictions possible there).
        hit_sorted = hit[order]
        group_allhit = np.minimum.reduceat(hit_sorted, start).astype(bool)
        lat = np.zeros(n)
        if group_allhit.any():
            op_allhit = np.repeat(group_allhit, counts)
            easy = order[op_allhit]
            lat[easy] = self._apply_all_hits(
                addrs[easy], set_idx[easy], kinds[easy], match[easy], kinds[easy] != _INSTALL
            )
            if group_allhit.all():
                return lat
            keep_groups = ~group_allhit
            keep_ops = ~op_allhit
            order = order[keep_ops]
            counts = counts[keep_groups]
            uniq = uniq[keep_groups]
            start = np.concatenate(([0], np.cumsum(counts)[:-1]))
            m = uniq.shape[0]

        # Wide batches over many sets: resolve round-major, one vector
        # op per "j-th access of every set" (exact — sets independent).
        max_count = int(counts.max())
        if n >= self._ROUNDS_MIN_OPS and max_count * self._ROUNDS_WIDTH <= order.shape[0]:
            return self._apply_rounds(lat, order, tag, kinds, start, counts, uniq)

        # Narrow residue: exact per-set scalar walk, MRU-first lists.
        tag_rows = self._tag[uniq]
        stamp_rows = np.where(tag_rows == -1, _STAMP_MAX, self._stamp[uniq])
        lru = np.argsort(stamp_rows, axis=1)
        pre_tags = np.take_along_axis(tag_rows, lru, axis=1).tolist()
        pre_dirty = np.take_along_axis(self._dirty[uniq], lru, axis=1).tolist()
        occ0 = self._occ[uniq].tolist()

        order_l = order.tolist()
        tag_l = tag[order].tolist()
        kind_l = kinds[order].tolist()
        start_l = start.tolist()
        counts_l = counts.tolist()
        uniq_l = uniq.tolist()

        hits = misses = writebacks = 0
        posted_dram_writes = 0
        read_keys: List[int] = []
        read_addrs: List[int] = []
        read_ops: List[int] = []
        inst_keys: List[int] = []
        inst_addrs: List[int] = []
        wb_ops: List[int] = []  # demand ops charged a posted-victim cost
        hit_ops: List[int] = []  # demand ops that hit
        has_next = self.next_level is not None

        out_tags: List[List[int]] = []
        out_dirty: List[List[bool]] = []

        for g in range(m):
            s = uniq_l[g]
            occ = occ0[g]
            # MRU-first working lists for this set.
            ltags = pre_tags[g][:occ][::-1]
            ldirty = pre_dirty[g][:occ][::-1]
            base = start_l[g]
            for p in range(base, base + counts_l[g]):
                t = tag_l[p]
                kd = kind_l[p]
                op = order_l[p]
                # Membership test, not try/except: misses dominate here
                # and raising ValueError per miss costs ~1us each.
                pos = ltags.index(t) if t in ltags else -1
                if pos >= 0:
                    if pos:
                        ltags.insert(0, ltags.pop(pos))
                        ldirty.insert(0, ldirty.pop(pos))
                    if kd == _INSTALL:
                        ldirty[0] = True
                    else:
                        hits += 1
                        hit_ops.append(op)
                        if kd == _WRITE:
                            ldirty[0] = True
                    continue
                # Miss at this level.
                if kd != _INSTALL:
                    misses += 1
                    read_keys.append(2 * op)
                    read_addrs.append(t * n_sets + s)
                    read_ops.append(op)
                if len(ltags) >= assoc:
                    vd = ldirty.pop()
                    vt = ltags.pop()
                    if vd:
                        writebacks += 1
                        if has_next:
                            inst_keys.append(2 * op + 1)
                            inst_addrs.append(vt * n_sets + s)
                        else:
                            posted_dram_writes += 1
                        if kd != _INSTALL:
                            wb_ops.append(op)
                            if not has_next:
                                posted_dram_writes -= 1
                ltags.insert(0, t)
                ldirty.insert(0, kd != _READ)
            out_tags.append(ltags)
            out_dirty.append(ldirty)

        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.writebacks += writebacks

        # Write the per-set outcomes back into the matrices (batched).
        rows_flat: List[int] = []
        cols_flat: List[int] = []
        tags_flat: List[int] = []
        dirty_flat: List[bool] = []
        stamps_flat: List[int] = []
        clock = self._clock
        for g in range(m):
            ltags = out_tags[g]
            occ = len(ltags)
            row = uniq_l[g]
            ld = out_dirty[g]
            for slot in range(occ):  # slot 0 = LRU after reversal below
                rows_flat.append(row)
                cols_flat.append(slot)
                # ltags is MRU-first; store LRU-first so stamp = clock+slot.
                tags_flat.append(ltags[occ - 1 - slot])
                dirty_flat.append(ld[occ - 1 - slot])
                stamps_flat.append(clock + slot)
        self._clock += assoc
        self._tag[uniq] = -1
        self._dirty[uniq] = False
        self._stamp[uniq] = 0
        if rows_flat:
            flat = np.asarray(rows_flat, dtype=np.int64) * assoc + np.asarray(
                cols_flat, dtype=np.int64
            )
            self._tag.reshape(-1)[flat] = tags_flat
            self._dirty.reshape(-1)[flat] = dirty_flat
            self._stamp.reshape(-1)[flat] = stamps_flat
        self._occ[uniq] = [len(t) for t in out_tags]

        return self._charge_and_spill(
            lat,
            hit_ops,
            np.asarray(read_ops, dtype=np.int64),
            np.asarray(read_keys, dtype=np.int64),
            np.asarray(read_addrs, dtype=np.int64),
            np.asarray(inst_keys, dtype=np.int64),
            np.asarray(inst_addrs, dtype=np.int64),
            wb_ops,
            posted_dram_writes,
        )

    # -- general path, wide batches: round-major vectorization ---------

    #: Use the rounds engine when the batch has at least this many ops...
    _ROUNDS_MIN_OPS = 192
    #: ...and the deepest set's op count times this fits in the batch
    #: (i.e. the average vector width per round is at least this).
    _ROUNDS_WIDTH = 24

    def _apply_rounds(
        self,
        lat: np.ndarray,
        order: np.ndarray,
        tag: np.ndarray,
        kinds: np.ndarray,
        start: np.ndarray,
        counts: np.ndarray,
        uniq: np.ndarray,
    ) -> np.ndarray:
        """Resolve a grouped batch as per-set rounds of vector ops.

        Round ``j`` processes the ``j``-th op of every set still active
        — exact, because sets share no state.  Per-op Python work
        disappears; cost scales with ``max(ops per set)`` rounds, each
        a handful of array ops over the active sets.

        Stamps are assigned ``clock + j``: within a set the rounds are
        its ops in stream order, so relative recency (all that LRU
        needs) matches the scalar walk exactly; absolute stamp values
        across sets differ, which is unobservable.
        """
        assoc = self._assoc
        n_sets = self._n_sets

        # Sort groups by depth so each round's active sets are a prefix.
        grp = np.argsort(-counts, kind="stable")
        counts_d = counts[grp]
        start_d = start[grp]
        uniq_d = uniq[grp]
        max_count = int(counts_d[0])

        # Working copies of the affected rows; written back at the end.
        T = self._tag[uniq_d].copy()
        S = self._stamp[uniq_d].copy()
        D = self._dirty[uniq_d].copy()

        tag_sorted = tag[order]
        kind_sorted = kinds[order]
        set_of_group = uniq_d

        hits = misses = writebacks = 0
        posted_dram_writes = 0
        hit_parts: List[np.ndarray] = []
        read_op_parts: List[np.ndarray] = []
        read_addr_parts: List[np.ndarray] = []
        inst_key_parts: List[np.ndarray] = []
        inst_addr_parts: List[np.ndarray] = []
        wb_op_parts: List[np.ndarray] = []

        clock = self._clock
        has_next = self.next_level is not None
        neg_counts = -counts_d

        for j in range(max_count):
            width = np.searchsorted(neg_counts, -j, side="left")
            p = start_d[:width] + j
            t = tag_sorted[p]
            kd = kind_sorted[p]
            o = order[p]
            demand = kd != _INSTALL

            Tw = T[:width]
            match = Tw == t[:, None]
            hit = match.any(axis=1)

            h_rows = np.flatnonzero(hit)
            if h_rows.shape[0]:
                way = match[h_rows].argmax(axis=1)
                S[h_rows, way] = clock + j
                dirtying = kd[h_rows] != _READ
                if dirtying.any():
                    D[h_rows[dirtying], way[dirtying]] = True
                dh = demand[h_rows]
                hits += int(dh.sum())
                hit_parts.append(o[h_rows[dh]])

            mi_rows = np.flatnonzero(~hit)
            if mi_rows.shape[0]:
                # Invalid ways carry stamp 0 < any live stamp, so one
                # argmin picks a free way if present, else the true LRU.
                vway = S[mi_rows].argmin(axis=1)
                vtag = T[mi_rows, vway]
                vdirty = D[mi_rows, vway] & (vtag != -1)
                dm = demand[mi_rows]
                misses += int(dm.sum())
                read_op_parts.append(o[mi_rows[dm]])
                read_addr_parts.append(
                    t[mi_rows[dm]] * n_sets + set_of_group[mi_rows[dm]]
                )
                n_wb = int(vdirty.sum())
                if n_wb:
                    writebacks += n_wb
                    wb_rows = mi_rows[vdirty]
                    if has_next:
                        inst_key_parts.append(2 * o[wb_rows] + 1)
                        inst_addr_parts.append(
                            vtag[vdirty] * n_sets + set_of_group[wb_rows]
                        )
                    chargeable = vdirty & dm
                    wb_op_parts.append(o[mi_rows[chargeable]])
                    if not has_next:
                        posted_dram_writes += n_wb - int(chargeable.sum())
                T[mi_rows, vway] = t[mi_rows]
                D[mi_rows, vway] = kd[mi_rows] != _READ
                S[mi_rows, vway] = clock + j

        self._clock += max_count
        self._tag[uniq_d] = T
        self._stamp[uniq_d] = S
        self._dirty[uniq_d] = D
        self._occ[uniq_d] = (T != -1).sum(axis=1)

        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.writebacks += writebacks

        hit_ops = _concat_i64(hit_parts)
        read_ops = _concat_i64(read_op_parts)
        read_addrs = _concat_i64(read_addr_parts)
        inst_keys = _concat_i64(inst_key_parts)
        inst_addrs = _concat_i64(inst_addr_parts)
        wb_ops = _concat_i64(wb_op_parts)
        return self._charge_and_spill(
            lat,
            hit_ops,
            read_ops,
            2 * read_ops,
            read_addrs,
            inst_keys,
            inst_addrs,
            wb_ops,
            posted_dram_writes,
        )

    # -- shared latency assembly + next-level costing ------------------

    def _charge_and_spill(
        self,
        lat: np.ndarray,
        hit_ops,
        read_ops: np.ndarray,
        read_keys: np.ndarray,
        read_addrs: np.ndarray,
        inst_keys: np.ndarray,
        inst_addrs: np.ndarray,
        wb_ops,
        posted_dram_writes: int,
    ) -> np.ndarray:
        """Fill per-op latencies and route spilled traffic downward.

        Float association matches the scalar model exactly:
        ``(hit + fill) + writeback`` per op, so the cumsum total is
        bit-identical to the sequential accumulation.
        """
        hit_ns = self.config.hit_ns
        if len(hit_ops):
            lat[hit_ops] = hit_ns
        n_reads = read_ops.shape[0]
        if self.next_level is not None:
            lower = self._spill(read_addrs, read_keys, inst_addrs, inst_keys)
            if n_reads:
                lat[read_ops] = hit_ns + lower
            if len(wb_ops):
                lat[wb_ops] += self.next_level.config.hit_ns
        else:
            line_bytes = self.config.line_bytes
            if n_reads:
                fill = self.dram.read_lines(n_reads, line_bytes)
                lat[read_ops] = hit_ns + fill
            n_demand_wb = len(wb_ops)
            if n_demand_wb:
                wb_cost = self.dram.write_lines(n_demand_wb, line_bytes)
                lat[wb_ops] += wb_cost
            if posted_dram_writes:
                self.dram.write_lines(posted_dram_writes, line_bytes)
        return lat

    # -- next-level spill ----------------------------------------------

    def _spill(
        self,
        read_addrs: np.ndarray,
        read_keys: np.ndarray,
        inst_addrs: np.ndarray,
        inst_keys: np.ndarray,
    ) -> np.ndarray:
        """Send demand fills + posted victims below, in global order.

        Keys are ``2 * op`` for demand fills and ``2 * op + 1`` for the
        posted victim that op evicted, so one stable sort reconstructs
        the exact traffic order the scalar model would generate.
        Returns the next level's per-op latency for the demand fills,
        aligned with ``read_addrs``.
        """
        n_reads = read_addrs.shape[0]
        if inst_addrs.shape[0] == 0:
            if n_reads < 2 or (np.diff(read_keys) > 0).all():
                return self.next_level._process(
                    read_addrs, np.zeros(n_reads, dtype=np.int8)
                )
            ord1 = np.argsort(read_keys, kind="stable")
            lower = self.next_level._process(
                read_addrs[ord1], np.zeros(n_reads, dtype=np.int8)
            )
            inv = np.empty(n_reads, dtype=np.int64)
            inv[ord1] = np.arange(n_reads)
            return lower[inv]
        keys = np.concatenate([read_keys, inst_keys])
        nl_addrs = np.concatenate([read_addrs, inst_addrs])
        nl_kinds = np.concatenate(
            [
                np.zeros(n_reads, dtype=np.int8),
                np.full(inst_addrs.shape[0], _INSTALL, dtype=np.int8),
            ]
        )
        ord2 = np.argsort(keys, kind="stable")
        lower = self.next_level._process(nl_addrs[ord2], nl_kinds[ord2])
        inv = np.empty(ord2.shape[0], dtype=np.int64)
        inv[ord2] = np.arange(ord2.shape[0])
        return lower[inv[:n_reads]]

    # ------------------------------------------------------------------
    # Introspection / maintenance

    def contains(self, line_addr: int) -> bool:
        """True if ``line_addr`` is currently resident (no state change)."""
        s = line_addr % self._n_sets
        t = line_addr // self._n_sets
        if self._scalar_sets is not None:
            return t in self._scalar_sets[s]
        return bool((self._tag[s] == t).any())

    def dirty_lines_in(self, lo_line: int, hi_line: int) -> List[int]:
        """Dirty resident lines in ``[lo_line, hi_line]`` (no state change).

        Used by the sanitizer's dispatch-time coherence check; sorted
        ascending so reports are deterministic.
        """
        n_sets = self._n_sets
        out: List[int] = []
        if self._scalar_sets is not None:
            for s, od in enumerate(self._scalar_sets):
                for t, d in od.items():
                    if d:
                        line = t * n_sets + s
                        if lo_line <= line <= hi_line:
                            out.append(line)
            out.sort()
            return out
        mask = self._dirty & (self._tag != -1)
        if not mask.any():
            return out
        rows, ways = np.nonzero(mask)
        lines = self._tag[rows, ways] * n_sets + rows
        keep = (lines >= lo_line) & (lines <= hi_line)
        return sorted(int(x) for x in lines[keep])

    def flush_range(self, lo_line: int, hi_line: int) -> float:
        """Write back and drop all lines in ``[lo_line, hi_line]``.

        Dirty lines are posted to the level below (counted in this
        level's ``writebacks``) and their posted cost returned; clean
        lines are silently invalidated.  The flush cascades down the
        hierarchy, this level first, so L1 victims land in L2 before
        L2's own sweep.

        Runs in whichever regime the level is currently in (flushing
        is frequent on app streams, so forcing a regime conversion per
        flush would thrash): the dict walk skips empty sets, the
        matrix path discovers doomed ways with one vectorized mask.
        Writebacks are posted in set-ascending, LRU-first order in
        both — the order the scalar reference model uses.
        """
        n_sets = self._n_sets
        total = 0.0
        stats = self.stats
        writeback = self._writeback
        sets = self._scalar_sets
        span = hi_line - lo_line + 1
        if sets is not None:
            if span < n_sets:
                # Narrow range (the common shape: one page's worth of
                # lines): enumerate candidate lines instead of walking
                # every set.  Each line maps to exactly one (set, tag)
                # slot, so membership is one dict probe.
                hits: dict = {}
                for line in range(lo_line, hi_line + 1):
                    s = line % n_sets
                    od = sets[s]
                    if od and (line // n_sets) in od:
                        hits.setdefault(s, []).append(line // n_sets)
                for s in sorted(hits):
                    od = sets[s]
                    want = hits[s]
                    if len(want) > 1:
                        # Restore the LRU-first within-set order the
                        # full walk produces.
                        wset = set(want)
                        want = [t for t in od if t in wset]
                    for t in want:
                        if od.pop(t):
                            stats.writebacks += 1
                            total += writeback(t * n_sets + s)
            else:
                for s, od in enumerate(sets):
                    if not od:
                        continue
                    doomed = [
                        t for t in od if lo_line <= t * n_sets + s <= hi_line
                    ]
                    for t in doomed:
                        if od.pop(t):
                            stats.writebacks += 1
                            total += writeback(t * n_sets + s)
        else:
            tagm = self._tag
            if span < n_sets:
                # Narrow range: compare only the candidate lines'
                # (set, tag) slots, not the whole tag matrix.
                cand = np.arange(lo_line, hi_line + 1, dtype=np.int64)
                s_idx = cand % n_sets
                hitm = tagm[s_idx] == (cand // n_sets)[:, None]
                cr, ways = np.nonzero(hitm)
                rows = s_idx[cr]
                doomed_lines = cand[cr]
            else:
                lines = tagm * n_sets + np.arange(n_sets, dtype=np.int64)[:, None]
                doomed_mask = (
                    (tagm != -1) & (lines >= lo_line) & (lines <= hi_line)
                )
                rows, ways = np.nonzero(doomed_mask)
                doomed_lines = lines[rows, ways]
            if rows.size:
                # (set, stamp) order == the dict regime's LRU-first walk.
                order = np.lexsort((self._stamp[rows, ways], rows))
                rows = rows[order]
                ways = ways[order]
                dirty = self._dirty[rows, ways]
                if dirty.any():
                    wb_lines = doomed_lines[order][dirty]
                    for ln in wb_lines.tolist():
                        stats.writebacks += 1
                        total += writeback(ln)
                tagm[rows, ways] = -1
                self._dirty[rows, ways] = False
                self._stamp[rows, ways] = 0
                self._occ -= np.bincount(rows, minlength=n_sets)
        if self.next_level is not None:
            total += self.next_level.flush_range(lo_line, hi_line)
        return total

    def lru_contents(self, set_idx: int) -> List[Tuple[int, bool]]:
        """``[(line_addr, dirty), ...]`` of one set, MRU first."""
        if self._scalar_sets is not None:
            od = self._scalar_sets[set_idx]
            return [
                (t * self._n_sets + set_idx, bool(d))
                for t, d in reversed(od.items())
            ]
        row = self._tag[set_idx]
        valid = row != -1
        ways = np.argsort(np.where(valid, -self._stamp[set_idx], 1))
        out = []
        for w in ways:
            if row[w] != -1:
                out.append(
                    (int(row[w]) * self._n_sets + set_idx, bool(self._dirty[set_idx, w]))
                )
        return out

    def invalidate_all(self) -> None:
        """Drop all lines (without writeback) — used between runs."""
        self._scalar_sets = None
        self._tag.fill(-1)
        self._stamp.fill(0)
        self._dirty.fill(False)
        self._occ.fill(0)

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        if self._scalar_sets is not None:
            return sum(len(od) for od in self._scalar_sets)
        return int(self._occ.sum())

    def reset_stats(self) -> None:
        self.stats.reset()


# ----------------------------------------------------------------------
# Helpers


_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _concat_i64(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return _EMPTY_I64
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def _as_line_array(lines: Union[range, np.ndarray, Iterable[int]]) -> np.ndarray:
    if isinstance(lines, np.ndarray):
        if lines.dtype == np.int64:
            return lines
        return lines.astype(np.int64)
    if isinstance(lines, range):
        return np.arange(lines.start, lines.stop, lines.step, dtype=np.int64)
    return np.fromiter(lines, dtype=np.int64)


def _all_distinct(addrs: np.ndarray) -> bool:
    """True if no line address repeats in the batch."""
    n = addrs.shape[0]
    if n < 2:
        return True
    d = np.diff(addrs)
    if (d > 0).all() or (d < 0).all():
        return True
    lo = int(addrs.min())
    span = int(addrs.max()) - lo + 1
    if span <= 8 * n:
        # Dense address range: one boolean scatter counts distinct
        # values in O(n + span), far cheaper than a sort or hash.
        flags = np.zeros(span, dtype=bool)
        flags[addrs - lo] = True
        return int(flags.sum()) == n
    return bool((np.diff(np.sort(addrs)) != 0).all())


def _last_occurrence_positions(flat: np.ndarray) -> np.ndarray:
    """Positions of the last occurrence of each distinct value."""
    rev = flat[::-1]
    _, first_in_rev = np.unique(rev, return_index=True)
    return flat.shape[0] - 1 - first_in_rev


def _group_sorted(s_sorted: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group boundaries of a sorted key array: (starts, counts, keys)."""
    n = s_sorted.shape[0]
    boundaries = np.flatnonzero(s_sorted[1:] != s_sorted[:-1]) + 1
    start = np.concatenate(([0], boundaries))
    counts = np.diff(np.concatenate((start, [n])))
    return start, counts, s_sorted[start]


def build_hierarchy(
    l1d_cfg: CacheConfig,
    l2_cfg: CacheConfig,
    dram: DRAM,
    l1i_cfg: Optional[CacheConfig] = None,
) -> tuple:
    """Wire up an L1D (+ optional L1I) sharing an L2 over DRAM.

    Returns ``(l1d, l1i, l2)``; ``l1i`` is None when not requested.
    """
    l2 = Cache("L2", l2_cfg, dram=dram)
    l1d = Cache("L1D", l1d_cfg, next_level=l2)
    l1i = Cache("L1I", l1i_cfg, next_level=l2) if l1i_cfg is not None else None
    return l1d, l1i, l2
