"""Set-associative, write-back, write-allocate caches with LRU.

The hierarchy is built by chaining :class:`Cache` levels; the last
level's misses fall through to :class:`repro.sim.dram.DRAM`.  Accesses
are blocking and in-order — the same conservative model the paper's
conventional memory system uses (latency per miss, no overlap).

Accesses operate on *line addresses* (byte address // line size); the
operation layer (:mod:`repro.sim.ops`) expands block/strided/random
accesses into line-address sequences, so megabyte-scale streams cost
one cache lookup per distinct line rather than per byte.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.sim.config import CacheConfig
from repro.sim.dram import DRAM


class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    __slots__ = ("hits", "misses", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0


class Cache:
    """One set-associative cache level.

    ``next_level`` is either another :class:`Cache` or ``None``, in
    which case ``dram`` must be provided and services misses.
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        next_level: Optional["Cache"] = None,
        dram: Optional[DRAM] = None,
    ) -> None:
        if next_level is None and dram is None:
            raise ValueError(f"cache {name!r} needs a next level or DRAM")
        self.name = name
        self.config = config
        self.next_level = next_level
        self.dram = dram
        self.stats = CacheStats()
        n_sets = config.n_sets
        # Per set: list of tags in LRU order (index 0 = most recent) and
        # a parallel list of dirty bits.
        self._tags: List[List[int]] = [[] for _ in range(n_sets)]
        self._dirty: List[List[bool]] = [[] for _ in range(n_sets)]
        self._n_sets = n_sets

    def line_of(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr // self.config.line_bytes

    def access_line(self, line_addr: int, write: bool) -> float:
        """Access one line; returns latency in ns (includes lower levels)."""
        set_idx = line_addr % self._n_sets
        tag = line_addr // self._n_sets
        tags = self._tags[set_idx]
        dirty = self._dirty[set_idx]
        latency = self.config.hit_ns

        try:
            pos = tags.index(tag)
        except ValueError:
            pos = -1

        if pos >= 0:
            self.stats.hits += 1
            # Move to MRU position.
            if pos != 0:
                tags.insert(0, tags.pop(pos))
                dirty.insert(0, dirty.pop(pos))
            if write:
                dirty[0] = True
            return latency

        self.stats.misses += 1
        # Fill from below.
        if self.next_level is not None:
            latency += self.next_level.access_line(line_addr, write=False)
        else:
            assert self.dram is not None
            latency += self.dram.read_line(self.config.line_bytes)

        # Evict LRU if the set is full.
        if len(tags) >= self.config.assoc:
            evicted_dirty = dirty.pop()
            tags.pop()
            if evicted_dirty:
                self.stats.writebacks += 1
                latency += self._writeback()
        tags.insert(0, tag)
        dirty.insert(0, write)
        return latency

    def _writeback(self) -> float:
        """Cost of writing a dirty victim to the level below."""
        if self.next_level is not None:
            # The victim lands dirty in the next level; model as a write
            # access there (it will hit or allocate).
            # Writebacks are posted, so only charge the next level's hit
            # time — the deeper traffic happens off the critical path.
            return self.next_level.config.hit_ns
        assert self.dram is not None
        return self.dram.write_line(self.config.line_bytes)

    def access_lines(self, line_addrs: Iterable[int], write: bool) -> float:
        """Access a sequence of lines; returns total latency in ns."""
        total = 0.0
        for line in line_addrs:
            total += self.access_line(line, write)
        return total

    def contains(self, line_addr: int) -> bool:
        """True if ``line_addr`` is currently resident (no state change)."""
        set_idx = line_addr % self._n_sets
        tag = line_addr // self._n_sets
        return tag in self._tags[set_idx]

    def invalidate_all(self) -> None:
        """Drop all lines (without writeback) — used between runs."""
        for tags in self._tags:
            tags.clear()
        for dirty in self._dirty:
            dirty.clear()

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(tags) for tags in self._tags)

    def reset_stats(self) -> None:
        self.stats.reset()


def build_hierarchy(
    l1d_cfg: CacheConfig,
    l2_cfg: CacheConfig,
    dram: DRAM,
    l1i_cfg: Optional[CacheConfig] = None,
) -> tuple:
    """Wire up an L1D (+ optional L1I) sharing an L2 over DRAM.

    Returns ``(l1d, l1i, l2)``; ``l1i`` is None when not requested.
    """
    l2 = Cache("L2", l2_cfg, dram=dram)
    l1d = Cache("L1D", l1d_cfg, next_level=l2)
    l1i = Cache("L1I", l1i_cfg, next_level=l2) if l1i_cfg is not None else None
    return l1d, l1i, l2
