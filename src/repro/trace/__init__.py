"""``repro.trace`` — event tracing, metrics, and Perfetto export.

Quick start::

    from repro import trace

    with trace.tracing() as tr:
        stats = machine.run(stream)
    trace.write_chrome_trace("run.json", tr)   # load in ui.perfetto.dev

See ``docs/tracing.md`` for the full event model and a worked example.
"""

from repro.trace.events import (
    DEFAULT_CAPACITY,
    Event,
    Tracer,
    disable,
    enable,
    is_enabled,
    tracing,
)
from repro.trace.export import (
    summarize,
    to_chrome_trace,
    to_csv,
    write_chrome_trace,
    write_csv,
)
from repro.trace.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    collect_machine_metrics,
    stats_metrics,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "Event",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "tracing",
    "to_chrome_trace",
    "to_csv",
    "write_chrome_trace",
    "write_csv",
    "summarize",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "collect_machine_metrics",
    "stats_metrics",
]
