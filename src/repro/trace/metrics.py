"""Counter/histogram registry with per-component namespacing.

The simulator already keeps canonical accumulators — ``MachineStats``
for processor time, ``CacheStats`` per cache level, occupancy on the
``Bus``, read/write counts on ``DRAM``, communication totals on the
RADram system.  This registry deliberately does **not** shadow-count
any of that: :func:`collect_machine_metrics` builds a namespaced view
*from* those canonical objects after (or during) a run, so there is one
source of truth and the registry is the uniform, exportable face of it.

Components may also register live counters/histograms of their own
(e.g. the sweep harness's trace summaries); names are dot-separated
with the component namespace first: ``cache.L1D.misses``,
``radram.comm_bytes``, ``cpu.wait_ns``.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.events import Tracer


class Counter:
    """A monotonically accumulating named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite with a canonical value (mirroring existing stats)."""
        self.value = value


class Histogram:
    """Fixed-edge histogram of observed samples.

    ``edges`` are the *upper* bounds of the finite bins; one overflow
    bin catches everything beyond the last edge.
    """

    __slots__ = ("name", "edges", "counts", "n", "total")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be a sorted, non-empty list")
        self.name = name
        self.edges: List[float] = list(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.n = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.n += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = {f"{self.name}.le_{edge:g}": float(c) for edge, c in zip(self.edges, self.counts)}
        out[f"{self.name}.overflow"] = float(self.counts[-1])
        out[f"{self.name}.count"] = float(self.n)
        out[f"{self.name}.mean"] = self.mean
        return out


class MetricsRegistry:
    """Named counters and histograms, addressable by dotted path."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Registration / lookup

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges)
        return h

    def namespace(self, prefix: str) -> "MetricsNamespace":
        """A view that prepends ``prefix.`` to every metric name."""
        return MetricsNamespace(self, prefix)

    # ------------------------------------------------------------------
    # Introspection / export

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{dotted.name: value}`` mapping (JSON/CSV-ready)."""
        out = {name: c.value for name, c in sorted(self._counters.items())}
        for _, h in sorted(self._histograms.items()):
            out.update(h.as_dict())
        return out

    def emit_counters(self, tracer: Tracer, ts: Optional[float] = None) -> int:
        """Sample every counter into ``tracer`` as ``"C"`` events.

        The track is the first dotted component (the namespace), the
        counter name the remainder.  Returns the number emitted.
        """
        when = tracer.now if ts is None else ts
        n = 0
        for name, c in sorted(self._counters.items()):
            track, _, leaf = name.partition(".")
            tracer.counter(track, leaf or track, when, c.value)
            n += 1
        return n


class MetricsNamespace:
    """A prefixing view over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", edges)

    def namespace(self, prefix: str) -> "MetricsNamespace":
        return MetricsNamespace(self._registry, f"{self._prefix}.{prefix}")


# ----------------------------------------------------------------------
# Canonical-stats bridge


def stats_metrics(stats, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Mirror a :class:`~repro.sim.stats.MachineStats` into ``cpu.*``."""
    registry = registry if registry is not None else MetricsRegistry()
    ns = registry.namespace("cpu")
    for key, value in stats.as_dict().items():
        ns.counter(key).set(float(value))
    return registry


def collect_machine_metrics(machine, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Namespaced counters for a whole :class:`~repro.sim.machine.Machine`.

    Values are *read* from the machine's canonical stats objects —
    ``MachineStats``, per-level ``CacheStats``, ``Bus``, ``DRAM`` and
    (when present) the RADram memory system — never re-accumulated.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stats_metrics(machine.processor.stats, registry)

    for cache in (machine.l1d, machine.l1i, machine.l2):
        if cache is None:
            continue
        ns = registry.namespace(f"cache.{cache.name}")
        ns.counter("hits").set(float(cache.stats.hits))
        ns.counter("misses").set(float(cache.stats.misses))
        ns.counter("writebacks").set(float(cache.stats.writebacks))
        ns.counter("miss_rate").set(cache.stats.miss_rate)

    dram_ns = registry.namespace("dram")
    dram_ns.counter("reads").set(float(machine.dram.reads))
    dram_ns.counter("writes").set(float(machine.dram.writes))

    bus_ns = registry.namespace("bus")
    bus_ns.counter("bytes").set(float(machine.bus.bytes_transferred))
    bus_ns.counter("busy_ns").set(machine.bus.busy_ns)
    bus_ns.counter("transfers").set(float(machine.bus.transfers))

    memsys = machine.memsys
    if hasattr(memsys, "subarrays"):  # RADram
        rns = registry.namespace("radram")
        rns.counter("activations").set(float(memsys.total_activations))
        rns.counter("comm_requests").set(float(memsys.comm_requests))
        rns.counter("comm_bytes").set(float(memsys.comm_bytes))
        rns.counter("interchip_requests").set(float(memsys.interchip_requests))
        rns.counter("pages").set(float(len(memsys.subarrays)))
        busy = sum(
            memsys.page_busy_ns(page_no) for page_no in memsys.subarrays
        )
        rns.counter("page_busy_ns").set(busy)
        fault_counters = memsys.fault_counters()
        if fault_counters:
            fns = registry.namespace("faults")
            for name, value in fault_counters.items():
                fns.counter(name).set(value)
    return registry
