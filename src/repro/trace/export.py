"""Exporters: Chrome/Perfetto ``trace_event`` JSON and flat CSV.

The JSON format is the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev — load the exported
file directly.  Mapping:

* every distinct event ``track`` becomes one named thread (``tid``)
  inside a single ``repro-sim`` process (``pid`` 1), announced with
  ``thread_name`` metadata events;
* timestamps/durations are converted from simulated nanoseconds to the
  format's microseconds (fractional values are allowed and preserved);
* ``"X"``/``"B"``/``"E"`` map 1:1; ``"I"`` becomes a thread-scoped
  instant; ``"C"`` becomes a counter event with a single series.

The CSV exporter is the greppable flat twin: one row per event with
``args`` JSON-encoded in the last column.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Union

from repro.trace.events import Event, Tracer

#: The single synthetic process id all tracks live under.
PID = 1

CSV_HEADER = "ph,track,name,ts_ns,dur_ns,args"

EventSource = Union[Tracer, Iterable[Event]]


def _event_list(events: EventSource) -> List[Event]:
    if isinstance(events, Tracer):
        return events.events()
    return list(events)


def _track_order(events: List[Event]) -> Dict[str, int]:
    """Stable track -> tid assignment: cpu tracks first, then first-seen.

    Sorting "cpu" tracks to the front makes the Perfetto default view
    open on the processor timeline, with page tracks below it.
    """
    seen: List[str] = []
    for event in events:
        if event.track not in seen:
            seen.append(event.track)
    ordered = sorted(
        seen, key=lambda t: (0 if t == "cpu" or t.startswith("cpu.") else 1,
                             seen.index(t))
    )
    return {track: tid + 1 for tid, track in enumerate(ordered)}


def to_chrome_trace(
    events: EventSource,
    metadata: Optional[dict] = None,
) -> dict:
    """A ``trace_event`` JSON document (as a dict) for ``events``."""
    evs = _event_list(events)
    tids = _track_order(evs)
    trace_events: List[dict] = [
        {
            "ph": "M",
            "pid": PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    trace_events.insert(
        0,
        {
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro-sim"},
        },
    )
    for event in evs:
        tid = tids[event.track]
        ts_us = event.ts / 1e3
        if event.ph == "X":
            entry = {
                "ph": "X",
                "pid": PID,
                "tid": tid,
                "ts": ts_us,
                "dur": event.dur / 1e3,
                "name": event.name,
                "cat": event.track,
            }
            if event.args:
                entry["args"] = event.args
        elif event.ph in ("B", "E"):
            entry = {
                "ph": event.ph,
                "pid": PID,
                "tid": tid,
                "ts": ts_us,
                "name": event.name,
                "cat": event.track,
            }
            if event.ph == "B" and event.args:
                entry["args"] = event.args
        elif event.ph == "I":
            entry = {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": PID,
                "tid": tid,
                "ts": ts_us,
                "name": event.name,
                "cat": event.track,
            }
            if event.args:
                entry["args"] = event.args
        elif event.ph == "C":
            value = (event.args or {}).get("value", 0.0)
            entry = {
                "ph": "C",
                "pid": PID,
                "tid": tid,
                "ts": ts_us,
                "name": f"{event.track}.{event.name}",
                "args": {event.name: value},
            }
        else:  # unknown phase: preserve as metadata rather than drop
            entry = {
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "ts": ts_us,
                "name": event.name,
                "args": event.args or {},
            }
        trace_events.append(entry)

    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.trace", "time_unit_in": "ns"},
    }
    if isinstance(events, Tracer):
        doc["otherData"]["dropped_events"] = events.dropped
        doc["otherData"]["capacity"] = events.capacity
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def write_chrome_trace(
    path: str, events: EventSource, metadata: Optional[dict] = None
) -> dict:
    """Write Perfetto-loadable JSON to ``path``; returns the document."""
    doc = to_chrome_trace(events, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def to_csv(events: EventSource) -> str:
    """Flat CSV (one row per event, ``args`` JSON-encoded)."""
    lines = [CSV_HEADER]
    for event in _event_list(events):
        args = json.dumps(event.args, sort_keys=True) if event.args else ""
        if "," in args:
            args = '"' + args.replace('"', '""') + '"'
        lines.append(
            f"{event.ph},{event.track},{event.name},"
            f"{event.ts:g},{event.dur:g},{args}"
        )
    return "\n".join(lines) + "\n"


def write_csv(path: str, events: EventSource) -> str:
    text = to_csv(events)
    with open(path, "w") as fh:
        fh.write(text)
    return text


# ----------------------------------------------------------------------
# Summaries (sweep-harness / CLI digest)


def summarize(events: EventSource) -> Dict[str, float]:
    """Flat numeric digest of a trace (cacheable by the sweep harness).

    ``events`` / ``spans`` / ``instants`` / ``counters`` count events by
    phase; ``span_ns.<track>`` totals the ``"X"`` durations per track
    (page tracks are folded into one ``page`` total so the summary stays
    bounded for thousand-page runs).
    """
    evs = _event_list(events)
    out: Dict[str, float] = {
        "events": float(len(evs)),
        "spans": 0.0,
        "instants": 0.0,
        "counters": 0.0,
    }
    span_ns: Dict[str, float] = {}
    for event in evs:
        if event.ph == "X":
            out["spans"] += 1
            track = "page" if event.track.startswith("page/") else event.track
            span_ns[track] = span_ns.get(track, 0.0) + event.dur
        elif event.ph == "I":
            out["instants"] += 1
        elif event.ph == "C":
            out["counters"] += 1
    for track, total in sorted(span_ns.items()):
        out[f"span_ns.{track}"] = total
    if isinstance(events, Tracer):
        out["dropped"] = float(events.dropped)
    return out
