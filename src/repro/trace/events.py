"""Low-overhead structured trace events for the whole machine.

The simulator's evaluation questions are all "where does time go"
questions — Figure 4's processor/memory non-overlap, Figure 6's
activation Gantt, Table 4's per-phase T_A/T_P — so every component can
emit *typed events* into a process-wide :class:`Tracer`:

``"X"``  complete   a named span ``[ts, ts + dur)`` on a track
``"B"``/``"E"``  begin/end  an open/close pair (nested phases)
``"I"``  instant    a point event (activations, inter-page service)
``"C"``  counter    a sampled cumulative value (hits, bytes, reads)

Zero overhead when off
----------------------
Tracing is controlled by the module-level :data:`TRACER`, which is
``None`` when disabled.  Instrumented hot paths guard with::

    tr = events.TRACER
    if tr is not None:
        tr.counter("cache.L1D", "misses", tr.now, self.stats.misses)

so a disabled tracer costs one module-attribute load and a ``None``
test — nothing else.  The vectorized cache paths guard once per
*batch*, never per line, which is what keeps the hot-path benchmark
gate (``benchmarks/test_sim_hotpath.py``) within its 5% budget.

Bounded memory
--------------
Events land in a ring buffer (``deque(maxlen=capacity)``).  Once full,
the oldest events are dropped and counted in :attr:`Tracer.dropped`, so
tracing a billion-op run can never exhaust memory; exports record the
drop count so truncated traces are never mistaken for complete ones.

Timestamps
----------
All timestamps are simulated nanoseconds.  Components without their own
clock (caches, DRAM, the bus) stamp events with :attr:`Tracer.now`, a
clock *hint* that clock owners (the processor op loop, the RADram
system) refresh as simulated time advances.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Deque, Iterator, List, NamedTuple, Optional


class Event(NamedTuple):
    """One structured trace event (timestamps in simulated ns)."""

    ph: str  # "X" | "B" | "E" | "I" | "C"
    ts: float
    dur: float  # spans only; 0.0 otherwise
    track: str  # timeline the event belongs to, e.g. "cpu", "page/3"
    name: str
    args: Optional[dict]  # small JSON-able payload, or None


#: Default ring-buffer capacity (events).  Big enough for every
#: experiment in the report; a full buffer drops oldest-first.
DEFAULT_CAPACITY = 1_000_000


class Tracer:
    """A bounded ring buffer of :class:`Event` plus a clock hint."""

    __slots__ = ("_events", "capacity", "dropped", "now")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.dropped: int = 0
        #: Clock hint (simulated ns) for clockless components.
        self.now: float = 0.0

    # ------------------------------------------------------------------
    # Emission

    def emit(self, event: Event) -> None:
        q = self._events
        if len(q) == self.capacity:
            self.dropped += 1
        q.append(event)

    def complete(
        self, track: str, name: str, start_ns: float, end_ns: float, **args
    ) -> None:
        """A finished span ``[start_ns, end_ns)`` on ``track``."""
        self.emit(
            Event("X", start_ns, end_ns - start_ns, track, name, args or None)
        )

    def begin(self, track: str, name: str, ts: float, **args) -> None:
        self.emit(Event("B", ts, 0.0, track, name, args or None))

    def end(self, track: str, name: str, ts: float) -> None:
        self.emit(Event("E", ts, 0.0, track, name, None))

    def instant(self, track: str, name: str, ts: float, **args) -> None:
        self.emit(Event("I", ts, 0.0, track, name, args or None))

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        """Sample a cumulative counter's current ``value`` at ``ts``."""
        self.emit(Event("C", ts, 0.0, track, name, {"value": value}))

    # ------------------------------------------------------------------
    # Introspection

    def events(self) -> List[Event]:
        """The retained events, oldest first (a copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


#: The process-wide tracer; ``None`` means tracing is disabled and every
#: instrumentation site reduces to a load-and-test no-op.
TRACER: Optional[Tracer] = None


def enable(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global TRACER
    TRACER = Tracer(capacity=capacity)
    return TRACER


def disable() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active, if any."""
    global TRACER
    previous, TRACER = TRACER, None
    return previous


def is_enabled() -> bool:
    return TRACER is not None


@contextmanager
def tracing(capacity: int = DEFAULT_CAPACITY) -> Iterator[Tracer]:
    """Enable tracing for a ``with`` block, restoring the prior state.

    >>> with tracing() as tr:
    ...     machine.run(stream)
    >>> export.write_chrome_trace("run.json", tr)
    """
    global TRACER
    previous = TRACER
    tracer = Tracer(capacity=capacity)
    TRACER = tracer
    try:
        yield tracer
    finally:
        TRACER = previous
