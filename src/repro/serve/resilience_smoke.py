"""Serve crash-recovery smoke: ``python -m repro.serve.resilience_smoke``.

The end-to-end proof of the PR 9 durability invariant, against real
processes and a real ``SIGKILL``:

1. boot a server subprocess with a chaos rule that SIGKILLs it at its
   first ``progress`` publish (after the event is journaled, before
   any subscriber sees it);
2. a resilient client submits an uncached app sweep and — mid-stream —
   loses the server to the kill;
3. the server is restarted **on the same port**; it recovers the
   incomplete journal and re-enqueues the job while the client's
   reconnect backoff is still ticking;
4. the client resumes with ``after_seq`` and streams to ``done``:
   every seq exactly once, gapless from 1, result values identical to
   an uninterrupted run of the same request.

On failure the journal directory is copied to
``./serve-resilience-journal`` so CI can upload it as an artifact.
Exit status 0 on success.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.faults import chaos
from repro.serve import client
from repro.serve.journal import JournalStore, job_summary
from repro.serve.smoke import BOOT_TIMEOUT_S, wait_for_listen

APP_REQUEST = {"kind": "app", "app": "array-insert", "pages": 2.0, "tenant": "smoke"}
STREAM_TIMEOUT_S = 300.0
ARTIFACT_DIR = "serve-resilience-journal"


def start_server(cache_dir: str, port: int, chaos_spec: Optional[str]) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.setdefault("PYTHONUNBUFFERED", "1")
    if chaos_spec:
        env[chaos.CHAOS_ENV] = chaos_spec
    else:
        env.pop(chaos.CHAOS_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--jobs", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def pump_output(proc: "subprocess.Popen[str]", lines: List[str]) -> threading.Thread:
    """Drain a server's stdout in the background (pipes must not fill)."""

    def run() -> None:
        assert proc.stdout is not None
        for line in proc.stdout:
            lines.append(line.rstrip("\n"))
            sys.stdout.write(f"[server] {line}")

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def result_digest(events: List[Dict[str, object]]) -> str:
    """Digest of the semantic result payload, ignoring volatile fields.

    ``seq``/``job`` differ across jobs and ``cached`` flips once the
    result cache is warm; the *values* must be bit-identical.
    """
    keep = [
        {k: e.get(k) for k in ("task", "mode", "values", "error")}
        for e in events
        if e.get("event") == "result"
    ]
    blob = json.dumps(keep, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-serve-resilience-")
    cache_dir = os.path.join(tmp, "cache")
    chaos_spec = os.path.join(tmp, "chaos.json")
    chaos.write_spec(
        chaos_spec,
        os.path.join(tmp, "chaos-state"),
        [{"match": "serve.publish:progress", "mode": "kill", "times": 1}],
    )
    survivors: List["subprocess.Popen[str]"] = []
    try:
        # --- server A: armed to SIGKILL itself mid-stream ------------
        proc_a = start_server(cache_dir, 0, chaos_spec)
        survivors.append(proc_a)
        base_url = wait_for_listen(proc_a)
        port = int(base_url.rsplit(":", 1)[1])
        lines_a: List[str] = []
        pump_output(proc_a, lines_a)

        # --- resilient client: submits, survives the kill -------------
        out: Dict[str, object] = {}

        def run_client() -> None:
            try:
                out["events"] = list(
                    client.stream_submit_resilient(
                        base_url,
                        dict(APP_REQUEST),
                        reconnects=12,
                        backoff_s=0.5,
                        timeout=STREAM_TIMEOUT_S,
                        log=lambda msg: print(f"[client] {msg}", flush=True),
                    )
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                out["error"] = exc

        worker = threading.Thread(target=run_client, daemon=True)
        worker.start()

        # --- the chaos rule fires: server A dies by SIGKILL -----------
        rc_a = proc_a.wait(timeout=BOOT_TIMEOUT_S + STREAM_TIMEOUT_S)
        assert rc_a == -signal.SIGKILL, (
            f"server A exited {rc_a}, expected SIGKILL ({-signal.SIGKILL})"
        )
        print(f"smoke: server A killed by chaos (rc={rc_a})", flush=True)
        store = JournalStore(os.path.join(cache_dir, "jobs"))
        job_ids = store.job_ids()
        assert len(job_ids) == 1, f"expected one journal, found {job_ids}"
        assert not job_summary(store.read(job_ids[0]))["done"], (
            "the killed job's journal must be incomplete"
        )

        # --- server B: same port, same cache; recovers the journal ----
        # The chaos rule's claim markers persisted, so it cannot re-fire.
        proc_b = start_server(cache_dir, port, chaos_spec)
        survivors.append(proc_b)
        wait_for_listen(proc_b)
        lines_b: List[str] = []
        pump_output(proc_b, lines_b)

        worker.join(timeout=STREAM_TIMEOUT_S)
        assert not worker.is_alive(), "client did not finish in time"
        if "error" in out:
            raise AssertionError(f"client failed: {out['error']!r}")
        events = out["events"]  # type: ignore[assignment]

        # --- the stitched stream is complete, ordered, successful -----
        kinds = [e.get("event") for e in events]
        assert kinds[-1] == "done" and events[-1].get("ok") is True, events[-1]
        assert kinds.count("accepted") >= 2, "client never resumed"
        assert any(e.get("resumed") for e in events), "no resumed accept"
        assert "recovered" in kinds, "journal recovery event missing"
        seqs = [e["seq"] for e in events if "seq" in e]
        assert seqs == list(range(1, len(seqs) + 1)), (
            f"seqs not gapless/duplicate-free: {seqs}"
        )
        summary = job_summary(store.read(job_ids[0]))
        assert summary["done"] and summary["ok"], summary
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not any(
            "recovered 1 journaled job" in line for line in lines_b
        ):
            time.sleep(0.05)
        assert any("recovered 1 journaled job" in line for line in lines_b), (
            f"server B never reported recovery: {lines_b}"
        )

        # --- identical results to an uninterrupted run -----------------
        clean = list(
            client.stream_submit(base_url, dict(APP_REQUEST), timeout=STREAM_TIMEOUT_S)
        )
        assert clean[-1].get("ok") is True, clean[-1]
        assert result_digest(events) == result_digest(clean), (
            "resumed results differ from a clean run"
        )
        print("smoke: resumed digest == clean digest", flush=True)

        # --- graceful SIGTERM drain of the survivor --------------------
        proc_b.send_signal(signal.SIGTERM)
        rc_b = proc_b.wait(timeout=60)
        assert rc_b == 0, f"server B exited {rc_b} on SIGTERM"

        print("smoke: serve resilience smoke passed", flush=True)
        return 0
    except BaseException:
        jobs_dir = os.path.join(cache_dir, "jobs")
        if os.path.isdir(jobs_dir):
            shutil.rmtree(ARTIFACT_DIR, ignore_errors=True)
            shutil.copytree(jobs_dir, ARTIFACT_DIR)
            print(f"smoke: journal dir preserved at ./{ARTIFACT_DIR}", flush=True)
        raise
    finally:
        for proc in survivors:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
