"""Sharded serve cluster: consistent hashing, leases, epoch fencing.

One ``.repro_cache/`` can back several server processes — *shards* —
each owning a deterministic slice of the job-key space.  This module
holds the coordination state they share, all of it plain files under
``<cache>/cluster/`` (the repository's no-new-hard-dependency rule
applies to clustering too: no etcd, no redis — fsync and ``O_EXCL``
are the consensus protocol):

* :class:`HashRing` — consistent hashing of coalesce keys onto shard
  indexes.  Each shard contributes ``vnodes`` points on a 64-bit ring;
  a key belongs to the first point clockwise from its own hash.  When
  a shard dies, only its arc remaps (to the next live successor) —
  the other shards' keys do not move.
* **Leases** — ``shard-<N>.lease``: a fsynced JSON heartbeat
  (``shard``, ``epoch``, ``addr``, ``pid``, ``renewed_at``,
  ``ttl_s``) rewritten every ``ttl/3`` seconds via atomic
  tmp-then-rename (the :meth:`ResultCache.store` pattern).  A lease
  older than its ``ttl_s`` is *expired*: the shard is presumed dead
  and its incomplete journals become claimable.
* **Fencing** — ``shard-<N>.fence``: the newest epoch ever granted
  for slot ``N``.  Every journal append by a cluster shard first
  checks its own slot's fence (:meth:`ClusterMembership.check_fence`);
  a *zombie* — a shard that stalled past its lease and was taken over
  — finds an epoch newer than its own and gets
  :class:`~repro.serve.journal.FencedError` instead of a write.  The
  journal stays single-writer even when the old owner is still
  breathing.
* **Takeover claims** — ``takeover-<N>-<epoch>.claim``: created with
  ``O_CREAT | O_EXCL`` (the journal-claim / chaos-marker pattern), so
  exactly one surviving peer wins the right to bump a dead slot's
  fence and re-enqueue its journals.  Losers observe ``lost`` and
  stand down.

Epochs only grow: a shard acquiring slot ``N`` takes
``max(lease epoch, fence epoch) + 1`` and writes the fence *before*
its lease, so a restart self-fences its own previous incarnation the
same way a peer takeover fences a zombie.

The launcher (``python -m repro serve --cluster N``) is
:func:`run_cluster`: it spawns ``N`` single-shard server processes
(``--shards N --shard-index i``) sharing the invoking environment's
cache dir and forwards SIGTERM/SIGINT for a coordinated drain.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.serve.journal import FencedError

#: Cluster coordination directory name (sibling of ``<cache>/jobs/``).
CLUSTER_DIRNAME = "cluster"

#: Virtual nodes per shard on the hash ring; 64 keeps the largest
#: shard's share within a few percent of fair for small clusters.
DEFAULT_VNODES = 64

#: Default lease time-to-live; renewal runs every ``ttl/3``.
DEFAULT_LEASE_TTL_S = 3.0

#: A takeover claim younger than this marks its slot "mid-takeover":
#: prune must not delete the journals the claimant is re-enqueuing.
TAKEOVER_GRACE_S = 3600.0

_tmp_counter = itertools.count()


class ClusterError(Exception):
    """A cluster-membership operation that could not be performed."""


# ----------------------------------------------------------------------
# Consistent hashing


class HashRing:
    """Consistent hashing of job keys onto shard indexes.

    Deterministic across processes (pure sha256, no per-process salt):
    every shard computes the same owner for every key, which is what
    makes redirect targets and recovery claims agree without any
    message passing.
    """

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ClusterError(f"need at least 1 shard, got {n_shards}")
        self.n_shards = n_shards
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(vnodes):
                digest = hashlib.sha256(
                    f"shard-{shard}/vnode-{vnode}".encode()
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @staticmethod
    def _point(key: str) -> int:
        digest = hashlib.sha256(str(key).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def owner(self, key: str, alive: Optional[Set[int]] = None) -> int:
        """The shard owning ``key`` — first ring successor, or the
        first *live* successor when ``alive`` is given (a dead shard's
        arc falls to the next surviving shard; everyone else's keys
        stay put)."""
        start = bisect.bisect_right(self._hashes, self._point(key))
        total = len(self._points)
        for step in range(total):
            _, shard = self._points[(start + step) % total]
            if alive is None or shard in alive:
                return shard
        raise ClusterError("no live shards to own the key")


# ----------------------------------------------------------------------
# Lease / fence files


@dataclass
class ShardLease:
    """One decoded ``shard-<N>.lease`` heartbeat."""

    shard: int
    epoch: int
    addr: str
    pid: int
    renewed_at: float
    ttl_s: float

    def expired(self, now: Optional[float] = None) -> bool:
        now = time.time() if now is None else now
        return (now - self.renewed_at) > self.ttl_s


def lease_path(root: Path, shard: int) -> Path:
    return Path(root) / f"shard-{shard}.lease"


def fence_path(root: Path, shard: int) -> Path:
    return Path(root) / f"shard-{shard}.fence"


def _write_atomic(path: Path, payload: Dict[str, object]) -> None:
    """Durable single-file publish: O_EXCL tmp, fsync, atomic rename."""
    tmp = path.with_name(
        f"{path.name}.tmp.{os.getpid()}.{next(_tmp_counter)}"
    )
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        os.write(fd, json.dumps(payload, sort_keys=True).encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)


def read_lease(root: Path, shard: int) -> Optional[ShardLease]:
    """Decode one slot's lease; ``None`` when absent or corrupt."""
    try:
        raw = lease_path(root, shard).read_text()
        doc = json.loads(raw)
        return ShardLease(
            shard=int(doc["shard"]),
            epoch=int(doc["epoch"]),
            addr=str(doc.get("addr", "")),
            pid=int(doc.get("pid", 0)),
            renewed_at=float(doc["renewed_at"]),
            ttl_s=float(doc["ttl_s"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def read_fence_epoch(root: Path, shard: int) -> int:
    """The newest epoch granted for a slot (0 when never fenced)."""
    try:
        doc = json.loads(fence_path(root, shard).read_text())
        return int(doc["epoch"])
    except (OSError, ValueError, KeyError, TypeError):
        return 0


def protected_shards(
    cluster_root: Path, now: Optional[float] = None
) -> Set[int]:
    """Slots whose journals prune must leave alone.

    A slot is protected while its lease is live (the shard may be
    about to append) or while a takeover claim younger than
    :data:`TAKEOVER_GRACE_S` exists (a peer is mid-way through
    re-enqueuing its journals).  Absent cluster dir → nothing
    protected (the single-process case).
    """
    root = Path(cluster_root)
    if not root.is_dir():
        return set()
    now = time.time() if now is None else now
    protected: Set[int] = set()
    for path in root.glob("shard-*.lease"):
        try:
            slot = int(path.name[len("shard-"):-len(".lease")])
        except ValueError:
            continue
        lease = read_lease(root, slot)
        if lease is not None and not lease.expired(now):
            protected.add(slot)
    for path in root.glob("takeover-*.claim"):
        parts = path.name[len("takeover-"):-len(".claim")].split("-")
        try:
            slot = int(parts[0])
            age = now - path.stat().st_mtime
        except (ValueError, OSError, IndexError):
            continue
        if age <= TAKEOVER_GRACE_S:
            protected.add(slot)
    return protected


# ----------------------------------------------------------------------
# Membership


class ClusterMembership:
    """One shard's view of, and handle on, the shared cluster state.

    All methods are synchronous file operations (a handful of small
    reads, one fsynced write for renewals) — cheap enough to call from
    the server's event loop at request rate for small clusters.
    ``clock`` is an injection seam for tests (wall-clock by default:
    lease timestamps must compare across processes).
    """

    def __init__(
        self,
        root: Path,
        shard_index: int,
        n_shards: int,
        addr: str = "",
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not 0 <= shard_index < n_shards:
            raise ClusterError(
                f"shard index {shard_index} outside 0..{n_shards - 1}"
            )
        if ttl_s <= 0:
            raise ClusterError(f"lease ttl must be positive, got {ttl_s}")
        self.root = Path(root)
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.addr = addr
        self.ttl_s = ttl_s
        self.clock = clock
        self.epoch = 0
        self.fenced = False

    # -- lifecycle ------------------------------------------------------

    def acquire(self) -> int:
        """Claim this shard's slot; returns the granted epoch.

        Refuses a slot with a live lease (two processes configured for
        the same ``--shard-index`` is an operator error, not a race to
        win).  The granted epoch supersedes both the stale lease and
        the current fence, and the fence is written *first* — so a
        crashed predecessor that somehow wakes up is already fenced
        by the time this incarnation starts journaling.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        now = self.clock()
        lease = read_lease(self.root, self.shard_index)
        if lease is not None and not lease.expired(now):
            remaining = lease.ttl_s - (now - lease.renewed_at)
            raise ClusterError(
                f"shard slot {self.shard_index} lease is held by pid "
                f"{lease.pid} (epoch {lease.epoch}, addr {lease.addr!r}; "
                f"expires in {remaining:.1f}s)"
            )
        prior = max(
            lease.epoch if lease is not None else 0,
            read_fence_epoch(self.root, self.shard_index),
        )
        self.epoch = prior + 1
        self.fenced = False
        _write_atomic(
            fence_path(self.root, self.shard_index),
            {"shard": self.shard_index, "epoch": self.epoch,
             "by": self.shard_index},
        )
        self._write_lease(now)
        return self.epoch

    def _write_lease(self, now: float) -> None:
        _write_atomic(
            lease_path(self.root, self.shard_index),
            asdict(
                ShardLease(
                    shard=self.shard_index,
                    epoch=self.epoch,
                    addr=self.addr,
                    pid=os.getpid(),
                    renewed_at=now,
                    ttl_s=self.ttl_s,
                )
            ),
        )

    def renew(self) -> bool:
        """Heartbeat the lease; ``False`` once this shard is fenced.

        A fenced shard must stop renewing — rewriting the lease would
        make a taken-over slot look alive again to routing.
        """
        if self.fenced or read_fence_epoch(
            self.root, self.shard_index
        ) > self.epoch:
            self.fenced = True
            return False
        self._write_lease(self.clock())
        return True

    def release(self) -> None:
        """Drop the lease on graceful shutdown (peers may then claim
        and re-enqueue whatever this shard left incomplete)."""
        try:
            lease_path(self.root, self.shard_index).unlink()
        except OSError:
            pass

    def check_fence(self) -> None:
        """Raise :class:`FencedError` if a newer epoch owns this slot.

        Installed as the journal append guard
        (:attr:`repro.serve.journal.JobJournal.fence`): every durable
        write by a cluster shard re-validates its ownership first, so
        a zombie's late appends are rejected rather than interleaved
        with its successor's.
        """
        if not self.fenced:
            current = read_fence_epoch(self.root, self.shard_index)
            if current <= self.epoch:
                return
            self.fenced = True
        raise FencedError(
            f"shard {self.shard_index} epoch {self.epoch} has been fenced "
            f"(slot taken over at epoch "
            f"{read_fence_epoch(self.root, self.shard_index)})"
        )

    # -- peer observation ----------------------------------------------

    def peers(self) -> Dict[int, ShardLease]:
        """Every slot's current lease (including this shard's own)."""
        out: Dict[int, ShardLease] = {}
        for slot in range(self.n_shards):
            lease = read_lease(self.root, slot)
            if lease is not None:
                out[slot] = lease
        return out

    def alive(self, now: Optional[float] = None) -> Set[int]:
        """Slots with unexpired leases; self is included unless fenced
        (routing must keep working even before the first renewal)."""
        now = self.clock() if now is None else now
        live = {
            slot
            for slot, lease in self.peers().items()
            if not lease.expired(now)
        }
        if not self.fenced:
            live.add(self.shard_index)
        elif self.shard_index in live:
            live.discard(self.shard_index)
        return live

    def dead_slots(self, now: Optional[float] = None) -> List[int]:
        """Peer slots with an expired or missing lease."""
        now = self.clock() if now is None else now
        peers = self.peers()
        dead = []
        for slot in range(self.n_shards):
            if slot == self.shard_index:
                continue
            lease = peers.get(slot)
            if lease is None or lease.expired(now):
                dead.append(slot)
        return dead

    def latest_epoch(self, slot: int) -> int:
        """The newest epoch known for a slot (lease or fence)."""
        lease = read_lease(self.root, slot)
        return max(
            lease.epoch if lease is not None else 0,
            read_fence_epoch(self.root, slot),
        )

    # -- takeover -------------------------------------------------------

    def fence_slot(self, slot: int) -> Tuple[str, int]:
        """Try to fence a dead slot; returns ``(outcome, new_epoch)``.

        ``outcome`` is ``"won"`` (this shard holds the O_EXCL takeover
        claim and has bumped the fence — it must now adopt the slot's
        incomplete journals), ``"ours"`` (this shard already claimed
        this epoch earlier — e.g. an on-demand resume adoption beat the
        periodic sweep), or ``"lost"`` (another peer claimed it).
        """
        if slot == self.shard_index:
            raise ClusterError("a shard cannot fence its own slot")
        new_epoch = self.latest_epoch(slot) + 1
        marker = self.root / f"takeover-{slot}-{new_epoch}.claim"
        try:
            fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            try:
                claimer = json.loads(marker.read_text()).get("by")
            except (OSError, ValueError, AttributeError):
                claimer = None
            outcome = "ours" if claimer == self.shard_index else "lost"
            return outcome, new_epoch
        except OSError:
            return "lost", new_epoch
        try:
            os.write(
                fd,
                json.dumps(
                    {"by": self.shard_index, "pid": os.getpid(),
                     "at": self.clock()},
                    sort_keys=True,
                ).encode("utf-8"),
            )
            os.fsync(fd)
        finally:
            os.close(fd)
        _write_atomic(
            fence_path(self.root, slot),
            {"shard": slot, "epoch": new_epoch, "by": self.shard_index},
        )
        return "won", new_epoch


# ----------------------------------------------------------------------
# Launcher


def shard_argv(args, index: int, n_shards: int) -> List[str]:
    """The child argv for one shard of ``--cluster N``."""
    port = 0 if args.port == 0 else args.port + index
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--shards", str(n_shards),
        "--shard-index", str(index),
        "--host", args.host,
        "--port", str(port),
        "--jobs", str(args.jobs),
        "--concurrency", str(args.concurrency),
        "--max-queue", str(args.max_queue),
        "--retries", str(args.retries if args.retries is not None else 2),
        "--heartbeat", str(args.heartbeat),
        "--lease-ttl", str(
            args.lease_ttl if args.lease_ttl is not None
            else DEFAULT_LEASE_TTL_S
        ),
    ]
    for pair in args.tenant_weight or []:
        argv += ["--tenant-weight", pair]
    if args.task_timeout is not None:
        argv += ["--task-timeout", str(args.task_timeout)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_journal:
        argv.append("--no-journal")
    return argv


def run_cluster(args) -> int:
    """``python -m repro serve --cluster N``: spawn and babysit N shards.

    Each shard is an ordinary single-shard server process sharing this
    environment's cache dir; with a nonzero ``--port`` shard ``i``
    listens on ``port + i``.  SIGTERM/SIGINT are forwarded to every
    shard so the whole cluster drains together; the exit code is 0
    only when every shard drained cleanly.
    """
    n_shards = int(args.cluster)
    if n_shards < 1:
        raise SystemExit(f"--cluster expects N >= 1, got {n_shards}")
    procs: List[subprocess.Popen] = []
    for index in range(n_shards):
        procs.append(subprocess.Popen(shard_argv(args, index, n_shards)))
    print(
        f"serve-cluster: started {n_shards} shard(s) "
        f"(pids {', '.join(str(p.pid) for p in procs)})",
        flush=True,
    )

    def forward(signum: int, _frame: object) -> None:
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass

    previous = {
        sig: signal.signal(sig, forward)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        codes = [proc.wait() for proc in procs]
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    bad = [code for code in codes if code != 0]
    if bad:
        print(f"serve-cluster: shard exit codes {codes}", flush=True)
    return 0 if not bad else 1
