"""Wire format of the sweep service: requests, tasks, event framing.

The server speaks a deliberately small slice of HTTP/1.1 over plain
``asyncio`` streams (no web framework — the repository's no-new-hard-
dependency rule applies to the service too):

* clients ``POST /submit`` a JSON request body;
* the response streams **newline-delimited JSON events**
  (``application/x-ndjson``) — or Server-Sent Events when the request
  carries ``Accept: text/event-stream`` — until the job's final
  ``done`` event;
* ``GET /metrics``, ``GET /cache/stats`` and ``GET /healthz`` return
  one JSON document;
* in cluster mode a shard that does not own a request's coalesce key
  answers ``307 Temporary Redirect`` with a ``Location`` header (and a
  JSON ``redirect`` body) naming the owning shard — the client repeats
  the same POST there (:func:`redirect_response`).

Request kinds (the ``"kind"`` field of the submit body):

``app``
    One :class:`~repro.experiments.harness.SweepTask`: an application
    at a problem size, ``speedup`` or ``constants`` mode, optional
    workload-generator ``params``/``generator`` tag — any
    SweepTask-expressible point, keyed by the content-addressed cache
    key.
``tasks``
    A list of ``app``-shaped specs executed as one sweep.
``experiment``
    A whole figure/table by name (``figure-3`` or the ``fig3`` alias),
    optionally ``quick``.
``fuzz``
    A bounded, seeded fuzzing run (``max_cases`` required so the run is
    deterministic and therefore coalescable).
``resume``
    Re-attach to an existing job by its durable ``job`` id, replaying
    journaled events with sequence numbers greater than the
    client-supplied ``after_seq`` and then tailing live events.  A
    resume creates no work: it streams a finished job's journal from
    disk, or subscribes to the live job.

Every request normalizes to a :class:`SubmitRequest` whose
:meth:`~SubmitRequest.coalesce_key` hashes the canonical payload
*minus the tenant* — two tenants asking for the same work coalesce
onto one job.

Every streamed event carries the job's durable ``job`` id and — for
journaled events — a monotonically increasing ``seq`` (1, 2, …), the
coordinate a client resumes from and deduplicates replays by.
Per-subscriber events (``accepted``, ``heartbeat``) carry ``seq`` only
informationally (the latest journaled value, on heartbeats) and are
never journaled.  Idle streams receive periodic ``heartbeat`` events
so clients (and intermediaries) can tell a slow job from a dead
connection.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Upper bound on request body size (bytes).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on tasks in one ``tasks`` request.
MAX_TASKS_PER_REQUEST = 256

#: Upper bound on fuzz candidates in one ``fuzz`` request.
MAX_FUZZ_CASES = 500

#: Reason phrases for the handful of statuses the server emits.
_REASONS = {
    200: "OK",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

VALID_KINDS = ("app", "tasks", "experiment", "fuzz", "resume")
VALID_MODES = ("speedup", "constants")


class ProtocolError(Exception):
    """A malformed or unacceptable request (rendered as HTTP 400)."""


# ----------------------------------------------------------------------
# Minimal HTTP plumbing


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP request: ``(method, target, headers, body)``.

    Headers are lower-cased; the body is read per ``Content-Length``
    (bounded by ``max_body``).  Raises :class:`ProtocolError` on
    malformed input and lets stream EOF errors propagate (a client that
    hung up is not a protocol error).
    """
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("client closed before sending a request")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError("malformed Content-Length")
    if length < 0 or length > max_body:
        raise ProtocolError(f"body too large ({length} > {max_body} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def json_response(status: int, payload: object, extra_headers: Tuple[str, ...] = ()) -> bytes:
    """A complete, self-delimited JSON response."""
    body = (json.dumps(payload, sort_keys=True, default=str) + "\n").encode()
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
        *extra_headers,
        "",
        "",
    ]
    return "\r\n".join(head).encode("latin-1") + body


def redirect_response(location: str, payload: Dict[str, object]) -> bytes:
    """A ``307 Temporary Redirect`` pointing at another cluster shard.

    The body is a JSON ``redirect`` event (``shard``, ``location``) so
    non-HTTP-aware clients can still see where to go; HTTP clients use
    the ``Location`` header.  307 (not 302) because the client must
    repeat the *POST* with the same body at the new shard.
    """
    return json_response(307, payload, (f"Location: {location}",))


def stream_head(sse: bool) -> bytes:
    """Response head opening an event stream (closed by connection end)."""
    content_type = "text/event-stream" if sse else "application/x-ndjson"
    head = [
        "HTTP/1.1 200 OK",
        f"Content-Type: {content_type}",
        "Cache-Control: no-store",
        "Connection: close",
        "",
        "",
    ]
    return "\r\n".join(head).encode("latin-1")


def encode_event(event: Dict[str, object], sse: bool = False) -> bytes:
    """Frame one event as an ndjson line or an SSE ``data:`` block."""
    blob = json.dumps(event, sort_keys=True, default=str)
    if sse:
        return f"data: {blob}\n\n".encode()
    return (blob + "\n").encode()


# ----------------------------------------------------------------------
# Submit requests


def canonical_experiment(name: str) -> str:
    """Resolve ``fig3``/``figure-3``/``table4``-style names; validate."""
    from repro.experiments.report import EXPERIMENTS

    text = str(name).strip().lower()
    if text in EXPERIMENTS:
        return text
    for prefix in ("fig", "table"):
        if text.startswith(prefix):
            suffix = text[len(prefix):].lstrip("-")
            candidate = f"{'figure' if prefix == 'fig' else 'table'}-{suffix}"
            if candidate in EXPERIMENTS:
                return candidate
    raise ProtocolError(
        f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
    )


@dataclass
class SubmitRequest:
    """One validated submit body, normalized for hashing and execution."""

    kind: str
    tenant: str = "default"
    #: normalized, kind-specific fields (tenant excluded) — the
    #: canonical identity the coalesce key hashes.
    spec: Dict[str, object] = field(default_factory=dict)

    def coalesce_key(self) -> str:
        """Content hash of the work requested (tenant-independent)."""
        blob = json.dumps(
            {"kind": self.kind, "spec": self.spec},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _task_spec(payload: Dict[str, object], where: str = "request") -> Dict[str, object]:
    """Validate and normalize one app/task spec."""
    from repro.apps.registry import ALL_APPS
    from repro.sim.memory import DEFAULT_PAGE_BYTES

    app = payload.get("app")
    if not isinstance(app, str) or app not in ALL_APPS:
        raise ProtocolError(
            f"{where}: unknown app {app!r}; available: {sorted(ALL_APPS)}"
        )
    mode = payload.get("mode", "speedup")
    if mode not in VALID_MODES:
        raise ProtocolError(
            f"{where}: mode must be one of {VALID_MODES}, got {mode!r}"
        )
    try:
        pages = float(payload.get("pages", 8.0))
        seed = int(payload.get("seed", 0))
        page_bytes = int(payload.get("page_bytes", DEFAULT_PAGE_BYTES))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{where}: {exc}")
    if pages <= 0:
        raise ProtocolError(f"{where}: pages must be positive")
    if page_bytes <= 0:
        raise ProtocolError(f"{where}: page_bytes must be positive")
    params = payload.get("params")
    if params is not None:
        if not isinstance(params, dict):
            raise ProtocolError(f"{where}: params must be an object")
        try:
            params = {str(k): float(v) for k, v in sorted(params.items())}
        except (TypeError, ValueError):
            raise ProtocolError(f"{where}: params values must be numbers")
    generator = payload.get("generator")
    if generator is not None and not isinstance(generator, str):
        raise ProtocolError(f"{where}: generator must be a string tag")
    spec: Dict[str, object] = {
        "app": app,
        "mode": mode,
        "pages": pages,
        "seed": seed,
        "page_bytes": page_bytes,
    }
    if params:
        spec["params"] = params
    if generator:
        spec["generator"] = generator
    if bool(payload.get("exact", False)):
        spec["exact"] = True
    return spec


def parse_submit(payload: object) -> SubmitRequest:
    """Validate a decoded submit body into a :class:`SubmitRequest`."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in VALID_KINDS:
        raise ProtocolError(
            f"kind must be one of {VALID_KINDS}, got {kind!r}"
        )
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise ProtocolError("tenant must be a non-empty string (<= 64 chars)")

    if kind == "app":
        spec: Dict[str, object] = _task_spec(payload)
    elif kind == "tasks":
        raw = payload.get("tasks")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("tasks requests need a non-empty 'tasks' list")
        if len(raw) > MAX_TASKS_PER_REQUEST:
            raise ProtocolError(
                f"too many tasks ({len(raw)} > {MAX_TASKS_PER_REQUEST})"
            )
        spec = {
            "tasks": [
                _task_spec(item if isinstance(item, dict) else {}, f"tasks[{i}]")
                for i, item in enumerate(raw)
            ]
        }
    elif kind == "experiment":
        spec = {
            "name": canonical_experiment(payload.get("name", "")),
            "quick": bool(payload.get("quick", False)),
        }
    elif kind == "resume":
        from repro.serve.journal import valid_job_id

        job = payload.get("job")
        if not isinstance(job, str) or not valid_job_id(job):
            raise ProtocolError(
                "resume requests need a 'job' id (as issued in the "
                "'accepted' event)"
            )
        after_seq = payload.get("after_seq", 0)
        if not isinstance(after_seq, int) or isinstance(after_seq, bool) \
                or after_seq < 0:
            raise ProtocolError("after_seq must be a non-negative integer")
        spec = {"job": job, "after_seq": after_seq}
    else:  # fuzz
        max_cases = payload.get("max_cases")
        if not isinstance(max_cases, int) or not 1 <= max_cases <= MAX_FUZZ_CASES:
            raise ProtocolError(
                f"fuzz requests need max_cases in 1..{MAX_FUZZ_CASES} "
                "(bounded candidates keep the run deterministic)"
            )
        try:
            seed = int(payload.get("seed", 0))
            tolerance_scale = float(payload.get("tolerance_scale", 1.0))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(str(exc))
        apps = payload.get("apps")
        if apps is not None:
            from repro.apps.registry import FUZZ_APPS

            if not isinstance(apps, list) or not all(
                isinstance(a, str) and a in FUZZ_APPS for a in apps
            ):
                raise ProtocolError(
                    f"fuzz apps must be a list drawn from {sorted(FUZZ_APPS)}"
                )
        spec = {
            "seed": seed,
            "max_cases": max_cases,
            "tolerance_scale": tolerance_scale,
        }
        if apps:
            spec["apps"] = sorted(apps)
    return SubmitRequest(kind=kind, tenant=tenant, spec=spec)


def build_tasks(request: SubmitRequest) -> List[object]:
    """The :class:`SweepTask` list of an ``app``/``tasks`` request."""
    from repro.experiments.harness import constants_task, speedup_task

    specs = (
        [request.spec] if request.kind == "app" else list(request.spec["tasks"])
    )
    tasks = []
    for spec in specs:
        common = dict(
            page_bytes=int(spec["page_bytes"]),
            seed=int(spec["seed"]),
            params=spec.get("params"),
            generator=spec.get("generator"),
        )
        if spec["mode"] == "constants":
            tasks.append(constants_task(spec["app"], spec["pages"], **common))
        else:
            if spec.get("exact"):
                common["cap_pages"] = None
            tasks.append(speedup_task(spec["app"], spec["pages"], **common))
    return tasks
