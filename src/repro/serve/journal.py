"""Durable job journal: the write-ahead log behind ``repro serve``.

PR 8's service kept every job's request and event stream in memory
only — a crash lost all queued and in-flight work, and a dropped
connection lost the client's place in the stream.  This module makes
the serve layer's job state *durable*: every admitted job gets an
append-only, fsynced journal file under ``<cache>/jobs/`` recording
its request envelope and every emitted stream event with a
monotonically increasing sequence number.  On restart the server
scans the directory and re-enqueues whatever never reached ``done``
(cheap to replay: the content-addressed result cache and single-flight
coalescing absorb already-finished work), and a reconnecting client
``resume``\\ s from any ``after_seq`` — replayed from the journal, then
attached live.

On-disk format
--------------

One file per job, ``<job_id>.wal``, containing framed records::

    <length:8 hex> <crc32:8 hex> <body bytes>\\n

``length`` is the byte length of ``body``; ``crc32`` is
``zlib.crc32(body)``; ``body`` is one compact, sorted-key JSON object.
The fixed 18-byte header makes recovery self-synchronizing from the
start of the file, and the checksum makes it *torn-tail tolerant*: a
record truncated by a crash mid-``write`` (or corrupted at the tail)
fails its length or checksum test and is discarded, along with
anything after it — every prefix of a journal is a valid journal.
Records are fsynced as written, so with an OS-default journaling
filesystem the tail is the only thing a ``SIGKILL`` can cost.

Record types (the ``"type"`` field of the body):

``request``
    First record of every journal: the job's identity (``job``,
    ``key``, ``kind``, ``tenant``) plus the normalized request
    ``spec`` — everything needed to re-enqueue the job after a crash.
``event``
    One emitted stream event: ``{"type": "event", "seq": N,
    "event": {...}}``.  ``seq`` starts at 1 and increases by exactly 1;
    the embedded event dict carries the same ``seq`` (and the job id)
    so clients can deduplicate replays.  Heartbeats are *not*
    journaled — they carry no payload, only liveness.

Concurrency: journal creation claims the final filename with
``O_CREAT | O_EXCL`` (the same pattern as ``ResultCache.store`` tmp
claims and chaos rule firings), so two server processes sharing one
cache directory can never interleave writes into one job's journal.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

#: Journal file suffix (``<job_id>.wal``).
JOURNAL_SUFFIX = ".wal"

#: ``"%08x %08x "`` — length field, crc field, two separators.
RECORD_HEADER_BYTES = 18

#: Hard bound on one record body (1 MiB matches the request-body bound;
#: also rejects absurd length fields while scanning damaged files).
MAX_RECORD_BYTES = 1 << 20

#: Job ids are filesystem names and URL path segments; keep them to a
#: strict, traversal-proof alphabet.
JOB_ID_RE = re.compile(r"^[0-9a-f]{8,64}(-[0-9a-f]{1,16})?$")


class JournalError(Exception):
    """A journal operation that could not be performed."""


class FencedError(JournalError):
    """A journal append rejected because the writer's epoch is stale.

    Raised by a :attr:`JobJournal.fence` guard (installed by the serve
    cluster layer) when the appending shard's slot has been taken over
    at a newer epoch: the writer is a *zombie* — presumed dead, its
    jobs already re-enqueued elsewhere — and must not interleave late
    records with its successor's.
    """


def valid_job_id(job_id: str) -> bool:
    return bool(JOB_ID_RE.match(job_id))


def encode_record(payload: Dict[str, object]) -> bytes:
    """Frame one record: ``<len:8x> <crc32:8x> <json>\\n``."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")
    if len(body) > MAX_RECORD_BYTES:
        raise JournalError(
            f"record too large ({len(body)} > {MAX_RECORD_BYTES} bytes)"
        )
    return b"%08x %08x " % (len(body), zlib.crc32(body)) + body + b"\n"


def decode_records(data: bytes) -> Tuple[List[Dict[str, object]], int]:
    """Parse framed records; returns ``(records, clean_byte_length)``.

    Parsing stops at the first record that is truncated, misframed, or
    fails its checksum — the torn tail a crash mid-append leaves
    behind.  ``clean_byte_length`` is the offset of that first bad
    byte: truncating the file there yields a journal every record of
    which is intact, so recovery can keep appending in place.
    """
    records: List[Dict[str, object]] = []
    offset = 0
    total = len(data)
    while True:
        header = data[offset : offset + RECORD_HEADER_BYTES]
        if len(header) < RECORD_HEADER_BYTES:
            break
        if header[8:9] != b" " or header[17:18] != b" ":
            break
        try:
            length = int(header[0:8], 16)
            crc = int(header[9:17], 16)
        except ValueError:
            break
        if length > MAX_RECORD_BYTES:
            break
        end = offset + RECORD_HEADER_BYTES + length + 1
        if end > total or data[end - 1 : end] != b"\n":
            break
        body = data[offset + RECORD_HEADER_BYTES : end - 1]
        if zlib.crc32(body) != crc:
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(payload, dict):
            break
        records.append(payload)
        offset = end
    return records, offset


def job_summary(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Digest a journal's records into a status document.

    Shape (shared by ``GET /jobs/<id>`` and recovery):
    ``job``/``key``/``kind``/``tenant``/``spec``/``created_at`` from
    the request record (absent fields are ``None``), ``shard``/
    ``epoch`` (the cluster slot and lease epoch that admitted the job;
    ``None`` for single-process journals), plus ``seq`` (the highest
    journaled sequence number), ``events`` (count), ``done`` and
    ``ok`` (from a journaled final ``done`` event, else
    ``False``/``None``).
    """
    summary: Dict[str, object] = {
        "job": None,
        "key": None,
        "kind": None,
        "tenant": None,
        "spec": None,
        "created_at": None,
        "shard": None,
        "epoch": None,
        "seq": 0,
        "events": 0,
        "done": False,
        "ok": None,
    }
    for record in records:
        rtype = record.get("type")
        if rtype == "request":
            for name in (
                "job", "key", "kind", "tenant", "spec", "created_at",
                "shard", "epoch",
            ):
                summary[name] = record.get(name)
        elif rtype == "event":
            summary["events"] = int(summary["events"]) + 1
            try:
                seq = int(record.get("seq", 0))
            except (TypeError, ValueError):
                seq = 0
            summary["seq"] = max(int(summary["seq"]), seq)
            event = record.get("event")
            if isinstance(event, dict) and event.get("event") == "done":
                summary["done"] = True
                ok = event.get("ok")
                summary["ok"] = bool(ok) if ok is not None else None
    return summary


class JobJournal:
    """One job's open journal: framed, fsynced, append-only.

    Thread-safe: the server publishes events from worker threads and
    the event loop; appends are serialized and each one is flushed to
    the file descriptor and fsynced before returning — *then* the
    event is handed to subscribers (journal-before-emit), so nothing a
    client ever saw can be lost to a crash.
    """

    def __init__(self, path: Path, fd: int) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = fd
        self._lock = threading.Lock()
        #: Optional append guard installed by the cluster layer
        #: (:meth:`repro.serve.cluster.ClusterMembership.check_fence`):
        #: called before every write and expected to raise
        #: :class:`FencedError` when this writer's shard epoch has been
        #: superseded by a takeover.
        self.fence: Optional[Callable[[], None]] = None

    @property
    def closed(self) -> bool:
        return self._fd is None

    def append(self, payload: Dict[str, object]) -> None:
        """Append one framed record durably (no-op after close).

        With a :attr:`fence` guard installed, the epoch check runs
        under the append lock *before* the write — a fenced (zombie)
        writer gets :class:`FencedError` and the file is untouched.
        """
        frame = encode_record(payload)
        with self._lock:
            if self._fd is None:
                return
            if self.fence is not None:
                self.fence()
            os.write(self._fd, frame)
            os.fsync(self._fd)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                finally:
                    self._fd = None


class JournalStore:
    """The journal directory: create, recover, scan, prune.

    Lives under the result cache root (``<cache>/jobs/``) so one
    ``--cache-dir`` / ``$REPRO_CACHE_DIR`` setting governs all durable
    state, and ``repro cache stats|prune`` naturally covers journals.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, job_id: str) -> Path:
        if not valid_job_id(job_id):
            raise JournalError(f"invalid job id {job_id!r}")
        return self.root / f"{job_id}{JOURNAL_SUFFIX}"

    def exists(self, job_id: str) -> bool:
        try:
            return self.path_for(job_id).is_file()
        except JournalError:
            return False

    def create(self, job_id: str) -> JobJournal:
        """Claim and open a fresh journal for ``job_id``.

        The final name is opened ``O_CREAT | O_EXCL`` — atomic on
        POSIX — so two writers (two server processes sharing a cache
        directory, or a recovery racing a resubmit) can never both own
        one job's journal; the loser gets :class:`FileExistsError`.
        """
        path = self.path_for(job_id)
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        return JobJournal(path, fd)

    def open_existing(self, job_id: str) -> Tuple[JobJournal, List[Dict[str, object]]]:
        """Re-open a journal for appending; returns ``(journal, records)``.

        The torn tail (if any) is truncated away first, so appended
        records always follow intact framing; the recovered records are
        returned so the caller can rebuild in-memory state (event
        buffer, next sequence number) in the same step.
        """
        path = self.path_for(job_id)
        fd = os.open(path, os.O_RDWR)
        try:
            data = os.read(fd, os.fstat(fd).st_size)
            records, clean = decode_records(data)
            if clean < len(data):
                os.ftruncate(fd, clean)
            os.lseek(fd, 0, os.SEEK_END)
        except OSError:
            os.close(fd)
            raise
        return JobJournal(path, fd), records

    def read(self, job_id: str) -> List[Dict[str, object]]:
        """The intact records of a journal (``[]`` when absent)."""
        try:
            data = self.path_for(job_id).read_bytes()
        except (JournalError, OSError):
            return []
        records, _ = decode_records(data)
        return records

    def job_ids(self) -> List[str]:
        if not self.root.is_dir():
            return []
        ids = [
            p.name[: -len(JOURNAL_SUFFIX)]
            for p in self.root.glob(f"*{JOURNAL_SUFFIX}")
        ]
        return sorted(i for i in ids if valid_job_id(i))

    def scan(self) -> Iterator[Tuple[str, List[Dict[str, object]]]]:
        """Yield ``(job_id, records)`` for every journal, oldest first.

        Ordering follows file mtime so crash recovery re-enqueues jobs
        roughly in their original admission order.
        """
        entries = []
        for job_id in self.job_ids():
            try:
                mtime = self.path_for(job_id).stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, job_id))
        for _, job_id in sorted(entries):
            yield job_id, self.read(job_id)

    def stats(self) -> Dict[str, object]:
        """Journal accounting for ``cache stats`` / ``/cache/stats``."""
        journals = 0
        completed = 0
        total_bytes = 0
        for job_id in self.job_ids():
            path = self.path_for(job_id)
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            journals += 1
            if job_summary(self.read(job_id))["done"]:
                completed += 1
        return {
            "journals": journals,
            "completed": completed,
            "recoverable": journals - completed,
            "journal_bytes": total_bytes,
        }

    def _protected_shards(self) -> Set[int]:
        """Cluster slots whose journals must not be pruned right now.

        A shard holding a live lease — or one whose journals a peer is
        mid-takeover on — may be about to append to or re-enqueue its
        journals; pruning them out from under it would turn a routine
        sweep into data loss.  The cluster dir is a sibling of the
        journal dir (``<cache>/cluster/`` next to ``<cache>/jobs/``);
        absent (the single-process case) nothing is protected.
        """
        from repro.serve.cluster import CLUSTER_DIRNAME, protected_shards

        return protected_shards(self.root.parent / CLUSTER_DIRNAME)

    def prune(self, days: float) -> Dict[str, int]:
        """Sweep old *completed* journals and orphaned tmp litter.

        Incomplete journals are never pruned — they are recoverable
        work, and the server re-enqueues them on its next start.
        Journals admitted by a cluster shard whose lease is live (or
        mid-takeover) are skipped too, whatever their age: their owner
        may append or recover them concurrently.  Returns
        ``{"journals": removed, "tmp": removed, "leased": skipped}``.
        """
        if days < 0:
            raise ValueError("days cannot be negative")
        cutoff = time.time() - days * 86400.0
        protected = self._protected_shards()
        removed = {"journals": 0, "tmp": 0, "leased": 0}
        for job_id in self.job_ids():
            path = self.path_for(job_id)
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                summary = job_summary(self.read(job_id))
                shard = summary.get("shard")
                if isinstance(shard, int) and shard in protected:
                    removed["leased"] += 1
                    continue
                if not summary["done"]:
                    continue
                path.unlink()
                removed["journals"] += 1
            except OSError:
                pass
        if self.root.is_dir():
            for tmp in self.root.glob("*.tmp*"):
                try:
                    if tmp.stat().st_mtime <= cutoff:
                        tmp.unlink()
                        removed["tmp"] += 1
                except OSError:
                    pass
        return removed
