"""Serve cluster failover smoke: ``python -m repro.serve.cluster_smoke``.

The end-to-end proof of the PR 10 failover invariant, against two real
shard processes sharing one cache dir and a real ``SIGKILL``:

1. boot shards A (``--shard-index 0``) and B (``--shard-index 1``)
   with a shard-scoped chaos rule that SIGKILLs **shard A only** at
   its first ``progress`` publish;
2. a resilient client submits — to shard B — a request whose coalesce
   key the ring assigns to shard A; B answers 307 and the client
   follows the redirect;
3. A journals the request, starts the sweep, and dies mid-publish;
   the client's connection drops and it falls back to its origin (B);
4. B redirects back to A while A's lease still looks alive; once the
   lease expires, B fences slot 0 (epoch bump), adopts the journal
   with ``base_seq`` continuation, and serves the resumed stream;
5. the stitched stream is gapless (every seq exactly once, from 1)
   and its result digest equals an uninterrupted run's.

On failure the journal and cluster directories are copied to
``./serve-cluster-journal`` so CI can upload them as an artifact.
Exit status 0 on success.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List

from repro.faults import chaos
from repro.serve import client, protocol
from repro.serve.cluster import HashRing, read_fence_epoch
from repro.serve.journal import JournalStore, job_summary
from repro.serve.resilience_smoke import pump_output, result_digest
from repro.serve.smoke import BOOT_TIMEOUT_S, wait_for_listen

STREAM_TIMEOUT_S = 300.0
LEASE_TTL_S = 1.0
ARTIFACT_DIR = "serve-cluster-journal"


def request_owned_by_shard_0() -> Dict[str, object]:
    """An app submit the two-shard ring assigns to shard 0."""
    ring = HashRing(2)
    for seed in range(256):
        doc: Dict[str, object] = {
            "kind": "app", "app": "array-insert", "mode": "speedup",
            "pages": 2.0, "seed": seed, "tenant": "smoke",
        }
        if ring.owner(protocol.parse_submit(doc).coalesce_key()) == 0:
            return doc
    raise AssertionError("no seed hashed to shard 0")


def start_shard(
    cache_dir: str, index: int, chaos_spec: str, history_path: str
) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_HISTORY_PATH"] = history_path
    env[chaos.CHAOS_ENV] = chaos_spec
    env.setdefault("PYTHONUNBUFFERED", "1")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--shards", "2", "--shard-index", str(index),
         "--port", "0", "--jobs", "1",
         "--lease-ttl", str(LEASE_TTL_S)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-serve-cluster-")
    cache_dir = os.path.join(tmp, "cache")
    cluster_dir = os.path.join(cache_dir, "cluster")
    history_path = os.path.join(tmp, "history.jsonl")
    chaos_spec = os.path.join(tmp, "chaos.json")
    # Shard-scoped kill: only the process running --shard-index 0 dies.
    chaos.write_spec(
        chaos_spec,
        os.path.join(tmp, "chaos-state"),
        [{"match": "serve.publish:progress", "mode": "kill",
          "times": 1, "shard": 0}],
    )
    request = request_owned_by_shard_0()
    procs: List["subprocess.Popen[str]"] = []
    try:
        # --- two shards, one cache dir --------------------------------
        proc_a = start_shard(cache_dir, 0, chaos_spec, history_path)
        procs.append(proc_a)
        base_a = wait_for_listen(proc_a)
        pump_output(proc_a, [])
        proc_b = start_shard(cache_dir, 1, chaos_spec, history_path)
        procs.append(proc_b)
        base_b = wait_for_listen(proc_b)
        lines_b: List[str] = []
        pump_output(proc_b, lines_b)
        print(f"smoke: shard A at {base_a}, shard B at {base_b}", flush=True)

        # --- client submits via the WRONG shard ------------------------
        out: Dict[str, object] = {}

        def run_client() -> None:
            try:
                out["events"] = list(
                    client.stream_submit_resilient(
                        base_b,
                        dict(request),
                        reconnects=12,
                        backoff_s=0.5,
                        timeout=STREAM_TIMEOUT_S,
                        log=lambda msg: print(f"[client] {msg}", flush=True),
                    )
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                out["error"] = exc

        worker = threading.Thread(target=run_client, daemon=True)
        worker.start()

        # --- chaos fires: shard A dies by SIGKILL mid-publish ----------
        rc_a = proc_a.wait(timeout=BOOT_TIMEOUT_S + STREAM_TIMEOUT_S)
        assert rc_a == -signal.SIGKILL, (
            f"shard A exited {rc_a}, expected SIGKILL ({-signal.SIGKILL})"
        )
        print(f"smoke: shard A killed by chaos (rc={rc_a})", flush=True)

        # --- the client survives via B's fenced takeover ---------------
        worker.join(timeout=STREAM_TIMEOUT_S)
        assert not worker.is_alive(), "client did not finish in time"
        if "error" in out:
            raise AssertionError(f"client failed: {out['error']!r}")
        events: List[Dict[str, object]] = out["events"]  # type: ignore[assignment]

        kinds = [e.get("event") for e in events]
        assert kinds[-1] == "done" and events[-1].get("ok") is True, events[-1]
        assert kinds.count("accepted") >= 2, "client never resumed"
        recovered = [e for e in events if e.get("event") == "recovered"]
        assert recovered and recovered[0].get("takeover_from") == 0, (
            f"no takeover recovery event: {kinds}"
        )
        seqs = [e["seq"] for e in events if "seq" in e]
        assert seqs == list(range(1, len(seqs) + 1)), (
            f"seqs not gapless/duplicate-free across shards: {seqs}"
        )

        # --- cluster state: fence bumped, takeover counted -------------
        assert read_fence_epoch(cluster_dir, 0) >= 2, (
            "slot 0's fence epoch was never bumped"
        )
        metrics = client.get_json(base_b, "/metrics")
        assert metrics["cluster.takeovers_total"] == 1.0, metrics
        assert metrics["cluster.takeover_jobs_adopted"] == 1.0, metrics
        store = JournalStore(os.path.join(cache_dir, "jobs"))
        done = [
            job_id for job_id in store.job_ids()
            if job_summary(store.read(job_id))["done"]
        ]
        assert done, "the adopted job's journal never reached done"

        # --- identical results to an uninterrupted run ------------------
        # Shard 0 is dead, so B now owns the whole ring and serves the
        # same request locally (warm cache; values must be identical).
        clean = list(
            client.stream_submit(base_b, dict(request), timeout=STREAM_TIMEOUT_S)
        )
        assert clean[-1].get("ok") is True, clean[-1]
        assert result_digest(events) == result_digest(clean), (
            "failover results differ from a clean run"
        )
        print("smoke: failover digest == clean digest", flush=True)

        # --- graceful drain writes the admission history ----------------
        proc_b.send_signal(signal.SIGTERM)
        rc_b = proc_b.wait(timeout=60)
        assert rc_b == 0, f"shard B exited {rc_b} on SIGTERM"
        with open(history_path) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        serve_records = [r for r in records if r.get("kind") == "serve"]
        assert serve_records, f"no serve history records in {records}"
        tail = serve_records[-1]
        assert tail["shard"] == 1 and "admission" in tail, tail
        assert tail["cluster"]["takeovers_total"] == 1.0, tail

        print("smoke: serve cluster failover smoke passed", flush=True)
        return 0
    except BaseException:
        shutil.rmtree(ARTIFACT_DIR, ignore_errors=True)
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        for sub in ("jobs", "cluster"):
            src = os.path.join(cache_dir, sub)
            if os.path.isdir(src):
                shutil.copytree(src, os.path.join(ARTIFACT_DIR, sub))
        print(f"smoke: state preserved at ./{ARTIFACT_DIR}", flush=True)
        raise
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
