"""The asyncio sweep server: ``python -m repro serve``.

Architecture (one process, three layers):

* **Front-end** — ``asyncio.start_server`` accepts connections and
  parses the minimal HTTP of :mod:`repro.serve.protocol`.  A ``POST
  /submit`` becomes a :class:`Job`; identical in-flight requests
  (same :meth:`~repro.serve.protocol.SubmitRequest.coalesce_key`)
  attach to the existing job instead of creating a new one —
  **request-level single-flight** — and every subscriber replays the
  job's buffered events before tailing live ones.
* **Scheduler** — admitted jobs enter per-tenant FIFOs drained by a
  :class:`FairQueue` (stride scheduling: tenants advance a virtual
  clock by ``1/weight`` per dispatched job, so a weight-2 tenant gets
  twice the throughput under contention).  Backpressure is bounded:
  when ``max_queue`` jobs are already waiting, new work is rejected
  with HTTP 429.  At most ``concurrency`` jobs execute at once, each
  on a worker thread.
* **Execution** — a job thread scopes its own
  :class:`~repro.experiments.harness.HarnessSettings` and runs the
  ordinary harness path; distinct uncached tasks flow through the
  shared :class:`~repro.serve.scheduler.SingleFlight` table —
  **task-level single-flight** — then across the existing process pool
  (``jobs`` workers per sweep) with the PR 4 timeout/retry/isolation
  machinery, memoizing into ``.repro_cache/`` as usual.

``serve.*`` counters (requests, rejections, both coalescing levels,
queue depth, per-tenant wait times) live in a
:class:`~repro.trace.metrics.MetricsRegistry` exposed at ``GET
/metrics``.  SIGTERM/SIGINT starts a graceful drain: new submits get
503, queued and running jobs complete, streams finish, then the
process exits 0.

**Durability** (PR 9): every admitted job gets a durable id and an
append-only, fsynced journal (:mod:`repro.serve.journal`) under
``<cache>/jobs/`` recording its request envelope and every stream
event — *journal-before-emit*, so nothing a client saw can be lost.
On startup the journal directory is scanned and every job that never
reached ``done`` is re-enqueued (cheap: the content-addressed cache
and single-flight coalescing absorb already-finished work).  Clients
re-attach with a ``resume`` request (``job`` + ``after_seq``): the
journaled tail is replayed, then the stream tails live events.  Idle
streams carry periodic ``heartbeat`` events, and a subscriber that
stops reading for ``subscriber_stall_s`` is disconnected instead of
wedging the fan-out.  ``GET /jobs/<id>`` reports any job's status —
live or from its journal.

**Clustering** (PR 10): with ``--shards N --shard-index I`` (or the
``--cluster N`` launcher) several server processes share one cache
dir.  Job keys are consistent-hashed onto shards
(:class:`repro.serve.cluster.HashRing`); a submit landing on the
wrong shard gets ``307 + Location`` pointing at the owner.  Each
shard heartbeats a fsynced lease under ``<cache>/cluster/``; when a
lease expires, one surviving peer wins an O_EXCL takeover claim,
bumps the slot's *fence epoch* (so the dead shard — should it turn
out to be a zombie — has its late journal appends rejected with
:class:`~repro.serve.journal.FencedError`), and re-enqueues the dead
shard's incomplete journals through the ordinary recovery path with
``base_seq`` continuation: a client that resumes after the takeover
stitches the stream gaplessly.  ``GET /cluster`` reports membership;
``cluster.*`` counters land in ``/metrics``; a drain appends an
admission/queue-wait summary to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import os
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.experiments import harness
from repro.faults import chaos
from repro.serve import cluster as cluster_mod
from repro.serve import journal as journal_mod
from repro.serve import protocol
from repro.serve.cluster import ClusterError, ClusterMembership, HashRing
from repro.serve.journal import FencedError, JournalError, JournalStore
from repro.serve.scheduler import SingleFlight
from repro.trace.metrics import MetricsRegistry

#: Default TCP port (unassigned range; "AP" on a phone keypad is 27).
DEFAULT_PORT = 8927

#: Completed jobs kept addressable in memory for status/resume before
#: falling back to their on-disk journals.
FINISHED_JOBS_RETAINED = 256


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: worker processes per sweep (the harness pool, as on the CLI).
    jobs: int = 1
    #: jobs executing at once (worker threads; the process-pool total
    #: is bounded by ``concurrency * jobs``).
    concurrency: int = 2
    #: queued-job bound; submits beyond it are rejected with 429.
    max_queue: int = 64
    #: per-tenant scheduling weights (unlisted tenants get 1.0).
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    task_timeout_s: Optional[float] = None
    retries: int = 2
    use_cache: bool = True
    cache_dir: Optional[str] = None
    #: seconds of stream silence before a ``heartbeat`` event; <= 0
    #: disables heartbeats.
    heartbeat_s: float = 10.0
    #: seconds a subscriber may stall (unread backpressure) before the
    #: server disconnects it rather than wedge the fan-out.
    subscriber_stall_s: float = 30.0
    #: write-ahead job journals under ``<cache>/jobs/``.
    use_journal: bool = True
    #: cluster size this process is one shard of (1 = standalone).
    shards: int = 1
    #: this process's shard slot (``None`` outside cluster mode; with
    #: ``shards > 1`` it defaults to 0).
    shard_index: Optional[int] = None
    #: heartbeat lease time-to-live; a peer whose lease is older is
    #: presumed dead and its incomplete journals become claimable.
    lease_ttl_s: float = cluster_mod.DEFAULT_LEASE_TTL_S
    #: ``host:port`` peers should redirect clients to (defaults to the
    #: actual listen address — override behind NAT/proxies).
    advertise: Optional[str] = None

    @property
    def cluster_enabled(self) -> bool:
        return self.shards > 1 or self.shard_index is not None

    def resolved_shard_index(self) -> int:
        return self.shard_index if self.shard_index is not None else 0

    def resolve_cluster_dir(self) -> Path:
        """Where lease/fence/takeover files live (sibling of jobs/)."""
        return (
            Path(self.job_settings().resolve_cache_dir())
            / cluster_mod.CLUSTER_DIRNAME
        )

    def job_settings(self) -> harness.HarnessSettings:
        """The harness policy each job thread scopes in."""
        return harness.HarnessSettings(
            jobs=self.jobs,
            use_cache=self.use_cache,
            cache_dir=self.cache_dir,
            task_timeout_s=self.task_timeout_s,
            retries=self.retries,
        )

    def resolve_journal_dir(self) -> Path:
        """Where job journals live (inside the result-cache root)."""
        return Path(self.job_settings().resolve_cache_dir()) / "jobs"


class FairQueue:
    """Weighted fair queuing over per-tenant FIFOs (stride scheduling).

    Each tenant lane carries a virtual time; :meth:`pop` always drains
    the lane with the smallest ``(vtime, tenant)`` and advances it by
    ``1 / weight``, so relative throughput under contention is
    proportional to weight.  A lane going idle is clamped forward to
    the global virtual clock on its next push — returning tenants
    cannot claim credit for the time they were absent.

    Deterministic and synchronous; the server only touches it from the
    event-loop thread.
    """

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        self._weights = dict(weights or {})
        self._default = default_weight
        self._queues: Dict[str, Deque[object]] = {}
        self._vtimes: Dict[str, float] = {}
        self._vclock = 0.0

    def weight(self, tenant: str) -> float:
        w = self._weights.get(tenant, self._default)
        return w if w > 0 else self._default

    def push(self, tenant: str, item: object) -> None:
        lane = self._queues.get(tenant)
        if lane is None:
            lane = self._queues[tenant] = deque()
        if not lane:
            self._vtimes[tenant] = max(
                self._vtimes.get(tenant, 0.0), self._vclock
            )
        lane.append(item)

    def pop(self) -> Optional[object]:
        candidates = [
            (self._vtimes[tenant], tenant)
            for tenant, lane in self._queues.items()
            if lane
        ]
        if not candidates:
            return None
        _, tenant = min(candidates)
        item = self._queues[tenant].popleft()
        self._vclock = self._vtimes[tenant]
        self._vtimes[tenant] += 1.0 / self.weight(tenant)
        return item

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._queues.values())

    def depth(self, tenant: str) -> int:
        lane = self._queues.get(tenant)
        return len(lane) if lane else 0


class Job:
    """One admitted unit of work plus its broadcast event buffer.

    Events are appended (from any thread) via :meth:`publish`; each
    subscriber's :meth:`stream` replays the buffer from the start and
    then tails live events, so a coalesced client joining mid-run sees
    the identical sequence the first client saw.

    Every published event gets a monotonically increasing ``seq`` and
    the durable ``job`` id, and — when a journal is attached — is
    fsynced to disk *before* any subscriber can observe it
    (journal-before-emit), so a crash can lose at most events no
    client ever saw.  ``base_seq`` continues the numbering of a job
    recovered from its journal: replayed and re-run events never share
    a seq.
    """

    def __init__(
        self,
        key: str,
        request: protocol.SubmitRequest,
        loop: asyncio.AbstractEventLoop,
        job_id: Optional[str] = None,
        journal: Optional[journal_mod.JobJournal] = None,
        base_seq: int = 0,
    ) -> None:
        self.key = key
        self.request = request
        self.loop = loop
        self.job_id = job_id if job_id is not None else key[:16]
        self.journal = journal
        self.seq = base_seq
        self.events: List[Dict[str, object]] = []
        self.done = False
        self.ok: Optional[bool] = None
        self.recovered = False
        self.enqueued_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.subscribers = 1
        self.journal_errors = 0
        #: appends rejected by epoch fencing (this process is a zombie
        #: whose slot was taken over) — a subset of journal_errors.
        self.fenced_rejections = 0
        #: server callback invoked (from the publishing thread) on a
        #: fenced append, so the cluster counter updates immediately.
        self.on_fenced: Optional[Callable[[], None]] = None
        #: this server's shard index, threaded into chaos sites so
        #: shard-scoped kill rules target exactly one process.
        self.chaos_shard: Optional[int] = None
        self._seq_lock = threading.Lock()
        self._update = asyncio.Event()

    def publish(self, event: Dict[str, object], done: bool = False) -> None:
        """Append one event (thread-safe; marks the job done if asked).

        Stamps ``seq``/``job``, journals (fsync) the event, *then*
        hands it to the event loop for fan-out.  A journal write
        failure degrades to in-memory-only rather than failing the
        job.
        """
        with self._seq_lock:
            self.seq += 1
            event = dict(event, job=self.job_id, seq=self.seq)
            if self.journal is not None:
                try:
                    self.journal.append(
                        {"type": "event", "seq": self.seq, "event": event}
                    )
                except FencedError:
                    # This process is a zombie: its slot was taken over
                    # and a peer owns the journal now.  The append was
                    # rejected before touching the file; keep fanning
                    # out in memory so local subscribers still unblock.
                    self.journal_errors += 1
                    self.fenced_rejections += 1
                    callback = self.on_fenced
                    if callback is not None:
                        callback()
                except (OSError, JournalError):
                    self.journal_errors += 1
        chaos.maybe_injure_serve(
            f"serve.publish:{event.get('event')}", self.job_id,
            modes=("kill",), shard=self.chaos_shard,
        )

        def _apply() -> None:
            self.events.append(event)
            if done:
                self.done = True
                self.ok = bool(event.get("ok")) if "ok" in event else None
            self._update.set()

        self.loop.call_soon_threadsafe(_apply)

    def close_journal(self) -> None:
        if self.journal is not None:
            self.journal.close()

    @property
    def status(self) -> str:
        if self.done:
            return "done"
        return "running" if self.started_at is not None else "queued"

    async def stream(
        self, after_seq: int = 0, heartbeat_s: Optional[float] = None
    ):
        """Yield events with ``seq > after_seq`` until the job is done.

        With ``heartbeat_s`` set, a synthetic ``heartbeat`` event
        (never journaled, no seq of its own — it carries the latest
        published seq informationally) is yielded whenever the stream
        has been idle that long, keeping slow jobs' connections alive
        through proxies and client read timeouts.
        """
        index = 0
        while True:
            self._update.clear()
            while index < len(self.events):
                event = self.events[index]
                index += 1
                if int(event.get("seq", 0)) > after_seq:  # type: ignore[arg-type]
                    yield event
            if self.done:
                return
            if heartbeat_s is None or heartbeat_s <= 0:
                await self._update.wait()
                continue
            try:
                await asyncio.wait_for(self._update.wait(), timeout=heartbeat_s)
            except asyncio.TimeoutError:
                yield {
                    "event": "heartbeat",
                    "job": self.job_id,
                    "last_seq": self.seq,
                    "status": self.status,
                }


class SweepServer:
    """The long-running multi-tenant simulation service."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.serve_ns = self.registry.namespace("serve")
        self.singleflight = SingleFlight(
            metrics=self.registry.namespace("serve.tasks")
        )
        self.queue = FairQueue(config.tenant_weights)
        self.jobs_by_key: Dict[str, Job] = {}
        self.jobs_by_id: Dict[str, Job] = {}
        self._finished_ids: Deque[str] = deque()
        self.journals: Optional[JournalStore] = (
            JournalStore(config.resolve_journal_dir())
            if config.use_journal
            else None
        )
        self.recovered_jobs = 0
        self.active = 0
        self.draining = False
        self.cluster: Optional[ClusterMembership] = None
        self.ring: Optional[HashRing] = (
            HashRing(config.shards) if config.cluster_enabled else None
        )
        self.cluster_ns = self.registry.namespace("cluster")
        if config.cluster_enabled:
            # Pre-create the headline counters so /metrics reports
            # zeros rather than omitting them before the first event.
            for name in (
                "redirects_total", "takeovers_total",
                "fenced_appends_rejected",
            ):
                self.cluster_ns.counter(name)
        #: newest epoch per dead slot already swept for takeover —
        #: avoids rescanning the journal dir every lease tick for a
        #: peer that stays dead.
        self._slot_epochs_handled: Dict[int, int] = {}
        self._fence_reported = False
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, config.concurrency),
            thread_name_prefix="repro-serve",
        )
        self.wait_hist = self.registry.histogram(
            "serve.wait_ms", [1.0, 10.0, 100.0, 1000.0, 10000.0]
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Future] = None
        self._cluster_task: Optional[asyncio.Future] = None
        self._wake: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> List[Tuple[str, int]]:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        # Bind first: in cluster mode the lease advertises the *actual*
        # listen address (--port 0 picks a free port).  Recovery still
        # runs before any request is served — it is synchronous on the
        # loop thread, so accepted connections queue behind it.
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        if self.config.cluster_enabled:
            host, port = self.addresses()[0]
            self.cluster = ClusterMembership(
                self.config.resolve_cluster_dir(),
                self.config.resolved_shard_index(),
                self.config.shards,
                addr=self.config.advertise or f"{host}:{port}",
                ttl_s=self.config.lease_ttl_s,
            )
            try:
                self.cluster.acquire()
            except ClusterError:
                self._server.close()
                raise
        self.recovered_jobs = self._recover_jobs()
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        if self.cluster is not None:
            self._cluster_task = asyncio.ensure_future(self._cluster_loop())
        return self.addresses()

    @staticmethod
    def _recoverable_request(
        summary: Dict[str, object]
    ) -> Optional[Tuple[protocol.SubmitRequest, str]]:
        """Rebuild ``(request, key)`` from a journal summary, if usable."""
        kind = summary["kind"]
        spec = summary["spec"]
        if (
            kind not in protocol.VALID_KINDS
            or kind == "resume"
            or not isinstance(spec, dict)
        ):
            return None  # unusable journal; leave it for inspection
        request = protocol.SubmitRequest(
            kind=str(kind),
            tenant=str(summary["tenant"] or "default"),
            spec=spec,
        )
        return request, str(summary["key"] or request.coalesce_key())

    def _recover_jobs(self) -> int:
        """Re-enqueue every journaled job that never reached ``done``.

        Runs before any request is served, on the loop thread.  Safe to
        repeat across restarts: re-running finished work hits the
        content-addressed cache, and concurrent duplicates coalesce in
        the single-flight tables.  When two incomplete journals share a
        coalesce key (a job crashed, was resubmitted, crashed again)
        the oldest wins and the others are closed out as superseded so
        they become prunable.

        In cluster mode a cold-booting shard claims only journals its
        previous incarnation admitted (``shard == me``), plus
        pre-cluster journals whose key the ring assigns to it; another
        shard's incomplete journals belong to that shard — or, once its
        lease expires, to whichever peer wins the fenced takeover
        (:meth:`_check_takeovers`).
        """
        if self.journals is None:
            return 0
        assert self._loop is not None and self._wake is not None
        me = self.config.resolved_shard_index()
        recovered = 0
        for job_id, records in self.journals.scan():
            summary = journal_mod.job_summary(records)
            if summary["done"]:
                continue
            parsed = self._recoverable_request(summary)
            if parsed is None:
                continue
            request, key = parsed
            if self.ring is not None:
                shard = summary.get("shard")
                if isinstance(shard, int):
                    if shard != me:
                        continue
                elif self.ring.owner(key) != me:
                    continue
            if self._enqueue_recovered(job_id, summary, request, key):
                recovered += 1
        if recovered:
            self._wake.set()
        return recovered

    def _enqueue_recovered(
        self,
        job_id: str,
        summary: Dict[str, object],
        request: protocol.SubmitRequest,
        key: str,
        takeover_from: Optional[int] = None,
    ) -> Optional[Job]:
        """Re-open one incomplete journal as a live queued job.

        Shared by startup recovery, the periodic dead-peer sweep, and
        on-demand resume adoption.  ``base_seq`` continues the journal's
        numbering so replayed and re-run events never share a seq.
        Duplicate keys are closed out as superseded instead.
        """
        assert self.journals is not None
        assert self._loop is not None and self._wake is not None
        if job_id in self.jobs_by_id:
            return None  # already live here
        if key in self.jobs_by_key:
            self._close_superseded(job_id, summary)
            return None
        try:
            jnl, records = self.journals.open_existing(job_id)
        except (OSError, JournalError):
            return None
        if self.cluster is not None:
            jnl.fence = self.cluster.check_fence
        job = Job(
            key,
            request,
            self._loop,
            job_id=job_id,
            journal=jnl,
            base_seq=int(summary["seq"]),  # type: ignore[call-overload]
        )
        job.recovered = True
        job.subscribers = 0
        self._wire_cluster_hooks(job)
        job.events = [
            rec["event"]
            for rec in records
            if rec.get("type") == "event" and isinstance(rec.get("event"), dict)
        ]
        self.jobs_by_key[key] = job
        self.jobs_by_id[job_id] = job
        recovered_event: Dict[str, object] = {
            "event": "recovered", "tenant": request.tenant,
        }
        if takeover_from is not None:
            recovered_event["takeover_from"] = takeover_from
        job.publish(recovered_event)
        self.queue.push(request.tenant, job)
        self.serve_ns.counter("recovered_jobs").add()
        self._wake.set()
        return job

    def _wire_cluster_hooks(self, job: Job) -> None:
        """Point a job's fencing/chaos callbacks at this server."""
        if self.config.cluster_enabled:
            job.chaos_shard = self.config.resolved_shard_index()
        if self.cluster is not None:
            job.on_fenced = self._on_fenced_append

    def _on_fenced_append(self) -> None:
        # Called from publishing worker threads; Counter.add is a plain
        # float += (GIL-atomic enough for a diagnostic counter).
        self.cluster_ns.counter("fenced_appends_rejected").add()
        self.serve_ns.counter("journal_errors").add()

    def _close_superseded(self, job_id: str, summary: Dict[str, object]) -> None:
        """Finish a duplicate incomplete journal so it becomes prunable."""
        assert self.journals is not None
        try:
            jnl, _records = self.journals.open_existing(job_id)
            if self.cluster is not None:
                jnl.fence = self.cluster.check_fence
            seq = int(summary["seq"]) + 1  # type: ignore[call-overload]
            jnl.append(
                {
                    "type": "event",
                    "seq": seq,
                    "event": {
                        "event": "done",
                        "ok": False,
                        "superseded": True,
                        "job": job_id,
                        "seq": seq,
                    },
                }
            )
            jnl.close()
            self.serve_ns.counter("superseded_journals").add()
        except (OSError, JournalError):
            pass

    # ------------------------------------------------------------------
    # Cluster membership (event-loop thread)

    async def _cluster_loop(self) -> None:
        """Renew this shard's lease and sweep for dead peers."""
        assert self.cluster is not None and self._drained is not None
        interval = max(0.05, self.config.lease_ttl_s / 3.0)
        while not self._drained.is_set():
            try:
                await asyncio.wait_for(self._drained.wait(), timeout=interval)
                break  # drained: close() releases the lease
            except asyncio.TimeoutError:
                pass
            if not self.cluster.renew():
                if not self._fence_reported:
                    self._fence_reported = True
                    print(
                        f"serve: shard {self.cluster.shard_index} fenced "
                        f"(epoch {self.cluster.epoch} superseded by "
                        f"{cluster_mod.read_fence_epoch(self.cluster.root, self.cluster.shard_index)}); "
                        "draining",
                        flush=True,
                    )
                    self.request_shutdown()
                continue  # a zombie must not take over anything
            self._check_takeovers()

    def _check_takeovers(self) -> None:
        """Fence dead peers and adopt their incomplete journals.

        Journal scans only happen while a peer slot is dead *and* its
        newest known epoch is one we have not swept yet — a peer that
        stays dead (or never started) costs a few lease-file reads per
        tick, not a directory walk.
        """
        if self.cluster is None or self.journals is None:
            return
        dead = self.cluster.dead_slots()
        if not dead:
            return
        pending_by_slot: Optional[Dict[int, List[Tuple[str, Dict[str, object]]]]] = None
        for slot in dead:
            latest = self.cluster.latest_epoch(slot)
            if self._slot_epochs_handled.get(slot, -1) >= latest:
                continue
            if pending_by_slot is None:
                pending_by_slot = {}
                for job_id, records in self.journals.scan():
                    summary = journal_mod.job_summary(records)
                    if summary["done"]:
                        continue
                    shard = summary.get("shard")
                    if isinstance(shard, int):
                        pending_by_slot.setdefault(shard, []).append(
                            (job_id, summary)
                        )
            jobs = pending_by_slot.get(slot, [])
            if not jobs:
                # Nothing to adopt: no takeover needed (and no fence —
                # a restarting peer should not find its epoch burned).
                self._slot_epochs_handled[slot] = latest
                continue
            outcome, epoch = self.cluster.fence_slot(slot)
            self._slot_epochs_handled[slot] = epoch
            if outcome == "lost":
                continue  # another peer owns this takeover
            if outcome == "won":
                self.cluster_ns.counter("takeovers_total").add()
                print(
                    f"serve: shard {self.cluster.shard_index} taking over "
                    f"{len(jobs)} job(s) from dead shard {slot} "
                    f"(fence epoch {epoch})",
                    flush=True,
                )
            adopted = 0
            for job_id, summary in jobs:
                parsed = self._recoverable_request(summary)
                if parsed is None:
                    continue
                request, key = parsed
                if self._enqueue_recovered(
                    job_id, summary, request, key, takeover_from=slot
                ):
                    adopted += 1
            self.cluster_ns.counter("takeover_jobs_adopted").add(adopted)

    def addresses(self) -> List[Tuple[str, int]]:
        assert self._server is not None
        return [s.getsockname()[:2] for s in self._server.sockets]

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        if self.draining:
            return
        self.draining = True
        if self._wake is not None:
            self._wake.set()

    async def wait_drained(self) -> None:
        assert self._drained is not None
        await self._drained.wait()

    async def close(self) -> None:
        if self._cluster_task is not None:
            self._cluster_task.cancel()
            try:
                await self._cluster_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Streams tail their jobs; drained jobs are done, so give the
        # writers one scheduling round to flush and close.
        await asyncio.sleep(0.05)
        self.executor.shutdown(wait=True)
        if self.cluster is not None:
            # Lease released only after the drain: while jobs were
            # still finishing, peers must not have considered this
            # slot dead and fenced it mid-write.
            self.cluster.release()

    # ------------------------------------------------------------------
    # Dispatch (event-loop thread only)

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None and self._drained is not None
        while True:
            self._wake.clear()
            while self.active < max(1, self.config.concurrency):
                job = self.queue.pop()
                if job is None:
                    break
                self._start_job(job)
            if self.draining and not len(self.queue) and self.active == 0:
                self._drained.set()
                return
            await self._wake.wait()

    def _start_job(self, job: Job) -> None:
        assert self._loop is not None
        self.active += 1
        job.started_at = time.monotonic()
        wait_ms = (job.started_at - job.enqueued_at) * 1e3
        self.wait_hist.observe(wait_ms)
        tenant = job.request.tenant
        self.serve_ns.counter(f"tenant.{tenant}.wait_ms_total").add(wait_ms)
        future = self._loop.run_in_executor(
            self.executor, self._run_job_sync, job
        )
        future.add_done_callback(functools.partial(self._job_finished, job))

    def _job_finished(self, job: Job, future: asyncio.Future) -> None:
        # Runs on the loop thread (run_in_executor future callbacks do).
        self.active -= 1
        self.jobs_by_key.pop(job.key, None)
        exc = future.exception()
        if exc is not None and not job.done:
            # Defensive: _run_job_sync publishes its own error events;
            # anything escaping it must still unblock subscribers.
            job.publish(
                {"event": "error", "error": f"{type(exc).__name__}: {exc}"}
            )
            job.publish({"event": "done", "ok": False}, done=True)
            self.serve_ns.counter("jobs_failed").add()
        job.close_journal()
        if job.journal_errors:
            self.serve_ns.counter("journal_errors").add(job.journal_errors)
        # Keep a bounded tail of finished jobs addressable for
        # status/resume; older ones fall back to their disk journals.
        self._finished_ids.append(job.job_id)
        while len(self._finished_ids) > FINISHED_JOBS_RETAINED:
            self.jobs_by_id.pop(self._finished_ids.popleft(), None)
        assert self._wake is not None
        self._wake.set()

    # ------------------------------------------------------------------
    # Job execution (worker threads)

    def _run_job_sync(self, job: Job) -> None:
        t0 = time.perf_counter()
        request = job.request
        job.publish({"event": "started", "kind": request.kind})
        completed = {"n": 0}

        def on_task(result) -> None:
            completed["n"] += 1
            job.publish(
                {
                    "event": "progress",
                    "completed": completed["n"],
                    "task": f"{result.task.app_name}@{result.task.n_pages:g}",
                    "mode": result.task.mode,
                    "cached": result.cached,
                    "ok": result.ok,
                }
            )

        ok = False
        try:
            with harness.settings_scope(self.config.job_settings()), \
                    harness.coalesce_scope(self.singleflight), \
                    harness.progress_scope(on_task):
                ok = self._execute_request(request, job)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            job.publish(
                {"event": "error", "error": f"{type(exc).__name__}: {exc}"}
            )
            self.serve_ns.counter("jobs_failed").add()
        job.publish(
            {
                "event": "done",
                "ok": ok,
                "wall_s": round(time.perf_counter() - t0, 6),
                "tasks_completed": completed["n"],
            },
            done=True,
        )

    def _execute_request(self, request: protocol.SubmitRequest, job: Job) -> bool:
        if request.kind in ("app", "tasks"):
            tasks = protocol.build_tasks(request)
            outcome = harness.run_sweep(tasks)
            for task, result in zip(tasks, outcome):
                job.publish(
                    {
                        "event": "result",
                        "task": f"{task.app_name}@{task.n_pages:g}",
                        "mode": task.mode,
                        "values": result.values,
                        "cached": result.cached,
                        "error": result.error,
                    }
                )
            job.publish(
                {
                    "event": "sweep",
                    "tasks": outcome.stats.tasks,
                    "hits": outcome.stats.hits,
                    "misses": outcome.stats.misses,
                    "retried": outcome.stats.retried,
                    "failed": outcome.stats.failed,
                }
            )
            return outcome.complete

        if request.kind == "experiment":
            from repro.experiments import report as report_mod

            name = str(request.spec["name"])
            runner = report_mod.EXPERIMENTS[name]
            if request.spec.get("quick") and name in report_mod.QUICK_OVERRIDES:
                runner = report_mod.QUICK_OVERRIDES[name]
            result = runner()
            job.publish(
                {
                    "event": "result",
                    "experiment": name,
                    "title": result.title,
                    "columns": result.columns,
                    "rows": result.rows,
                    "notes": result.notes,
                    "rendered": result.render(),
                }
            )
            return True

        # fuzz — bounded, seeded; deterministic via max_cases.
        from repro.workloads import run_fuzz

        out_dir = os.path.join(
            tempfile.gettempdir(), f"repro-serve-fuzz-{job.key[:12]}"
        )
        report = run_fuzz(
            seed=int(request.spec["seed"]),
            time_box_s=1e9,  # max_cases is the bound; keep the run deterministic
            max_cases=int(request.spec["max_cases"]),
            apps=request.spec.get("apps"),
            tolerance_scale=float(request.spec["tolerance_scale"]),
            out_dir=out_dir,
            log=lambda msg: job.publish({"event": "log", "line": str(msg)}),
        )
        job.publish(
            {
                "event": "result",
                "findings": len(report.findings),
                "rendered": report.render(),
                "out_dir": out_dir,
            }
        )
        return not report.findings

    # ------------------------------------------------------------------
    # HTTP handling (event-loop thread)

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, headers, body = await protocol.read_request(reader)
            except protocol.ProtocolError as exc:
                writer.write(protocol.json_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._route(method, target, headers, body, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client hung up mid-stream; the job keeps running
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = target.split("?", 1)[0]
        if method == "POST" and path == "/submit":
            await self._handle_submit(headers, body, writer)
            return
        if method != "GET":
            writer.write(
                protocol.json_response(405, {"error": f"{method} unsupported"})
            )
        elif path == "/healthz":
            writer.write(
                protocol.json_response(
                    200,
                    {
                        "ok": True,
                        "draining": self.draining,
                        "active_jobs": self.active,
                        "queued_jobs": len(self.queue),
                    },
                )
            )
        elif path == "/metrics":
            writer.write(protocol.json_response(200, self.metrics_snapshot()))
        elif path == "/cluster":
            writer.write(protocol.json_response(200, self.cluster_status()))
        elif path == "/cache/stats":
            cache = harness.ResultCache(
                self.config.job_settings().resolve_cache_dir()
            )
            writer.write(protocol.json_response(200, cache.stats()))
        elif path.startswith("/jobs/"):
            status, payload = self.job_status(path[len("/jobs/"):])
            writer.write(protocol.json_response(status, payload))
        elif path == "/":
            writer.write(
                protocol.json_response(
                    200,
                    {
                        "service": "repro sweep server",
                        "endpoints": [
                            "POST /submit",
                            "GET /jobs/<id>",
                            "GET /metrics",
                            "GET /cluster",
                            "GET /cache/stats",
                            "GET /healthz",
                        ],
                        "kinds": list(protocol.VALID_KINDS),
                    },
                )
            )
        else:
            writer.write(protocol.json_response(404, {"error": f"no route {path}"}))
        await writer.drain()

    def job_status(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        """Status for a job id — live from memory, else from its journal."""
        if not journal_mod.valid_job_id(job_id):
            return 400, {"error": f"malformed job id {job_id!r}"}
        job = self.jobs_by_id.get(job_id)
        if job is not None:
            return 200, {
                "job": job_id,
                "key": job.key,
                "kind": job.request.kind,
                "tenant": job.request.tenant,
                "status": job.status,
                "ok": job.ok,
                "seq": job.seq,
                "events": len(job.events),
                "subscribers": job.subscribers,
                "recovered": job.recovered,
                "live": True,
            }
        if self.journals is not None:
            records = self.journals.read(job_id)
            if records:
                summary = journal_mod.job_summary(records)
                return 200, {
                    "job": job_id,
                    "key": summary["key"],
                    "kind": summary["kind"],
                    "tenant": summary["tenant"],
                    "status": "done" if summary["done"] else "recoverable",
                    "ok": summary["ok"],
                    "seq": summary["seq"],
                    "events": summary["events"],
                    "live": False,
                }
        return 404, {"error": f"unknown job {job_id}"}

    def metrics_snapshot(self) -> Dict[str, float]:
        """The registry with the point-in-time gauges refreshed."""
        self.serve_ns.counter("queue_depth").set(float(len(self.queue)))
        self.serve_ns.counter("active_jobs").set(float(self.active))
        self.serve_ns.counter("inflight_tasks").set(
            float(len(self.singleflight.inflight_keys()))
        )
        if self.cluster is not None:
            me = self.cluster.shard_index
            self.cluster_ns.counter("shards_alive").set(
                float(len(self.cluster.alive()))
            )
            self.cluster_ns.counter("epoch").set(float(self.cluster.epoch))
            self.cluster_ns.counter("fenced").set(
                1.0 if self.cluster.fenced else 0.0
            )
            self.cluster_ns.counter(f"shard.{me}.queue_depth").set(
                float(len(self.queue))
            )
            self.cluster_ns.counter(f"shard.{me}.active_jobs").set(
                float(self.active)
            )
        return self.registry.as_dict()

    def cluster_status(self) -> Dict[str, object]:
        """The ``GET /cluster`` membership document."""
        if self.cluster is None:
            return {"cluster": False, "shards": 1}
        now = time.time()
        peers: Dict[str, object] = {}
        for slot, lease in sorted(self.cluster.peers().items()):
            peers[str(slot)] = {
                "addr": lease.addr,
                "epoch": lease.epoch,
                "pid": lease.pid,
                "alive": not lease.expired(now),
                "expires_in_s": round(
                    lease.ttl_s - (now - lease.renewed_at), 3
                ),
            }
        return {
            "cluster": True,
            "shard": self.cluster.shard_index,
            "shards": self.cluster.n_shards,
            "epoch": self.cluster.epoch,
            "fenced": self.cluster.fenced,
            "alive": sorted(self.cluster.alive(now)),
            "peers": peers,
        }

    async def _handle_submit(
        self, headers: Dict[str, str], body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = protocol.parse_submit(json.loads(body.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            writer.write(
                protocol.json_response(400, {"error": f"invalid JSON body: {exc}"})
            )
            await writer.drain()
            return
        except protocol.ProtocolError as exc:
            writer.write(protocol.json_response(400, {"error": str(exc)}))
            await writer.drain()
            return

        self.serve_ns.counter("requests_total").add()
        self.serve_ns.counter(f"tenant.{request.tenant}.requests").add()
        sse = "text/event-stream" in headers.get("accept", "")

        if request.kind == "resume":
            await self._handle_resume(request, sse, writer)
            return

        if self.draining:
            writer.write(
                protocol.json_response(
                    503,
                    {"error": "server is draining; not accepting new work"},
                    ("Retry-After: 5",),
                )
            )
            await writer.drain()
            return

        key = request.coalesce_key()
        job = self.jobs_by_key.get(key)
        coalesced = job is not None
        if job is None and self.cluster is not None:
            # A job already live here (e.g. adopted in a takeover)
            # coalesces locally; only *new* keys route by the ring.
            redirect = self._redirect_for(key)
            if redirect is not None:
                owner, location = redirect
                self.cluster_ns.counter("redirects_total").add()
                writer.write(
                    protocol.redirect_response(
                        location,
                        {
                            "event": "redirect",
                            "shard": owner,
                            "location": location,
                        },
                    )
                )
                await writer.drain()
                return
        if job is None:
            if len(self.queue) >= self.config.max_queue:
                self.serve_ns.counter("rejected_total").add()
                writer.write(
                    protocol.json_response(
                        429,
                        {
                            "error": "queue full",
                            "max_queue": self.config.max_queue,
                        },
                        ("Retry-After: 1",),
                    )
                )
                await writer.drain()
                return
            job = self._admit_job(key, request)
        else:
            job.subscribers += 1
            self.serve_ns.counter("coalesce_hits").add()

        writer.write(protocol.stream_head(sse))
        writer.write(
            protocol.encode_event(
                {
                    "event": "accepted",
                    "job": job.job_id,
                    "kind": request.kind,
                    "tenant": request.tenant,
                    "coalesced": coalesced,
                },
                sse,
            )
        )
        await writer.drain()
        await self._stream_job(job, 0, sse, writer)

    def _redirect_for(self, key: str) -> Optional[Tuple[int, str]]:
        """``(owner, submit URL)`` when another live shard owns ``key``."""
        assert self.cluster is not None and self.ring is not None
        alive = self.cluster.alive()
        owner = self.ring.owner(key, alive)
        if owner == self.cluster.shard_index:
            return None
        lease = self.cluster.peers().get(owner)
        if lease is None or not lease.addr:
            return None  # can't name a target; serve it here instead
        return owner, f"http://{lease.addr}/submit"

    def _admit_job(self, key: str, request: protocol.SubmitRequest) -> Job:
        """Create, journal, register, and enqueue a brand-new job."""
        assert self._loop is not None and self._wake is not None
        job_id = f"{key[:16]}-{os.urandom(4).hex()}"
        jnl: Optional[journal_mod.JobJournal] = None
        if self.journals is not None:
            try:
                while jnl is None:
                    try:
                        jnl = self.journals.create(job_id)
                    except FileExistsError:
                        job_id = f"{key[:16]}-{os.urandom(4).hex()}"
                if self.cluster is not None:
                    jnl.fence = self.cluster.check_fence
                record: Dict[str, object] = {
                    "type": "request",
                    "job": job_id,
                    "key": key,
                    "kind": request.kind,
                    "tenant": request.tenant,
                    "spec": request.spec,
                    "created_at": time.time(),
                }
                if self.cluster is not None:
                    # The admitting slot/epoch: the coordinates dead-peer
                    # takeover and lease-aware prune key off.
                    record["shard"] = self.cluster.shard_index
                    record["epoch"] = self.cluster.epoch
                jnl.append(record)
            except (OSError, JournalError):
                jnl = None  # degrade to in-memory-only; the job still runs
                self.serve_ns.counter("journal_errors").add()
        job = Job(key, request, self._loop, job_id=job_id, journal=jnl)
        self._wire_cluster_hooks(job)
        self.jobs_by_key[key] = job
        self.jobs_by_id[job_id] = job
        self.queue.push(request.tenant, job)
        self.serve_ns.counter("jobs_total").add()
        job.publish(
            {
                "event": "queued",
                "tenant": request.tenant,
                "queue_depth": len(self.queue),
            }
        )
        self._wake.set()
        return job

    async def _handle_resume(
        self,
        request: protocol.SubmitRequest,
        sse: bool,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Re-attach a client: replay ``seq > after_seq``, then tail live."""
        job_id = str(request.spec["job"])
        after_seq = int(request.spec["after_seq"])  # type: ignore[call-overload]
        self.serve_ns.counter("resume_requests").add()

        job = self.jobs_by_id.get(job_id)
        if job is not None:
            job.subscribers += 1
            self.serve_ns.counter("resumed_total").add()
            writer.write(protocol.stream_head(sse))
            writer.write(
                protocol.encode_event(
                    {
                        "event": "accepted",
                        "job": job_id,
                        "kind": job.request.kind,
                        "tenant": job.request.tenant,
                        "coalesced": True,
                        "resumed": True,
                        "after_seq": after_seq,
                    },
                    sse,
                )
            )
            await writer.drain()
            await self._stream_job(job, after_seq, sse, writer)
            return

        # Not live: replay straight from the journal on disk.
        records = self.journals.read(job_id) if self.journals is not None else []
        if not records:
            writer.write(
                protocol.json_response(404, {"error": f"unknown job {job_id}"})
            )
            await writer.drain()
            return
        summary = journal_mod.job_summary(records)
        if not summary["done"] and self.cluster is not None:
            # Incomplete and not live here.  Either the owner is a live
            # peer (redirect the client there) or it is dead — adopt
            # the job *now* rather than make the client wait for the
            # periodic sweep: fence the dead slot, re-enqueue with
            # base_seq continuation, and stream the stitched result.
            routed = await self._resume_cluster(
                job_id, summary, after_seq, sse, writer
            )
            if routed:
                return
        self.serve_ns.counter("resumed_total").add()
        writer.write(protocol.stream_head(sse))
        writer.write(
            protocol.encode_event(
                {
                    "event": "accepted",
                    "job": job_id,
                    "kind": summary["kind"],
                    "tenant": summary["tenant"],
                    "coalesced": False,
                    "resumed": True,
                    "after_seq": after_seq,
                    "from_journal": True,
                },
                sse,
            )
        )
        for record in records:
            if record.get("type") != "event":
                continue
            event = record.get("event")
            if not isinstance(event, dict):
                continue
            if int(record.get("seq", 0)) > after_seq:  # type: ignore[call-overload]
                writer.write(protocol.encode_event(event, sse))
        if not summary["done"]:
            # Incomplete journal with no live job (e.g. journaling was
            # re-enabled, or the job predates recovery): the stream
            # cannot complete here — tell the client to resubmit.
            writer.write(
                protocol.encode_event(
                    {
                        "event": "error",
                        "job": job_id,
                        "error": "job is not running on this server; "
                        "resubmit the original request",
                    },
                    sse,
                )
            )
            writer.write(
                protocol.encode_event(
                    {"event": "done", "ok": False, "job": job_id}, sse
                )
            )
        await writer.drain()

    async def _resume_cluster(
        self,
        job_id: str,
        summary: Dict[str, object],
        after_seq: int,
        sse: bool,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Cluster routing for a resume of a non-live, incomplete job.

        Returns ``True`` when a response was written (a redirect to the
        live owner, or an adopted live stream); ``False`` to fall back
        to the plain journal replay and its resubmit-error tail.
        """
        assert self.cluster is not None and self.ring is not None
        me = self.cluster.shard_index
        parsed = self._recoverable_request(summary)
        key = parsed[1] if parsed is not None else str(summary["key"] or "")
        if key:
            alive = self.cluster.alive()
            owner = self.ring.owner(key, alive)
            if owner != me:
                lease = self.cluster.peers().get(owner)
                if lease is not None and lease.addr:
                    location = f"http://{lease.addr}/submit"
                    self.cluster_ns.counter("redirects_total").add()
                    writer.write(
                        protocol.redirect_response(
                            location,
                            {
                                "event": "redirect",
                                "shard": owner,
                                "location": location,
                                "job": job_id,
                            },
                        )
                    )
                    await writer.drain()
                    return True
        if parsed is None:
            return False
        shard = summary.get("shard")
        takeover_from: Optional[int] = None
        if isinstance(shard, int) and shard != me:
            if shard in self.cluster.alive():
                # The admitting shard is alive but no longer runs the
                # job and the ring routes here: an edge the periodic
                # machinery doesn't cover — let the client resubmit.
                return False
            outcome, epoch = self.cluster.fence_slot(shard)
            if outcome == "lost":
                return False  # a peer is mid-takeover; client retries
            self._slot_epochs_handled[shard] = epoch
            takeover_from = shard
            if outcome == "won":
                self.cluster_ns.counter("takeovers_total").add()
                print(
                    f"serve: shard {me} fenced dead shard {shard} "
                    f"(epoch {epoch}) to adopt job {job_id}",
                    flush=True,
                )
        request, key = parsed
        job = self._enqueue_recovered(
            job_id, summary, request, key, takeover_from=takeover_from
        )
        if job is None:
            job = self.jobs_by_id.get(job_id)
            if job is None:
                return False
        job.subscribers += 1
        self.serve_ns.counter("resumed_total").add()
        writer.write(protocol.stream_head(sse))
        writer.write(
            protocol.encode_event(
                {
                    "event": "accepted",
                    "job": job_id,
                    "kind": job.request.kind,
                    "tenant": job.request.tenant,
                    "coalesced": True,
                    "resumed": True,
                    "adopted": True,
                    "after_seq": after_seq,
                },
                sse,
            )
        )
        await writer.drain()
        await self._stream_job(job, after_seq, sse, writer)
        return True

    async def _stream_job(
        self,
        job: Job,
        after_seq: int,
        sse: bool,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Fan one subscriber's view of a job out over its connection.

        Heartbeats keep idle streams alive; a subscriber that leaves
        ``subscriber_stall_s`` of backpressure unread is disconnected
        (the job keeps running — any client can resume later).
        """
        heartbeat_s = self.config.heartbeat_s
        async for event in job.stream(
            after_seq=after_seq,
            heartbeat_s=heartbeat_s if heartbeat_s > 0 else None,
        ):
            chaos.maybe_injure_serve(
                f"serve.emit:{event.get('event')}", job.job_id,
                shard=job.chaos_shard,
            )
            if event.get("event") == "heartbeat":
                self.serve_ns.counter("heartbeats").add()
            writer.write(protocol.encode_event(event, sse))
            try:
                await asyncio.wait_for(
                    writer.drain(), timeout=self.config.subscriber_stall_s
                )
            except asyncio.TimeoutError:
                self.serve_ns.counter("slow_disconnects").add()
                raise ConnectionResetError(
                    f"subscriber stalled > {self.config.subscriber_stall_s}s; "
                    "disconnected"
                )


# ----------------------------------------------------------------------
# Entry point


#: Environment override for where drain-time admission summaries land
#: (smokes and tests point it at a scratch file).
HISTORY_ENV = "REPRO_HISTORY_PATH"


def serve_history_record(server: SweepServer) -> Dict[str, object]:
    """One append-only admission/queue-wait summary for BENCH_history.

    The ROADMAP's statistical perf gates consume these as a series:
    each drained serve run contributes its admission counters and the
    queue-wait distribution (histogram buckets, count, mean).
    """
    import datetime
    import platform

    snapshot = server.metrics_snapshot()

    def metric(name: str) -> float:
        return float(snapshot.get(name, 0.0))

    record: Dict[str, object] = {
        "kind": "serve",
        "when": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": platform.node(),
        "admission": {
            "requests_total": metric("serve.requests_total"),
            "jobs_total": metric("serve.jobs_total"),
            "rejected_total": metric("serve.rejected_total"),
            "coalesce_hits": metric("serve.coalesce_hits"),
            "recovered_jobs": metric("serve.recovered_jobs"),
            "jobs_failed": metric("serve.jobs_failed"),
            "resume_requests": metric("serve.resume_requests"),
        },
        "queue_wait_ms": {
            key[len("serve.wait_ms."):]: value
            for key, value in snapshot.items()
            if key.startswith("serve.wait_ms.")
        },
    }
    if server.cluster is not None:
        record["shard"] = server.cluster.shard_index
        record["cluster"] = {
            "shards": server.cluster.n_shards,
            "epoch": server.cluster.epoch,
            "takeovers_total": metric("cluster.takeovers_total"),
            "fenced_appends_rejected": metric(
                "cluster.fenced_appends_rejected"
            ),
            "redirects_total": metric("cluster.redirects_total"),
        }
    return record


def append_serve_history(server: SweepServer) -> Optional[Path]:
    """Append the drain summary to BENCH_history.jsonl (best-effort)."""
    from repro.experiments import simbench

    path = Path(os.environ.get(HISTORY_ENV) or simbench.HISTORY_PATH)
    try:
        simbench.append_history(serve_history_record(server), path)
    except OSError:
        return None
    return path


async def amain(config: ServeConfig) -> int:
    server = SweepServer(config)
    await server.start()
    host, port = server.addresses()[0]
    shard_note = ""
    if server.cluster is not None:
        shard_note = (
            f", shard={server.cluster.shard_index}/{config.shards}"
            f", epoch={server.cluster.epoch}"
        )
    print(
        f"serve: listening on http://{host}:{port} "
        f"(concurrency={config.concurrency}, jobs={config.jobs}, "
        f"max-queue={config.max_queue}{shard_note})",
        flush=True,
    )
    if server.recovered_jobs:
        print(
            f"serve: recovered {server.recovered_jobs} journaled job(s)",
            flush=True,
        )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await server.wait_drained()
    await server.close()
    history = append_serve_history(server)
    if history is not None:
        print(f"serve: appended admission summary to {history}", flush=True)
    print("serve: queue drained, shutting down", flush=True)
    return 0


def _parse_weights(pairs: List[str]) -> Dict[str, float]:
    weights: Dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        try:
            weight = float(value)
        except ValueError:
            weight = 0.0
        if not sep or not name or weight <= 0:
            raise SystemExit(
                f"--tenant-weight expects NAME=WEIGHT with WEIGHT > 0, got {pair!r}"
            )
        weights[name] = weight
    return weights


def build_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        concurrency=args.concurrency,
        max_queue=args.max_queue,
        tenant_weights=_parse_weights(args.tenant_weight or []),
        task_timeout_s=args.task_timeout,
        retries=args.retries if args.retries is not None else 2,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        heartbeat_s=args.heartbeat,
        use_journal=not args.no_journal,
        shards=getattr(args, "shards", 1) or 1,
        shard_index=getattr(args, "shard_index", None),
        lease_ttl_s=getattr(args, "lease_ttl", None)
        or cluster_mod.DEFAULT_LEASE_TTL_S,
        advertise=getattr(args, "advertise", None),
    )


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="0 picks a free port"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per sweep (the harness pool)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=2, metavar="N",
        help="jobs executing at once (worker threads)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="queued-job bound; beyond it submits get HTTP 429",
    )
    parser.add_argument(
        "--tenant-weight", action="append", metavar="NAME=W",
        help="fair-queuing weight for a tenant (repeatable; default 1)",
    )
    parser.add_argument("--task-timeout", type=float, default=None, metavar="S")
    parser.add_argument("--retries", type=int, default=None, metavar="N")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--cache-dir", metavar="DIR", default=None)
    parser.add_argument(
        "--heartbeat", type=float, default=10.0, metavar="S",
        help="idle-stream heartbeat interval (<= 0 disables)",
    )
    parser.add_argument(
        "--no-journal", action="store_true",
        help="disable the durable job journal (no crash recovery/resume)",
    )
    parser.add_argument(
        "--cluster", type=int, default=None, metavar="N",
        help="launch N shard processes sharing this cache dir "
        "(supervisor mode; each shard gets --shards N --shard-index I)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="total shard count in the cluster this server belongs to",
    )
    parser.add_argument(
        "--shard-index", type=int, default=None, metavar="I",
        help="this server's shard slot (0-based; implies cluster mode)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help="shard heartbeat-lease TTL; a peer silent this long is "
        f"declared dead (default {cluster_mod.DEFAULT_LEASE_TTL_S})",
    )
    parser.add_argument(
        "--advertise", metavar="HOST:PORT", default=None,
        help="address peers/clients should use to reach this shard "
        "(defaults to the bound host:port)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Dispatch parsed serve arguments: supervisor, shard, or standalone."""
    if getattr(args, "cluster", None):
        if args.cluster < 2:
            print("serve: --cluster needs at least 2 shards", flush=True)
            return 2
        return cluster_mod.run_cluster(args)
    try:
        return asyncio.run(amain(build_config(args)))
    except ClusterError as exc:
        print(f"serve: {exc}", flush=True)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve", description=__doc__
    )
    add_serve_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
