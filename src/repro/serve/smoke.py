"""End-to-end serve smoke: ``python -m repro.serve.smoke``.

Boots a real server subprocess on an ephemeral port with a fresh
cache directory, has three concurrent clients submit the *same*
uncached figure request, and asserts the single-flight contract:

* exactly one underlying job ran (``serve.jobs_total == 1``);
* the other two clients coalesced (``serve.coalesce_hits == 2``);
* all three streamed the identical result;
* SIGTERM drains the queue and exits 0.

Exit status 0 on success; any broken invariant raises and exits
non-zero.  Used by the ``serve-smoke`` CI job and runnable locally.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.serve import client

#: The shared request — a quick figure, identical across clients so
#: the server must coalesce it.
FIGURE_REQUEST = {"kind": "experiment", "name": "figure-3", "quick": True}

BOOT_TIMEOUT_S = 30.0
STREAM_TIMEOUT_S = 300.0


def start_server(cache_dir: str) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.setdefault("PYTHONUNBUFFERED", "1")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--jobs", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def wait_for_listen(proc: "subprocess.Popen[str]") -> str:
    """Read stdout until the listening line; return the base URL."""
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before listening (rc={proc.poll()})"
            )
        sys.stdout.write(f"[server] {line}")
        if line.startswith("serve: listening on "):
            return line.split("on ", 1)[1].split()[0]
    raise AssertionError("server did not print its listening line in time")


def drain_server_output(proc: "subprocess.Popen[str]") -> List[str]:
    assert proc.stdout is not None
    lines = proc.stdout.read().splitlines()
    for line in lines:
        sys.stdout.write(f"[server] {line}\n")
    return lines


def submit_and_collect(
    base_url: str, out: Dict[int, List[Dict[str, object]]], index: int
) -> None:
    events = list(
        client.stream_submit(
            base_url,
            dict(FIGURE_REQUEST, tenant=f"tenant-{index}"),
            timeout=STREAM_TIMEOUT_S,
        )
    )
    out[index] = events


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as cache_dir:
        proc = start_server(cache_dir)
        try:
            base_url = wait_for_listen(proc)

            # --- three concurrent clients, one shared request -------
            results: Dict[int, List[Dict[str, object]]] = {}
            threads = [
                threading.Thread(
                    target=submit_and_collect, args=(base_url, results, i)
                )
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(STREAM_TIMEOUT_S)
            assert len(results) == 3, f"only {len(results)}/3 clients finished"

            # --- every client streamed to a successful 'done' -------
            for i, events in sorted(results.items()):
                kinds = [e.get("event") for e in events]
                assert kinds[0] == "accepted", f"client {i}: {kinds[:3]}"
                done = events[-1]
                assert done.get("event") == "done" and done.get("ok") is True, (
                    f"client {i} did not finish ok: {done}"
                )

            # --- identical results across all three -----------------
            def result_events(events: List[Dict[str, object]]) -> List[str]:
                return [
                    json.dumps(e, sort_keys=True)
                    for e in events
                    if e.get("event") == "result"
                ]

            reference = result_events(results[0])
            assert reference, "no result events streamed"
            for i in (1, 2):
                assert result_events(results[i]) == reference, (
                    f"client {i} streamed different results"
                )
            coalesced = [
                bool(events[0].get("coalesced")) for _, events in sorted(results.items())
            ]
            assert sorted(coalesced) == [False, True, True], (
                f"expected exactly one non-coalesced accept, got {coalesced}"
            )

            # --- exactly one underlying computation -----------------
            metrics = client.get_json(base_url, "/metrics")
            assert metrics["serve.jobs_total"] == 1, metrics
            assert metrics["serve.coalesce_hits"] == 2, metrics
            assert metrics["serve.requests_total"] == 3, metrics

            # --- cache introspection over HTTP ----------------------
            cache_stats = client.get_json(base_url, "/cache/stats")
            assert cache_stats["entries"] > 0, cache_stats
            print(
                f"smoke: cache has {cache_stats['entries']} entries "
                f"after the shared run"
            )

            # --- graceful SIGTERM drain -----------------------------
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            lines = drain_server_output(proc)
            assert rc == 0, f"server exited {rc} on SIGTERM"
            assert any("queue drained" in line for line in lines), (
                "server did not report a drained queue"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        print("smoke: single-flight serve smoke passed")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
